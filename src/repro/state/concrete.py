"""The concrete state constructor CSC (paper Def. 2.5).

Lifts a concrete memory model to a concrete *state model*: states are
triples ⟨µ, ρ, ξ⟩ of a memory, a variable store, and an allocation
record.  The store-related proper actions, ``assume``, and the two
symbol-generation actions are provided here once and for all — the tool
developer only supplies the memory model (paper §2.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Dict, List, Mapping, Optional, Tuple

from repro.gil.ops import evaluate
from repro.gil.values import Value
from repro.logic.expr import Expr
from repro.state.allocator import AllocRecord, ConcreteAllocator
from repro.state.interface import (
    ConcreteMemoryModel,
    MemErr,
    MemOk,
    StateErr,
    StateOk,
)


@dataclass(frozen=True)
class ConcreteState:
    """σ = ⟨µ, ρ, ξ⟩."""

    memory: object
    store: Mapping[str, Value]
    alloc: AllocRecord

    def with_store(self, store: Mapping[str, Value]) -> "ConcreteState":
        return ConcreteState(self.memory, MappingProxyType(dict(store)), self.alloc)

    def bind(self, x: str, v: Value) -> "ConcreteState":
        store = dict(self.store)
        store[x] = v
        return ConcreteState(self.memory, MappingProxyType(store), self.alloc)

    def __reduce__(self):
        # MappingProxyType stores are not picklable; ship sorted items
        # (canonical wire form) and re-wrap on load.
        return (
            _rebuild_concrete_state,
            (self.memory, tuple(sorted(self.store.items())), self.alloc),
        )


def _rebuild_concrete_state(memory, store_items, alloc) -> ConcreteState:
    """Unpickle helper: re-wrap the store in a MappingProxyType."""
    return ConcreteState(memory, MappingProxyType(dict(store_items)), alloc)


class ConcreteStateModel:
    """CSC_AL(M): the state model over a concrete memory model."""

    symbolic = False

    def __init__(
        self,
        memory_model: ConcreteMemoryModel,
        allocator: Optional[ConcreteAllocator] = None,
    ) -> None:
        self.memory_model = memory_model
        self.allocator = allocator if allocator is not None else ConcreteAllocator()

    # -- construction -------------------------------------------------------

    def initial_state(self, memory: object = None) -> ConcreteState:
        if memory is None:
            memory = self.memory_model.initial()
        return ConcreteState(memory, MappingProxyType({}), AllocRecord())

    # -- proper actions (paper Def. 2.5) ------------------------------------

    def eval_expr(self, state: ConcreteState, e: Expr) -> Value:
        """ea(eval_e): evaluation under the store ρ.  Raises EvalError."""
        return evaluate(e, pvar_env=state.store)

    def set_var(self, state: ConcreteState, x: str, v: Value) -> ConcreteState:
        return state.bind(x, v)

    def get_store(self, state: ConcreteState) -> Dict[str, Value]:
        return dict(state.store)

    def set_store(
        self, state: ConcreteState, store: Mapping[str, Value]
    ) -> ConcreteState:
        return state.with_store(store)

    def assume(self, state: ConcreteState, v: Value) -> List[ConcreteState]:
        """Keep the state iff v is literally ``true`` (paper [Assume])."""
        return [state] if v is True else []

    def branch_on(
        self, state: ConcreteState, cond: Value
    ) -> List[Tuple[ConcreteState, bool]]:
        """Both conditional-goto rules at once: concrete execution follows
        exactly the branch the boolean picks."""
        if cond is True:
            return [(state, True)]
        if cond is False:
            return [(state, False)]
        from repro.gil.ops import EvalError

        raise EvalError(f"ifgoto: condition is not a boolean: {cond!r}")

    def fresh_usym(self, state: ConcreteState, site: int):
        record, sym = self.allocator.alloc_usym(state.alloc, site)
        return ConcreteState(state.memory, state.store, record), sym

    def fresh_isym(self, state: ConcreteState, site: int):
        record, value = self.allocator.alloc_isym(state.alloc, site)
        return ConcreteState(state.memory, state.store, record), value

    # -- memory actions ------------------------------------------------------

    def execute_action(
        self, state: ConcreteState, action: str, arg: Value
    ) -> List:
        """Lift memory-action branches to state-action branches."""
        out = []
        for branch in self.memory_model.execute(action, state.memory, arg):
            if isinstance(branch, MemOk):
                new_state = ConcreteState(branch.memory, state.store, state.alloc)
                out.append(StateOk(new_state, branch.value))
            elif isinstance(branch, MemErr):
                out.append(StateErr(state, branch.value))
            else:  # pragma: no cover - defensive
                raise TypeError(f"bad concrete branch {branch!r}")
        return out
