"""The combinator core: memory parts, adapters, rename, and product.

A :class:`MemoryPart` is one composable unit of memory behaviour.  It
carries *both* execution arms of the paper's memory-model interface —
the concrete ``ea : A → |M| → V ⇀ ℘(|M| × V)`` and the symbolic
``êa : A → |M̂| → Ê → Π ⇀ ℘(|M̂| × Ê × Π)`` (Defs. 2.3/2.4) — so a single
composition expression yields both memory models of a target language.
:class:`PartConcreteModel` / :class:`PartSymbolicModel` adapt a part to
the engine-facing ABCs of :mod:`repro.state.interface`.

Combinators: :func:`rename` re-labels a part's action names (so two
copies of the same part can coexist in a product), and :func:`product`
runs two parts side by side on a :class:`PairMem`, dispatching on their
*disjoint* action sets.

Everything here must survive the parallel explorer's pickle boundary:
parts are plain objects holding frozen-dataclass specs and other parts,
never closures, so a model instance ships to workers unchanged.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Union

from repro.gil.values import Value
from repro.logic.expr import Expr
from repro.state.interface import (
    ConcreteBranch,
    ConcreteMemoryModel,
    MemErr,
    MemOk,
    SymbolicBranch,
    SymbolicMemoryModel,
    SymMemErr,
    SymMemOk,
)


class MemFault(Exception):
    """A memory fault raised by shared part helpers.

    Parts convert it to an error *branch* at their action boundary (the
    value becomes the GIL error value), so helpers deep in cell logic
    can bail without threading branch lists around.
    """

    def __init__(self, value) -> None:
        """Record the GIL error ``value`` the fault converts to."""
        super().__init__(repr(value))
        self.value = value


class MemoryPart(abc.ABC):
    """One composable unit of memory behaviour (both execution arms)."""

    @property
    @abc.abstractmethod
    def actions(self) -> frozenset:
        """The action names this part understands."""

    @abc.abstractmethod
    def initial_concrete(self) -> object:
        """The part's empty concrete memory."""

    @abc.abstractmethod
    def initial_symbolic(self) -> object:
        """The part's empty symbolic memory."""

    @abc.abstractmethod
    def execute_concrete(
        self, action: str, memory: object, value: Value
    ) -> List[ConcreteBranch]:
        """The concrete arm: a list of MemOk/MemErr branches."""

    @abc.abstractmethod
    def execute_symbolic(
        self, action: str, memory: object, expr: Expr, pc, solver
    ) -> List[SymbolicBranch]:
        """The symbolic arm: a list of SymMemOk/SymMemErr branches."""

    def concrete_model(self) -> "PartConcreteModel":
        """This part adapted to the engine's concrete-model ABC."""
        return PartConcreteModel(self)

    def symbolic_model(self) -> "PartSymbolicModel":
        """This part adapted to the engine's symbolic-model ABC."""
        return PartSymbolicModel(self)


class PartConcreteModel(ConcreteMemoryModel):
    """Adapter: a part's concrete arm as a Def. 2.3 memory model.

    Target modules subclass this with a class-level ``part`` (so the
    model class itself names the composition); ad-hoc compositions pass
    the part to the constructor instead.
    """

    part: Optional[MemoryPart] = None

    def __init__(self, part: Optional[MemoryPart] = None) -> None:
        """Bind ``part``, or use the subclass's class-level part."""
        if part is not None:
            self.part = part
        if self.part is None:
            raise ValueError("PartConcreteModel requires a memory part")

    @property
    def actions(self) -> frozenset:
        """The underlying part's action names."""
        return self.part.actions

    def initial(self) -> object:
        """The part's empty concrete memory."""
        return self.part.initial_concrete()

    def execute(
        self, action: str, memory: object, value: Value
    ) -> List[ConcreteBranch]:
        """Delegate to the part's concrete arm."""
        return self.part.execute_concrete(action, memory, value)


class PartSymbolicModel(SymbolicMemoryModel):
    """Adapter: a part's symbolic arm as a Def. 2.4 memory model."""

    part: Optional[MemoryPart] = None

    def __init__(self, part: Optional[MemoryPart] = None) -> None:
        """Bind ``part``, or use the subclass's class-level part."""
        if part is not None:
            self.part = part
        if self.part is None:
            raise ValueError("PartSymbolicModel requires a memory part")

    @property
    def actions(self) -> frozenset:
        """The underlying part's action names."""
        return self.part.actions

    def initial(self) -> object:
        """The part's empty symbolic memory."""
        return self.part.initial_symbolic()

    def execute(
        self, action: str, memory: object, expr: Expr, pc, solver
    ) -> List[SymbolicBranch]:
        """Delegate to the part's symbolic arm."""
        return self.part.execute_symbolic(action, memory, expr, pc, solver)


# -- action renaming ----------------------------------------------------------


class RenamedPart(MemoryPart):
    """``inner`` with some actions exposed under new names.

    ``mapping`` sends outer names to inner names; inner actions not
    mentioned keep their names.  Memories are the inner part's memories
    unchanged, so renaming composes freely with any other combinator.
    """

    def __init__(self, inner: MemoryPart, mapping: Dict[str, str]) -> None:
        """Validate the mapping against ``inner``'s action set."""
        unknown = sorted(set(mapping.values()) - inner.actions)
        if unknown:
            raise ValueError(f"rename: unknown inner actions {unknown}")
        passthrough = inner.actions - frozenset(mapping.values())
        clashes = sorted(passthrough & set(mapping))
        if clashes:
            raise ValueError(f"rename: outer names clash with inner ones {clashes}")
        self.inner = inner
        self.mapping = dict(mapping)
        self._actions = frozenset(passthrough | set(mapping))

    @property
    def actions(self) -> frozenset:
        """The renamed action set."""
        return self._actions

    def _inner_action(self, action: str) -> str:
        """Translate an outer action name to the inner one."""
        return self.mapping.get(action, action)

    def initial_concrete(self) -> object:
        """The inner part's empty concrete memory."""
        return self.inner.initial_concrete()

    def initial_symbolic(self) -> object:
        """The inner part's empty symbolic memory."""
        return self.inner.initial_symbolic()

    def execute_concrete(
        self, action: str, memory: object, value: Value
    ) -> List[ConcreteBranch]:
        """Delegate under the inner action name."""
        return self.inner.execute_concrete(self._inner_action(action), memory, value)

    def execute_symbolic(
        self, action: str, memory: object, expr: Expr, pc, solver
    ) -> List[SymbolicBranch]:
        """Delegate under the inner action name."""
        return self.inner.execute_symbolic(
            self._inner_action(action), memory, expr, pc, solver
        )


def rename(inner: MemoryPart, mapping: Dict[str, str]) -> RenamedPart:
    """``inner`` with outer→inner action name ``mapping`` applied."""
    return RenamedPart(inner, mapping)


# -- product ------------------------------------------------------------------


@dataclass(frozen=True)
class PairMem:
    """A product memory: the left and right component memories."""

    left: object
    right: object


class ProductPart(MemoryPart):
    """Two parts side by side, dispatching on disjoint action sets.

    The product memory is a :class:`PairMem`; an action belonging to the
    left part rewrites only the left component (and symmetrically), with
    error branches and learned conditions passed through untouched.
    """

    def __init__(self, left: MemoryPart, right: MemoryPart) -> None:
        """Check action-set disjointness — the product's side condition."""
        overlap = sorted(left.actions & right.actions)
        if overlap:
            raise ValueError(f"product: parts share actions {overlap}")
        self.left = left
        self.right = right

    @property
    def actions(self) -> frozenset:
        """The union of the two (disjoint) action sets."""
        return self.left.actions | self.right.actions

    def initial_concrete(self) -> PairMem:
        """The pair of empty concrete component memories."""
        return PairMem(self.left.initial_concrete(), self.right.initial_concrete())

    def initial_symbolic(self) -> PairMem:
        """The pair of empty symbolic component memories."""
        return PairMem(self.left.initial_symbolic(), self.right.initial_symbolic())

    def _dispatch(self, action: str) -> Tuple[MemoryPart, bool]:
        """The component owning ``action`` and whether it is the left."""
        if action in self.left.actions:
            return self.left, True
        if action in self.right.actions:
            return self.right, False
        raise ValueError(f"unknown product action {action!r}")

    def execute_concrete(
        self, action: str, memory: PairMem, value: Value
    ) -> List[ConcreteBranch]:
        """Run the owning component; rebuild the pair on success."""
        part, is_left = self._dispatch(action)
        component = memory.left if is_left else memory.right
        out: List[ConcreteBranch] = []
        for branch in part.execute_concrete(action, component, value):
            if isinstance(branch, MemErr):
                out.append(branch)
            elif is_left:
                out.append(MemOk(PairMem(branch.memory, memory.right), branch.value))
            else:
                out.append(MemOk(PairMem(memory.left, branch.memory), branch.value))
        return out

    def execute_symbolic(
        self, action: str, memory: PairMem, expr: Expr, pc, solver
    ) -> List[SymbolicBranch]:
        """Run the owning component; rebuild the pair on success."""
        part, is_left = self._dispatch(action)
        component = memory.left if is_left else memory.right
        out: List[SymbolicBranch] = []
        for branch in part.execute_symbolic(action, component, expr, pc, solver):
            if isinstance(branch, SymMemErr):
                out.append(branch)
            elif is_left:
                out.append(
                    SymMemOk(
                        PairMem(branch.memory, memory.right),
                        branch.expr,
                        branch.learned,
                    )
                )
            else:
                out.append(
                    SymMemOk(
                        PairMem(memory.left, branch.memory),
                        branch.expr,
                        branch.learned,
                    )
                )
        return out


def product(left: MemoryPart, right: MemoryPart) -> ProductPart:
    """``left × right`` over disjoint action sets on a :class:`PairMem`."""
    return ProductPart(left, right)


# -- record-level parts -------------------------------------------------------

#: Sentinel a record part returns to say "the record did not change" —
#: the enclosing store then reuses its memory unchanged, preserving the
#: exact memory values (and pickles) the monolithic models produced.
UNCHANGED = type("_Unchanged", (), {"__repr__": lambda self: "UNCHANGED"})()


@dataclass(frozen=True)
class RecOk:
    """A successful record-level branch: new record (or UNCHANGED) + value."""

    record: object
    value: object
    learned: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class RecErr:
    """A failing record-level branch, guarded by ``learned``."""

    value: object
    learned: Tuple[Expr, ...] = ()


RecordBranch = Union[RecOk, RecErr]


class RecordPart(abc.ABC):
    """A component operating on one *record* of an enclosing store.

    Where a :class:`MemoryPart` owns a whole memory, a record part owns
    one entry of a :class:`~repro.memlib.freeable.Freeable` store (e.g.
    the property table or the metadata slot of a MiniJS object).  The
    enclosing store resolves the location, threads the learned
    conditions in, and lifts ``RecOk``/``RecErr`` back to memory-level
    branches.  ``args`` is the full action argument list — ``args[0]``
    is the (already-resolved) location, which record parts may use in
    error values.
    """

    @property
    @abc.abstractmethod
    def actions(self) -> frozenset:
        """The record-level action names."""

    @abc.abstractmethod
    def execute_concrete(
        self, action: str, record: object, value: Value
    ) -> List[RecordBranch]:
        """The concrete arm over one record."""

    @abc.abstractmethod
    def execute_symbolic(
        self, action: str, record: object, args: List[Expr],
        learned0: Tuple[Expr, ...], pc, solver,
    ) -> List[RecordBranch]:
        """The symbolic arm over one record, under ``learned0``."""
