"""Permissions: the access lattice and an action-gating wrapper part.

The paper's MiniC memory (§4.2) models permissions as integers in
ascending order of permissiveness; the constants and checks here are
shared by :mod:`repro.memlib.blockoffset` (per-block permissions) and by
the :class:`Permissions` wrapper, which gates a whole part's actions at
a fixed grant level — e.g. freezing a heap read-only by granting
``PERM_READABLE`` and requiring ``PERM_WRITABLE`` for its mutators.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.gil.values import Value
from repro.logic.expr import Expr, lst
from repro.memlib.core import MemFault, MemoryPart
from repro.state.interface import (
    ConcreteBranch,
    MemErr,
    SymbolicBranch,
    SymMemErr,
)

#: Permission levels, in ascending order of permissiveness (paper §4.2:
#: "we model permissions as integers, in ascending order").
PERM_NONE = 0
PERM_READABLE = 1
PERM_WRITABLE = 2
PERM_FREEABLE = 3


def require_perm(perm: int, need: int, loc) -> None:
    """Fault unless ``perm`` grants ``need``.

    ``PERM_NONE`` means the entry was freed — the fault is a
    use-after-free, not a permission failure; anything else below
    ``need`` is a permission denial.
    """
    if perm == PERM_NONE:
        raise MemFault(("use-after-free", loc))
    if perm < need:
        raise MemFault(("permission-denied", loc))


class Permissions(MemoryPart):
    """``inner`` with per-action required permission levels.

    ``required`` maps action names to the minimum level they need;
    unmapped actions need only ``PERM_READABLE``.  The wrapper holds a
    fixed ``granted`` level: an action whose requirement exceeds it
    becomes a single ``permission-denied`` error branch (both arms),
    otherwise the part is transparent.  Memories are the inner part's.
    """

    def __init__(
        self,
        inner: MemoryPart,
        required: Optional[Dict[str, int]] = None,
        granted: int = PERM_FREEABLE,
    ) -> None:
        """Gate ``inner``'s actions at the ``granted`` level."""
        required = dict(required or {})
        unknown = sorted(set(required) - inner.actions)
        if unknown:
            raise ValueError(f"permissions: unknown actions {unknown}")
        self.inner = inner
        self.required = required
        self.granted = granted

    @property
    def actions(self) -> frozenset:
        """The inner part's action names (gating renames nothing)."""
        return self.inner.actions

    def _denied(self, action: str) -> bool:
        """Whether ``action`` needs more than the granted level."""
        return self.required.get(action, PERM_READABLE) > self.granted

    def initial_concrete(self) -> object:
        """The inner part's empty concrete memory."""
        return self.inner.initial_concrete()

    def initial_symbolic(self) -> object:
        """The inner part's empty symbolic memory."""
        return self.inner.initial_symbolic()

    def execute_concrete(
        self, action: str, memory: object, value: Value
    ) -> List[ConcreteBranch]:
        """Deny or delegate."""
        if self._denied(action):
            return [MemErr(("permission-denied", action))]
        return self.inner.execute_concrete(action, memory, value)

    def execute_symbolic(
        self, action: str, memory: object, expr: Expr, pc, solver
    ) -> List[SymbolicBranch]:
        """Deny or delegate."""
        if self._denied(action):
            return [SymMemErr(lst("permission-denied", action))]
        return self.inner.execute_symbolic(action, memory, expr, pc, solver)
