"""``Freeable`` — an alloc/dispose store of records with error branches.

The combinator behind the MiniJS memory (paper §4.1): a store mapping
location expressions to *records*, with an allocation action, a dispose
action that marks the entry freed (``None``), and use-after-free /
not-an-object error branches on every access.  What happens *inside* a
live record is delegated to a :class:`~repro.memlib.core.RecordPart`
(e.g. a :class:`~repro.memlib.proptable.PropTable`, a
:class:`~repro.memlib.metadata.MetadataTable`, or their
:class:`RecordProduct`), so the lifecycle logic is written once.

Symbolically, the store resolves the accessed location by branching over
every store entry it may alias (the paper's [SGetProp - Branch] shape);
each surviving branch threads its learned equalities into the record
part, mirroring the monolithic MiniJS resolver exactly.

``create_on_absent`` lists actions that *implicitly allocate* an empty
record when the location resolves to nothing — the ingredient that turns
this combinator plus a property table into a freeable While-style heap
(see :mod:`repro.targets.while_lang.heap`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from repro.gil.ops import EvalError
from repro.gil.values import Symbol, Value, values_equal
from repro.logic.expr import Expr, Lit, lst
from repro.memlib.branching import match_key
from repro.memlib.convert import check_loc, unpack_list
from repro.memlib.core import (
    MemoryPart,
    RecErr,
    RecOk,
    RecordPart,
    UNCHANGED,
)
from repro.state.interface import (
    ConcreteBranch,
    MemErr,
    MemOk,
    SymbolicBranch,
    SymMemErr,
    SymMemOk,
)

#: Internal resolver tag for a freed (``None``) store entry.
FREED = type("_Freed", (), {"__repr__": lambda self: "FREED"})()


@dataclass(frozen=True)
class Record:
    """A store record: a metadata slot plus an ordered property table.

    Concrete records hold values; symbolic records hold expressions.
    The lookup/update methods below are the concrete arm's helpers
    (symbolic tables branch through the store instead).
    """

    metadata: object
    props: Tuple[Tuple[object, object], ...] = ()

    def get(self, key) -> Optional[object]:
        """The value at ``key``, or None if absent."""
        for k, v in self.props:
            if values_equal(k, key):
                return v
        return None

    def set(self, key, value) -> "Record":
        """This record with ``key`` bound to ``value`` (replace/append)."""
        out = []
        replaced = False
        for k, v in self.props:
            if values_equal(k, key):
                out.append((k, value))
                replaced = True
            else:
                out.append((k, v))
        if not replaced:
            out.append((key, value))
        return type(self)(self.metadata, tuple(out))

    def delete(self, key) -> "Record":
        """This record without ``key`` (no-op when absent)."""
        return type(self)(
            self.metadata,
            tuple((k, v) for k, v in self.props if not values_equal(k, key)),
        )


@dataclass(frozen=True)
class StoreMem:
    """Concrete freeable store: location → record (None once freed)."""

    entries: Tuple[Tuple[Symbol, Optional[Record]], ...] = ()

    def as_dict(self) -> Dict[Symbol, Optional[Record]]:
        """The entries as a dict (insertion order preserved)."""
        return dict(self.entries)

    @classmethod
    def of(cls, entries: Dict[Symbol, Optional[Record]]) -> "StoreMem":
        """The canonical (location-name sorted) store for ``entries``."""
        return cls(tuple(sorted(entries.items(), key=_entry_name)))


def _entry_name(kv) -> str:
    """Sort key for concrete store entries: the location symbol's name."""
    return kv[0].name


@dataclass(frozen=True)
class SymStoreMem:
    """Symbolic freeable store: location expressions → symbolic records."""

    entries: Tuple[Tuple[Expr, Optional[Record]], ...] = ()

    def as_dict(self) -> Dict[Expr, Optional[Record]]:
        """The entries as a dict (insertion order preserved)."""
        return dict(self.entries)

    def with_entry(self, loc: Expr, record: Optional[Record]) -> "SymStoreMem":
        """This store with ``loc`` bound to ``record`` (replace or
        append), preserving insertion order exactly as a dict round-trip
        would — in one O(B) pass with no intermediate dict."""
        entries = self.entries
        for i, (k, _v) in enumerate(entries):
            if k == loc:
                return type(self)(entries[:i] + ((loc, record),) + entries[i + 1:])
        return type(self)(entries + ((loc, record),))

    @classmethod
    def of(cls, entries: Dict[Expr, Optional[Record]]) -> "SymStoreMem":
        """A store over ``entries`` in dict (insertion) order."""
        return cls(tuple(entries.items()))


@dataclass(frozen=True)
class FreeableSpec:
    """Branding and lifecycle policy for a :class:`Freeable` store."""

    #: the allocation action name, or None for stores without explicit
    #: allocation (e.g. an implicitly-creating heap)
    alloc_action: Optional[str] = "initObj"
    dispose_action: str = "dispose"
    #: error tags for the two lifecycle error branches
    not_object_error: str = "type-error-not-an-object"
    disposed_error: str = "use-after-dispose"
    #: message for the concrete non-symbol-location EvalError
    loc_error: str = "not an object location"
    #: name used in unknown-action errors
    name: str = "Freeable"
    #: record-part actions that implicitly allocate an empty record when
    #: the location resolves to no entry (instead of erroring)
    create_on_absent: frozenset = frozenset()
    #: memory classes to build (targets subclass StoreMem/SymStoreMem)
    concrete_mem: Type[StoreMem] = StoreMem
    symbolic_mem: Type[SymStoreMem] = SymStoreMem
    #: record classes the alloc action instantiates (metadata as arg)
    concrete_record_cls: Type[Record] = Record
    symbolic_record_cls: Type[Record] = Record
    #: empty records used by ``create_on_absent`` implicit allocation
    concrete_empty_record: Optional[Record] = None
    symbolic_empty_record: Optional[Record] = None


class Freeable(MemoryPart):
    """The alloc/dispose record-store part, generic over a record part."""

    def __init__(self, record: RecordPart, spec: Optional[FreeableSpec] = None) -> None:
        """Wrap ``record`` in the lifecycle policy of ``spec``."""
        self.record = record
        self.spec = spec or FreeableSpec()
        names = {self.spec.dispose_action} | set(record.actions)
        if self.spec.alloc_action is not None:
            names.add(self.spec.alloc_action)
        self._actions = frozenset(names)

    @property
    def actions(self) -> frozenset:
        """alloc + dispose + the record part's actions."""
        return self._actions

    def initial_concrete(self) -> StoreMem:
        """The empty concrete store."""
        return self.spec.concrete_mem()

    def initial_symbolic(self) -> SymStoreMem:
        """The empty symbolic store."""
        return self.spec.symbolic_mem()

    # -- concrete arm --------------------------------------------------------

    def execute_concrete(
        self, action: str, memory: StoreMem, value: Value
    ) -> List[ConcreteBranch]:
        """Resolve the location, then run the lifecycle or the record part."""
        spec = self.spec
        if action not in self._actions:
            raise ValueError(f"unknown {spec.name} action {action!r}")
        entries = memory.as_dict()
        if action == spec.alloc_action:
            loc, metadata = value
            check_loc(loc, spec.loc_error)
            if loc in entries:
                raise EvalError(
                    f"{spec.alloc_action}: location {loc!r} already allocated"
                )
            entries[loc] = spec.concrete_record_cls(metadata)
            return [MemOk(spec.concrete_mem.of(entries), loc)]

        loc = value[0]
        record, err = self._resolve_concrete(entries, loc)
        if err is not None:
            if (
                action in spec.create_on_absent
                and isinstance(loc, Symbol)
                and loc not in entries
            ):
                record = spec.concrete_empty_record
            else:
                return [MemErr(err)]

        if action == spec.dispose_action:
            entries[loc] = None
            return [MemOk(spec.concrete_mem.of(entries), True)]

        out: List[ConcreteBranch] = []
        for r in self.record.execute_concrete(action, record, value):
            if isinstance(r, RecErr):
                out.append(MemErr(r.value))
            elif r.record is UNCHANGED:
                out.append(MemOk(memory, r.value))
            else:
                entries[loc] = r.record
                out.append(MemOk(spec.concrete_mem.of(entries), r.value))
        return out

    def _resolve_concrete(self, entries, loc):
        """A live record for ``loc``, or the error value to surface."""
        spec = self.spec
        if not isinstance(loc, Symbol) or loc not in entries:
            return None, (spec.not_object_error, loc)
        record = entries[loc]
        if record is None:
            return None, (spec.disposed_error, loc)
        return record, None

    # -- symbolic arm --------------------------------------------------------

    def execute_symbolic(
        self, action: str, memory: SymStoreMem, expr: Expr, pc, solver
    ) -> List[SymbolicBranch]:
        """Branch over aliasing entries, then lifecycle or record part."""
        spec = self.spec
        if action not in self._actions:
            raise ValueError(f"unknown {spec.name} action {action!r}")
        args = unpack_list(expr)
        if action == spec.alloc_action:
            loc, metadata = args
            if any(k == loc for k, _v in memory.entries):
                raise EvalError(
                    f"{spec.alloc_action}: location {loc!r} already allocated"
                )
            fresh = spec.symbolic_record_cls(metadata)
            return [SymMemOk(memory.with_entry(loc, fresh), loc)]

        loc = args[0]
        branches: List[SymbolicBranch] = []
        for resolved, tag, learned in self._resolve_symbolic(
            memory, loc, pc, solver
        ):
            if tag is None:
                branches.extend(
                    self._on_absent(action, memory, loc, args, learned, pc, solver)
                )
                continue
            if tag is FREED:
                branches.append(
                    SymMemErr(lst(spec.disposed_error, loc), learned)
                )
                continue
            if action == spec.dispose_action:
                branches.append(
                    SymMemOk(memory.with_entry(resolved, None), Lit(True), learned)
                )
                continue
            branches.extend(
                self._record_branches(
                    action, memory, resolved, tag, args, learned, pc, solver
                )
            )
        return branches

    def _resolve_symbolic(self, memory: SymStoreMem, loc: Expr, pc, solver):
        """Branch over the entries ``loc`` may denote.

        Returns (resolved location key, record | FREED | None, learned)
        triples.  In whole-program symbolic testing locations are
        literal symbols, so the equalities fold and exactly one branch
        survives; the general branching mirrors [SGetProp - Branch]
        nonetheless.
        """
        entries = memory.entries
        keys = [k for k, _v in entries]

        def on_match(i: int, learned):
            record = entries[i][1]
            tag = FREED if record is None else record
            return [(keys[i], tag, learned)]

        def on_absent(learned):
            return [(loc, None, learned)]

        return match_key(keys, loc, pc, solver, on_match, on_absent)

    def _on_absent(
        self, action: str, memory: SymStoreMem, loc: Expr, args, learned,
        pc, solver,
    ) -> List[SymbolicBranch]:
        """The location resolves to no entry: error, or implicit create."""
        spec = self.spec
        literal_non_symbol = isinstance(loc, Lit) and not isinstance(
            loc.value, Symbol
        )
        if action not in spec.create_on_absent or literal_non_symbol:
            return [SymMemErr(lst(spec.not_object_error, loc), learned)]
        return self._record_branches(
            action, memory, loc, spec.symbolic_empty_record, args, learned,
            pc, solver,
        )

    def _record_branches(
        self, action: str, memory: SymStoreMem, resolved: Expr, record: Record,
        args, learned, pc, solver,
    ) -> List[SymbolicBranch]:
        """Lift the record part's branches back to store level."""
        out: List[SymbolicBranch] = []
        for r in self.record.execute_symbolic(
            action, record, args, learned, pc, solver
        ):
            if isinstance(r, RecErr):
                out.append(SymMemErr(r.value, r.learned))
            elif r.record is UNCHANGED:
                out.append(SymMemOk(memory, r.value, r.learned))
            else:
                out.append(
                    SymMemOk(
                        memory.with_entry(resolved, r.record), r.value, r.learned
                    )
                )
        return out


class RecordProduct(RecordPart):
    """Several record parts over one record, on disjoint action sets.

    The record-level analogue of :func:`~repro.memlib.core.product`: a
    MiniJS object is ``RecordProduct(MetadataTable(), PropTable(...))``
    — the metadata slot and the property table share the record but own
    disjoint actions.
    """

    def __init__(self, *parts: RecordPart) -> None:
        """Check pairwise action-set disjointness."""
        seen: set = set()
        for part in parts:
            overlap = sorted(seen & part.actions)
            if overlap:
                raise ValueError(f"record product: parts share actions {overlap}")
            seen |= part.actions
        self.parts = tuple(parts)
        self._actions = frozenset(seen)

    @property
    def actions(self) -> frozenset:
        """The union of the component action sets."""
        return self._actions

    def _owner(self, action: str) -> RecordPart:
        """The component part owning ``action``."""
        for part in self.parts:
            if action in part.actions:
                return part
        raise ValueError(f"unknown record action {action!r}")

    def execute_concrete(self, action, record, value):
        """Delegate to the owning component."""
        return self._owner(action).execute_concrete(action, record, value)

    def execute_symbolic(self, action, record, args, learned0, pc, solver):
        """Delegate to the owning component."""
        return self._owner(action).execute_symbolic(
            action, record, args, learned0, pc, solver
        )
