"""``MetadataTable`` — the metadata slot of a store record.

The record-level part behind MiniJS object metadata (paper §4.1): every
:class:`~repro.memlib.freeable.Record` carries one metadata value (the
paper uses it for the JS internal prototype/class slot), read and
written by ``getMetadata`` / ``setMetadata``.  Neither action branches:
the slot always exists on a live record, so both arms are singleton.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.gil.values import Value
from repro.logic.expr import Expr
from repro.memlib.core import RecordBranch, RecOk, RecordPart, UNCHANGED
from repro.memlib.freeable import Record

ACTIONS = frozenset({"getMetadata", "setMetadata"})


class MetadataTable(RecordPart):
    """The metadata-slot record part (both arms)."""

    @property
    def actions(self) -> frozenset:
        """getMetadata / setMetadata."""
        return ACTIONS

    def execute_concrete(
        self, action: str, record: Record, value: Value
    ) -> List[RecordBranch]:
        """Read or replace the concrete metadata value."""
        if action == "getMetadata":
            return [RecOk(UNCHANGED, record.metadata)]
        if action == "setMetadata":
            metadata = value[1]
            return [RecOk(type(record)(metadata, record.props), metadata)]
        raise ValueError(f"unknown metadata action {action!r}")

    def execute_symbolic(
        self, action: str, record: Record, args: List[Expr],
        learned0: Tuple[Expr, ...], pc, solver,
    ) -> List[RecordBranch]:
        """Read or replace the metadata expression (no branching)."""
        if action == "getMetadata":
            return [RecOk(UNCHANGED, record.metadata, learned0)]
        if action == "setMetadata":
            metadata = args[1]
            return [
                RecOk(type(record)(metadata, record.props), metadata, learned0)
            ]
        raise ValueError(f"unknown metadata action {action!r}")
