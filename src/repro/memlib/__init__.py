"""Parametric memory-model combinators (paper §3; arXiv 2508.15576).

The paper's central claim is that Gillian is *parametric* on the memory
model: a tool developer supplies per-language actions and gets symbolic
execution for free.  *Compositional Symbolic Execution for the Next 700
Memory Models* (arXiv 2508.15576) sharpens that claim — real memory
models are compositions of a small algebra of reusable *state-model
combinators*.  This package is that algebra:

* :class:`~repro.memlib.pmap.PMap` — a partial map with symbolic-key
  branching (Figure 3's [S-Lookup]/[S-Mutate] rules);
* :class:`~repro.memlib.freeable.Freeable` — an alloc/dispose lifecycle
  wrapper whose freed entries produce use-after-free error branches;
* :class:`~repro.memlib.proptable.PropTable` /
  :class:`~repro.memlib.metadata.MetadataTable` — record-level parts for
  extensible property tables and metadata slots;
* :class:`~repro.memlib.blockoffset.BlockOffset` — CompCert-style
  block/offset cells with bounds, alignment, permissions, and
  value-fragment encoding;
* :class:`~repro.memlib.permissions.Permissions` — an action-gating
  permission wrapper;
* :func:`~repro.memlib.core.rename` / :func:`~repro.memlib.core.product`
  — action renaming and action-disjoint products.

Every part provides *both* the concrete and the symbolic ``execute``
arm of :mod:`repro.state.interface`, adapted to the engine-facing
memory-model ABCs by :class:`~repro.memlib.core.PartConcreteModel` and
:class:`~repro.memlib.core.PartSymbolicModel`.  The three target
memories (While, MiniJS, MiniC) are composition expressions over these
parts, differential-fuzz-fingerprinted byte-identical to their former
monolithic implementations (``tools/fingerprint.py``).
"""

from repro.memlib.blockoffset import (
    Block,
    BlockMem,
    BlockOffset,
    BlockSpec,
    SymBlock,
    SymBlockMem,
)
from repro.memlib.core import (
    MemFault,
    MemoryPart,
    PairMem,
    PartConcreteModel,
    PartSymbolicModel,
    ProductPart,
    RecErr,
    RecOk,
    RecordPart,
    RenamedPart,
    UNCHANGED,
    product,
    rename,
)
from repro.memlib.freeable import Freeable, FreeableSpec, Record, RecordProduct
from repro.memlib.metadata import MetadataTable
from repro.memlib.permissions import (
    PERM_FREEABLE,
    PERM_NONE,
    PERM_READABLE,
    PERM_WRITABLE,
    Permissions,
)
from repro.memlib.pmap import PMap, PMapSpec
from repro.memlib.proptable import PropTable, PropTableSpec

__all__ = [
    "Block",
    "BlockMem",
    "BlockOffset",
    "BlockSpec",
    "SymBlock",
    "SymBlockMem",
    "MemFault",
    "MemoryPart",
    "PairMem",
    "PartConcreteModel",
    "PartSymbolicModel",
    "ProductPart",
    "RecErr",
    "RecOk",
    "RecordPart",
    "RenamedPart",
    "UNCHANGED",
    "product",
    "rename",
    "Freeable",
    "FreeableSpec",
    "Record",
    "RecordProduct",
    "MetadataTable",
    "PERM_FREEABLE",
    "PERM_NONE",
    "PERM_READABLE",
    "PERM_WRITABLE",
    "Permissions",
    "PMap",
    "PMapSpec",
    "PropTable",
    "PropTableSpec",
]
