"""``PropTable`` — an extensible property table over one store record.

The record-level part behind MiniJS property access (paper §4.1):
``getProp`` / ``setProp`` / ``delProp`` / ``hasProp`` over the ordered
``(key, value)`` table of a :class:`~repro.memlib.freeable.Record`.
Keys are logical expressions symbolically — JavaScript's dynamic
property names are exactly what makes this part branch (the paper's
[SGetProp - Branch - Found] rule).

The spec chooses what an absent ``getProp`` means (a default value, as
in JavaScript's ``undefined``, or an error branch, as in a While-style
heap) and which of the two branching behaviours
:func:`~repro.memlib.branching.match_key` supports this table uses.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.gil.values import Value
from repro.logic.expr import Expr, Lit, lst
from repro.memlib.branching import match_key
from repro.memlib.core import RecErr, RecOk, RecordBranch, RecordPart, UNCHANGED
from repro.memlib.freeable import Record

ACTIONS = frozenset({"getProp", "setProp", "delProp", "hasProp"})


@dataclass(frozen=True)
class PropTableSpec:
    """Absent-key policy and branching behaviour for a table."""

    #: when set, an absent ``getProp`` is an error branch with this tag
    #: (value ``[tag, loc, key]``); when None, it yields ``absent_value``
    absent_get_error: Optional[str] = None
    #: the value an absent ``getProp`` yields (e.g. JS ``undefined``)
    absent_value: object = None
    #: a concrete key hit keeps the symbolic branches found before it
    #: (the MiniJS behaviour); a While-style table returns only the hit
    keep_prior_on_hit: bool = True
    #: consult the solver for the absent branch even with nothing
    #: learned (the While behaviour); MiniJS takes it for free
    sat_check_on_empty_absent: bool = False


class PropTable(RecordPart):
    """The property-table record part (both arms)."""

    def __init__(self, spec: Optional[PropTableSpec] = None) -> None:
        """Build the table over ``spec`` (default: MiniJS behaviour)."""
        self.spec = spec or PropTableSpec()

    @property
    def actions(self) -> frozenset:
        """getProp / setProp / delProp / hasProp."""
        return ACTIONS

    # -- concrete arm --------------------------------------------------------

    def execute_concrete(
        self, action: str, record: Record, value: Value
    ) -> List[RecordBranch]:
        """Value-level table access (keys compared with values_equal)."""
        spec = self.spec
        key = value[1]
        if action == "getProp":
            found = record.get(key)
            if found is not None:
                return [RecOk(UNCHANGED, found)]
            if spec.absent_get_error is not None:
                return [RecErr((spec.absent_get_error, value[0], key))]
            return [RecOk(UNCHANGED, spec.absent_value)]
        if action == "setProp":
            new_value = value[2]
            return [RecOk(record.set(key, new_value), new_value)]
        if action == "delProp":
            return [RecOk(record.delete(key), True)]
        if action == "hasProp":
            return [RecOk(UNCHANGED, record.get(key) is not None)]
        raise ValueError(f"unknown property-table action {action!r}")

    # -- symbolic arm --------------------------------------------------------

    def execute_symbolic(
        self, action: str, record: Record, args: List[Expr],
        learned0: Tuple[Expr, ...], pc, solver,
    ) -> List[RecordBranch]:
        """The [SGetProp]-style branch over the record's table."""
        spec = self.spec
        key = args[1]
        props = record.props
        keys = [k for k, _v in props]

        def branch(on_match, on_absent) -> List[RecordBranch]:
            return match_key(
                keys, key, pc, solver, on_match, on_absent,
                learned0=learned0,
                keep_prior_on_concrete_hit=spec.keep_prior_on_hit,
                sat_check_on_empty_absent=spec.sat_check_on_empty_absent,
            )

        if action == "getProp":
            def on_absent(learned):
                if spec.absent_get_error is not None:
                    return [
                        RecErr(
                            lst(spec.absent_get_error, args[0], key), learned
                        )
                    ]
                return [RecOk(UNCHANGED, Lit(spec.absent_value), learned)]

            return branch(
                lambda i, learned: [RecOk(UNCHANGED, props[i][1], learned)],
                on_absent,
            )
        if action == "hasProp":
            return branch(
                lambda i, learned: [RecOk(UNCHANGED, Lit(True), learned)],
                lambda learned: [RecOk(UNCHANGED, Lit(False), learned)],
            )
        if action == "setProp":
            new_value = args[2]

            def set_at(i: int, learned) -> List[RecordBranch]:
                table = list(props)
                table[i] = (table[i][0], new_value)
                updated = type(record)(record.metadata, tuple(table))
                return [RecOk(updated, new_value, learned)]

            def set_fresh(learned) -> List[RecordBranch]:
                updated = type(record)(
                    record.metadata, props + ((key, new_value),)
                )
                return [RecOk(updated, new_value, learned)]

            return branch(set_at, set_fresh)
        if action == "delProp":
            def del_at(i: int, learned) -> List[RecordBranch]:
                updated = type(record)(
                    record.metadata, props[:i] + props[i + 1:]
                )
                return [RecOk(updated, Lit(True), learned)]

            return branch(
                del_at,
                lambda learned: [RecOk(UNCHANGED, Lit(True), learned)],
            )
        raise ValueError(f"unknown property-table action {action!r}")
