"""``BlockOffset`` — CompCert-style block/offset cells (paper §4.2).

The combinator behind the MiniC memory: a collection of separated
blocks, each an array of byte-sized cells; pointers are block-offset
pairs ``[l, off]``.  A cell holds either ``undef`` (uninitialised) or a
*value fragment* ``[v, k, n, tag]`` — the k-th of n bytes of value ``v``
encoded with chunk type ``tag`` (the CompCertS unified treatment the
paper adopts for both the concrete and symbolic models).

Loads and stores go through chunks ``[size, align, type]`` and check, in
order (mirroring the paper's [SLoad - Valid Access] rule):

1. the block exists and is not freed (catches use-after-free);
2. the permission allows the access (:mod:`repro.memlib.permissions`);
3. the access is in bounds (catches buffer overflows — the class of the
   off-by-one Collections-C bug the paper found);
4. alignment;
5. the read bytes decode to a single value of the chunk's type (catches
   uninitialised and type-confused reads).

Pointer comparison is the ``cmp_ptr`` action: relational comparison of
pointers into *different* blocks is C undefined behaviour, as is any
comparison involving a pointer into a freed block — both error
branches, reproducing the UB findings of §4.2.

Symbolic offsets are concretised by branching over the feasible concrete
offsets of the (concrete-sized) block
(:func:`~repro.memlib.branching.concretise_int`); the paper shares this
limitation ("we do not reason about allocation of symbolic size").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple, Type

from repro.gil.ops import EvalError
from repro.gil.values import Symbol, Value, values_equal
from repro.logic.expr import Expr, Lit, UnOp, UnOpExpr, lst
from repro.logic.simplify import simplify
from repro.memlib.branching import concretise_int
from repro.memlib.convert import as_expr, as_expr_list, unpack_list
from repro.memlib.core import MemFault, MemoryPart
from repro.memlib.permissions import (
    PERM_FREEABLE,
    PERM_NONE,
    PERM_READABLE,
    PERM_WRITABLE,
    require_perm,
)
from repro.state.interface import (
    ConcreteBranch,
    MemErr,
    MemOk,
    SymbolicBranch,
    SymMemErr,
    SymMemOk,
)

ACTIONS = frozenset(
    {"alloc", "free", "load", "store", "memcpy", "memset", "cmp_ptr", "bounds"}
)

# A cell is None (undef) or a fragment tuple (value, k, size, tag).
Fragment = Tuple[object, int, int, str]


@dataclass(frozen=True)
class Block:
    """One allocation: concrete size, uniform permission, byte cells."""

    size: int
    perm: int
    cells: Tuple[Optional[Fragment], ...]

    @classmethod
    def fresh(cls, size: int, perm: int = PERM_FREEABLE) -> "Block":
        """A fresh all-``undef`` block."""
        return cls(size, perm, (None,) * size)


@dataclass(frozen=True)
class SymBlock:
    """A symbolic block: concrete size/permission, symbolic contents."""

    size: int
    perm: int
    cells: Tuple[Optional[Fragment], ...]  # fragment values are Exprs

    @classmethod
    def fresh(cls, size: int, perm: int = PERM_FREEABLE) -> "SymBlock":
        """A fresh all-``undef`` symbolic block."""
        return cls(size, perm, (None,) * size)


@dataclass(frozen=True)
class BlockMem:
    """Concrete block memory: a sorted map from block symbols to blocks."""

    blocks: Tuple[Tuple[Symbol, Block], ...] = ()

    def as_dict(self) -> Dict[Symbol, Block]:
        """The blocks as a dict (insertion order preserved)."""
        return dict(self.blocks)

    @classmethod
    def of(cls, blocks: Dict[Symbol, Block]) -> "BlockMem":
        """The canonical (name-sorted) memory for ``blocks``."""
        return cls(tuple(sorted(blocks.items(), key=_block_name)))


def _block_name(kv) -> str:
    """Sort key for blocks: the block symbol's name."""
    return kv[0].name


@dataclass(frozen=True)
class SymBlockMem:
    """Symbolic block memory: blocks whose cells hold value expressions."""

    blocks: Tuple[Tuple[Symbol, SymBlock], ...] = ()

    def as_dict(self) -> Dict[Symbol, SymBlock]:
        """The blocks as a dict (insertion order preserved)."""
        return dict(self.blocks)

    def index(self) -> Dict[Symbol, SymBlock]:
        """The block lookup dict, built once and cached on the instance.

        Callers must treat it as read-only: the cache is shared between
        every branch holding this (immutable) memory.  Updates go
        through :meth:`with_block`, which never copies the dict.
        """
        d = self.__dict__.get("_index")
        if d is None:
            d = dict(self.blocks)
            object.__setattr__(self, "_index", d)
        return d

    def with_block(self, loc: Symbol, block: SymBlock) -> "SymBlockMem":
        """This memory with ``loc`` bound to ``block`` (replace or
        insert), preserving the sorted-tuple canonical form in one O(B)
        pass — no intermediate dict, no re-sort."""
        blocks = self.blocks
        name = loc.name
        for i, (s, _b) in enumerate(blocks):
            if s == loc:
                return type(self)(blocks[:i] + ((loc, block),) + blocks[i + 1:])
            if s.name > name:
                return type(self)(blocks[:i] + ((loc, block),) + blocks[i:])
        return type(self)(blocks + ((loc, block),))

    def __reduce__(self):
        """Pickle from ``blocks`` alone.

        Keeps the cached lookup index off the wire: equal memories must
        pickle to equal payloads regardless of which instance has been
        read from.
        """
        return (type(self), (self.blocks,))

    @classmethod
    def of(cls, blocks: Dict[Symbol, SymBlock]) -> "SymBlockMem":
        """The canonical (name-sorted) memory for ``blocks``."""
        return cls(tuple(sorted(blocks.items(), key=_block_name)))


# -- shared cell-level logic (parameterised by value representation) -----------


def check_access(
    block, offset: int, size: int, align: int, need_perm: int, loc: Symbol
) -> None:
    """The [SLoad - Valid Access] side conditions, faulting in order."""
    require_perm(block.perm, need_perm, loc)
    if offset < 0 or offset + size > block.size:
        raise MemFault(("buffer-overflow", loc, offset, size, block.size))
    if offset % align != 0:
        raise MemFault(("misaligned-access", loc, offset, align))


def decode(block, offset: int, size: int, tag: str, loc: Symbol):
    """Read ``size`` cells and decode them back into the stored value.

    Two decodings succeed: reading back a value stored with the same
    chunk, and reconstructing an integer from individually-written
    concrete bytes (``calloc``/``memset`` initialisation).  Anything
    else — type punning, partial overwrites — decodes to ``undef`` in
    CompCert; using it is the error branch here.
    """
    first = block.cells[offset]
    if first is None:
        raise MemFault(("uninitialised-read", loc, offset))
    value, k0, n0, tag0 = first
    if k0 != 0 or n0 != size or tag0 != tag:
        return decode_bytes(block, offset, size, tag, loc)
    for i in range(1, size):
        cell = block.cells[offset + i]
        if cell is None:
            raise MemFault(("uninitialised-read", loc, offset + i))
        v, k, n, t = cell
        if k != i or n != size or t != tag or v is not value and v != value:
            raise MemFault(("corrupted-read", loc, offset + i, tag))
    return value


def byte_value(cell) -> Optional[int]:
    """The concrete byte a single-byte fragment holds, if concrete."""
    if cell is None:
        return None
    value, k, n, tag = cell
    if k != 0 or n != 1 or tag != "int8":
        return None
    if isinstance(value, Lit):  # symbolic cell holding a literal
        value = value.value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        return None
    if float(value).is_integer() and 0 <= value <= 255:
        return int(value)
    return None


def decode_bytes(block, offset: int, size: int, tag: str, loc: Symbol):
    """Reconstruct an integer from ``size`` concrete int8 cells
    (little-endian); pointers cannot be reassembled from bytes."""
    if tag == "ptr":
        raise MemFault(("corrupted-read", loc, offset, tag))
    total = 0
    for i in range(size):
        byte = byte_value(block.cells[offset + i])
        if byte is None:
            raise MemFault(("corrupted-read", loc, offset + i, tag))
        total += byte << (8 * i)
    return total


def encode(block, offset: int, size: int, tag: str, value):
    """``block`` with ``value`` fragmented into cells at ``offset``."""
    cells = list(block.cells)
    for i in range(size):
        cells[offset + i] = (value, i, size, tag)
    return type(block)(block.size, block.perm, tuple(cells))


def copy_cells(dst, dst_off: int, src, src_off: int, n: int):
    """``dst`` with ``n`` cells copied verbatim from ``src``."""
    cells = list(dst.cells)
    for i in range(n):
        cells[dst_off + i] = src.cells[src_off + i]
    return type(dst)(dst.size, dst.perm, tuple(cells))


def unpack_chunk(chunk) -> Tuple[int, int, str]:
    """A concrete (size, align, tag) chunk triple."""
    size, align, tag = chunk
    return int(size), int(align), str(tag)


@dataclass(frozen=True)
class BlockSpec:
    """Branding for a :class:`BlockOffset`: memory/block classes."""

    concrete_mem: Type[BlockMem] = BlockMem
    symbolic_mem: Type[SymBlockMem] = SymBlockMem
    concrete_block: Type[Block] = Block
    symbolic_block: Type[SymBlock] = SymBlock
    #: name used in unknown-action errors
    name: str = "block-offset"


class BlockOffset(MemoryPart):
    """The block/offset part (both arms).

    Blocks are literal symbols (allocated by ``uSym``); symbolic offsets
    are concretised by branching over feasible values, each branch
    learning ``offset = o``; infeasible and out-of-bounds cases are
    separated with learned conditions per [SLoad - Valid Access].
    """

    def __init__(self, spec: Optional[BlockSpec] = None) -> None:
        """Build the part over ``spec`` (default: plain block/offset)."""
        self.spec = spec or BlockSpec()

    @property
    def actions(self) -> frozenset:
        """alloc/free/load/store/memcpy/memset/cmp_ptr/bounds."""
        return ACTIONS

    def initial_concrete(self) -> BlockMem:
        """The empty concrete block memory."""
        return self.spec.concrete_mem()

    def initial_symbolic(self) -> SymBlockMem:
        """The empty symbolic block memory."""
        return self.spec.symbolic_mem()

    # -- concrete arm --------------------------------------------------------

    def execute_concrete(
        self, action: str, memory: BlockMem, value: Value
    ) -> List[ConcreteBranch]:
        """Run the action, converting faults to error branches."""
        try:
            return self._execute_concrete(action, memory, value)
        except MemFault as exc:
            return [MemErr(exc.value)]

    def _execute_concrete(
        self, action: str, memory: BlockMem, value: Value
    ) -> List[ConcreteBranch]:
        """The concrete action rules (may raise :class:`MemFault`)."""
        spec = self.spec
        blocks = memory.as_dict()

        if action == "alloc":
            loc, size = value
            self._loc(loc)
            if loc in blocks:
                raise EvalError(f"alloc: block {loc!r} exists")
            size = int(size)
            if size <= 0:
                raise MemFault(("invalid-allocation-size", size))
            blocks[loc] = spec.concrete_block.fresh(size)
            return [MemOk(spec.concrete_mem.of(blocks), (loc, 0))]

        if action == "free":
            ptr = value[0]
            loc, offset = self._pointer(ptr)
            block = self._block(blocks, loc)
            if block.perm == PERM_NONE:
                raise MemFault(("double-free", loc))
            if offset != 0:
                raise MemFault(("free-of-interior-pointer", loc))
            if block.perm < PERM_FREEABLE:
                raise MemFault(("permission-denied", loc, 0))
            blocks[loc] = spec.concrete_block(block.size, PERM_NONE, block.cells)
            return [MemOk(spec.concrete_mem.of(blocks), True)]

        if action == "load":
            chunk, ptr = value
            size, align, tag = unpack_chunk(chunk)
            loc, offset = self._pointer(ptr)
            block = self._block(blocks, loc)
            check_access(block, int(offset), size, align, PERM_READABLE, loc)
            loaded = decode(block, int(offset), size, tag, loc)
            return [MemOk(memory, loaded)]

        if action == "store":
            chunk, ptr, stored = value
            size, align, tag = unpack_chunk(chunk)
            loc, offset = self._pointer(ptr)
            block = self._block(blocks, loc)
            check_access(block, int(offset), size, align, PERM_WRITABLE, loc)
            blocks[loc] = encode(block, int(offset), size, tag, stored)
            return [MemOk(spec.concrete_mem.of(blocks), stored)]

        if action == "memcpy":
            dst, src, n = value
            n = int(n)
            dloc, doff = self._pointer(dst)
            sloc, soff = self._pointer(src)
            dblock = self._block(blocks, dloc)
            sblock = self._block(blocks, sloc)
            if n > 0:
                check_access(sblock, int(soff), n, 1, PERM_READABLE, sloc)
                check_access(dblock, int(doff), n, 1, PERM_WRITABLE, dloc)
                blocks[dloc] = copy_cells(dblock, int(doff), sblock, int(soff), n)
            return [MemOk(spec.concrete_mem.of(blocks), dst)]

        if action == "memset":
            ptr, n, byte = value
            n = int(n)
            loc, offset = self._pointer(ptr)
            block = self._block(blocks, loc)
            if n > 0:
                check_access(block, int(offset), n, 1, PERM_WRITABLE, loc)
                for i in range(n):
                    block = encode(block, int(offset) + i, 1, "int8", byte)
                blocks[loc] = block
            return [MemOk(spec.concrete_mem.of(blocks), ptr)]

        if action == "cmp_ptr":
            op, p1, p2 = value
            return [MemOk(memory, self._cmp_ptr_concrete(blocks, str(op), p1, p2))]

        if action == "bounds":
            ptr = value[0]
            loc, _ = self._pointer(ptr)
            block = self._block(blocks, loc)
            return [MemOk(memory, block.size)]

        raise ValueError(f"unknown {spec.name} action {action!r}")

    @staticmethod
    def _loc(loc) -> Symbol:
        """Require a concrete block symbol."""
        if not isinstance(loc, Symbol):
            raise EvalError(f"not a block: {loc!r}")
        return loc

    @staticmethod
    def _pointer(ptr) -> Tuple[Symbol, int]:
        """Split a concrete pointer value into (block, offset)."""
        if (
            isinstance(ptr, tuple)
            and len(ptr) == 2
            and isinstance(ptr[0], Symbol)
            and isinstance(ptr[1], (int, float))
        ):
            return ptr[0], int(ptr[1])
        if isinstance(ptr, (int, float)) and ptr == 0:
            raise MemFault(("null-dereference",))
        raise MemFault(("invalid-pointer", ptr))

    @staticmethod
    def _block(blocks, loc: Symbol):
        """The block at ``loc``, faulting on dangling pointers."""
        if loc not in blocks:
            raise MemFault(("invalid-pointer", loc))
        return blocks[loc]

    def _cmp_ptr_concrete(self, blocks, op: str, p1, p2):
        """Concrete pointer comparison with the §4.2 UB error cases."""
        def freed(p) -> bool:
            if isinstance(p, tuple) and len(p) == 2 and isinstance(p[0], Symbol):
                block = blocks.get(p[0])
                return block is not None and block.perm == PERM_NONE
            return False

        # Comparing a pointer into a freed block is undefined behaviour —
        # the "comparing freed pointers" bug class of §4.2.
        if freed(p1) or freed(p2):
            raise MemFault(("ub-compare-freed-pointer", p1, p2))

        null1 = isinstance(p1, (int, float)) and p1 == 0
        null2 = isinstance(p2, (int, float)) and p2 == 0
        if op in ("eq", "ne"):
            if null1 or null2:
                result = values_equal(p1, p2)
            elif p1[0] != p2[0]:
                result = False
            else:
                result = p1[1] == p2[1]
            return result if op == "eq" else not result
        # Relational: both must point into the same block.
        if null1 or null2:
            raise MemFault(("ub-relational-null-pointer", p1, p2))
        if p1[0] != p2[0]:
            raise MemFault(("ub-compare-different-blocks", p1, p2))
        o1, o2 = p1[1], p2[1]
        return {"lt": o1 < o2, "le": o1 <= o2, "gt": o1 > o2, "ge": o1 >= o2}[op]

    # -- symbolic arm --------------------------------------------------------

    def execute_symbolic(
        self, action: str, memory: SymBlockMem, expr: Expr, pc, solver
    ) -> List[SymbolicBranch]:
        """Run the action, converting faults to error branches."""
        args = unpack_list(expr)
        try:
            return self._execute_symbolic(action, memory, args, pc, solver)
        except MemFault as exc:
            return [SymMemErr(as_expr_list(exc.value))]

    def _execute_symbolic(
        self, action: str, memory: SymBlockMem, args, pc, solver
    ) -> List[SymbolicBranch]:
        """The symbolic action rules (may raise :class:`MemFault`)."""
        spec = self.spec
        # Read-only lookup view, cached on the (immutable) memory; every
        # update below builds a successor via ``with_block``.
        blocks = memory.index()

        if action == "alloc":
            loc = literal_symbol(args[0])
            size = concrete_int(args[1], "allocation size")
            if loc in blocks:
                raise EvalError(f"alloc: block {loc!r} exists")
            if size <= 0:
                raise MemFault(("invalid-allocation-size", size))
            return [
                SymMemOk(
                    memory.with_block(loc, spec.symbolic_block.fresh(size)),
                    lst(loc, 0),
                )
            ]

        if action == "free":
            loc, offset_expr = pointer_parts(args[0])
            block = self._block(blocks, loc)
            if block.perm == PERM_NONE:
                return [SymMemErr(lst("double-free", loc))]
            branches: List[SymbolicBranch] = []
            for off, learned in concretise_int(
                offset_expr, [0], pc, solver, _invalid_offset
            ):
                if off is None:
                    branches.append(
                        SymMemErr(lst("free-of-interior-pointer", loc), learned)
                    )
                    continue
                freed = memory.with_block(
                    loc, spec.symbolic_block(block.size, PERM_NONE, block.cells)
                )
                branches.append(SymMemOk(freed, Lit(True), learned))
            return branches

        if action == "load":
            chunk = concrete_chunk(args[0])
            loc, offset_expr = pointer_parts(args[1])
            return self._access(
                memory, blocks, loc, offset_expr, chunk, pc, solver,
                mode="load", stored=None,
            )

        if action == "store":
            chunk = concrete_chunk(args[0])
            loc, offset_expr = pointer_parts(args[1])
            return self._access(
                memory, blocks, loc, offset_expr, chunk, pc, solver,
                mode="store", stored=args[2],
            )

        if action == "memcpy":
            dloc, doff_e = pointer_parts(args[0])
            sloc, soff_e = pointer_parts(args[1])
            n = concrete_int(args[2], "memcpy length")
            dblock = self._block(blocks, dloc)
            sblock = self._block(blocks, sloc)
            doff = concrete_int(doff_e, "memcpy dst offset")
            soff = concrete_int(soff_e, "memcpy src offset")
            for block, off, loc, need in (
                (sblock, soff, sloc, PERM_READABLE),
                (dblock, doff, dloc, PERM_WRITABLE),
            ):
                if n > 0:
                    check_access(block, off, n, 1, need, loc)
            if n > 0:
                cells = list(dblock.cells)
                for i in range(n):
                    cells[doff + i] = sblock.cells[soff + i]
                memory = memory.with_block(
                    dloc, spec.symbolic_block(dblock.size, dblock.perm, tuple(cells))
                )
            return [SymMemOk(memory, args[0])]

        if action == "memset":
            loc, off_e = pointer_parts(args[0])
            n = concrete_int(args[1], "memset length")
            byte = args[2]
            block = self._block(blocks, loc)
            off = concrete_int(off_e, "memset offset")
            if n > 0:
                check_access(block, off, n, 1, PERM_WRITABLE, loc)
                cells = list(block.cells)
                for i in range(n):
                    cells[off + i] = (byte, 0, 1, "int8")
                memory = memory.with_block(
                    loc, spec.symbolic_block(block.size, block.perm, tuple(cells))
                )
            return [SymMemOk(memory, args[0])]

        if action == "cmp_ptr":
            return self._cmp_ptr_symbolic(memory, blocks, args, pc, solver)

        if action == "bounds":
            loc, _ = pointer_parts(args[0])
            block = self._block(blocks, loc)
            return [SymMemOk(memory, Lit(block.size))]

        raise ValueError(f"unknown {spec.name} action {action!r}")

    # -- load/store with offset concretisation -------------------------------

    def _access(
        self, memory, blocks, loc, offset_expr, chunk, pc, solver, mode, stored
    ) -> List[SymbolicBranch]:
        """Concretise the offset, then decode (load) or encode (store)."""
        spec = self.spec
        size, align, tag = chunk
        block = self._block(blocks, loc)
        if block.perm == PERM_NONE:
            return [SymMemErr(lst("use-after-free", loc))]
        need = PERM_READABLE if mode == "load" else PERM_WRITABLE
        if block.perm < need:
            return [SymMemErr(lst("permission-denied", loc))]

        feasible = list(range(0, block.size - size + 1, align))
        branches: List[SymbolicBranch] = []
        for off, learned in concretise_int(
            offset_expr, feasible, pc, solver, _invalid_offset
        ):
            if off is None:
                branches.append(
                    SymMemErr(
                        lst("buffer-overflow", loc, offset_expr, size, block.size),
                        learned,
                    )
                )
                continue
            if mode == "load":
                branches.extend(
                    self._decode_branches(
                        memory, block, off, size, tag, loc, learned, pc, solver
                    )
                )
            else:
                written = memory.with_block(
                    loc, encode(block, off, size, tag, stored)
                )
                branches.append(SymMemOk(written, stored, learned))
        return branches

    def _decode_branches(
        self, memory, block, off: int, size: int, tag: str, loc,
        learned, pc, solver,
    ) -> List[SymbolicBranch]:
        """Symbolic decode: like :func:`decode`, but byte reconstruction
        with *symbolic* byte values branches on the in-range conditions
        (the concrete decode succeeds exactly when every byte lies in
        [0, 255] under ε — required for MA-RS/MA-RC)."""
        try:
            value = decode(block, off, size, tag, loc)
            return [SymMemOk(memory, as_expr(value), learned)]
        except MemFault as exc:
            kind = exc.value[0]
            if kind != "corrupted-read":
                return [SymMemErr(as_expr_list(exc.value), learned)]
        # Attempt symbolic byte reconstruction.
        if tag == "ptr":
            return [
                SymMemErr(as_expr_list(("corrupted-read", loc, off, tag)), learned)
            ]
        byte_exprs: List[Expr] = []
        for i in range(size):
            cell = block.cells[off + i]
            if cell is None:
                return [
                    SymMemErr(
                        as_expr_list(("uninitialised-read", loc, off + i)), learned
                    )
                ]
            value, k, n, cell_tag = cell
            if k != 0 or n != 1 or cell_tag != "int8":
                return [
                    SymMemErr(
                        as_expr_list(("corrupted-read", loc, off + i, tag)), learned
                    )
                ]
            byte_exprs.append(as_expr(value))
        total: Expr = Lit(0)
        range_conds: List[Expr] = []
        for i, byte in enumerate(byte_exprs):
            total = simplify(total + byte * Lit(256**i))
            cond = simplify(Lit(0).leq(byte).and_(byte.leq(Lit(255))))
            if cond != Lit(True):
                range_conds.append(cond)
        branches: List[SymbolicBranch] = []
        ok_learned = learned + tuple(range_conds)
        if not any(c == Lit(False) for c in range_conds):
            if not range_conds or solver.is_sat(pc.conjoin_all(ok_learned)):
                branches.append(SymMemOk(memory, total, ok_learned))
        if range_conds:
            from repro.logic.expr import disj

            bad = simplify(
                disj(*[simplify(UnOpExpr(UnOp.NOT, c)) for c in range_conds])
            )
            bad_learned = learned + ((bad,) if bad != Lit(True) else ())
            if bad != Lit(False) and solver.is_sat(pc.conjoin_all(bad_learned)):
                branches.append(
                    SymMemErr(
                        as_expr_list(("corrupted-read", loc, off, tag)), bad_learned
                    )
                )
        return branches

    # -- pointer comparison --------------------------------------------------

    def _cmp_ptr_symbolic(self, memory, blocks, args, pc, solver) -> List[SymbolicBranch]:
        """Symbolic pointer comparison with the §4.2 UB error cases."""
        op = concrete_str(args[0])
        p1, p2 = args[1], args[2]

        def parts(p):
            """(kind, loc, offset) where kind is 'null' | 'ptr' | 'sym'."""
            p = simplify(p)
            if isinstance(p, Lit) and isinstance(p.value, (int, float)) \
                    and not isinstance(p.value, bool) and p.value == 0:
                return ("null", None, None)
            try:
                loc, off = pointer_parts(p)
                return ("ptr", loc, off)
            except MemFault:
                return ("sym", None, None)

        k1, l1, o1 = parts(p1)
        k2, l2, o2 = parts(p2)

        for kind, loc in ((k1, l1), (k2, l2)):
            if kind == "ptr":
                block = blocks.get(loc)
                if block is not None and block.perm == PERM_NONE:
                    # Report both operands, mirroring the concrete arm's
                    # payload shape — concrete replay must reproduce the
                    # error value bit for bit.
                    return [
                        SymMemErr(lst("ub-compare-freed-pointer", p1, p2))
                    ]

        if op in ("eq", "ne"):
            if k1 == "null" and k2 == "null":
                result = Lit(op == "eq")
            elif "null" in (k1, k2):
                result = Lit(op == "ne")
            elif k1 == "ptr" and k2 == "ptr":
                if l1 != l2:
                    result = Lit(op == "ne")
                else:
                    eq = simplify(o1.eq(o2)) if isinstance(o1, Expr) else Lit(o1 == o2)
                    result = eq if op == "eq" else simplify(UnOpExpr(UnOp.NOT, eq))
            else:
                result = simplify(
                    p1.eq(p2) if op == "eq" else UnOpExpr(UnOp.NOT, p1.eq(p2))
                )
            return [SymMemOk(memory, result)]

        # Relational comparison.
        if "null" in (k1, k2):
            return [SymMemErr(lst("ub-relational-null-pointer",))]
        if k1 != "ptr" or k2 != "ptr":
            return [SymMemErr(lst("ub-relational-unknown-pointer",))]
        if l1 != l2:
            return [SymMemErr(lst("ub-compare-different-blocks", l1, l2))]
        table = {
            "lt": lambda a, b: a.lt(b),
            "le": lambda a, b: a.leq(b),
            "gt": lambda a, b: b.lt(a),
            "ge": lambda a, b: b.leq(a),
        }
        result = simplify(table[op](as_expr(o1), as_expr(o2)))
        return [SymMemOk(memory, result)]


def _invalid_offset(e: Expr) -> MemFault:
    """The fault for a non-numeric literal pointer offset."""
    return MemFault(("invalid-pointer-offset", repr(e)))


# -- argument coercions (literal-only, per the paper's limitation) -------------


def literal_symbol(e: Expr) -> Symbol:
    """Require a literal block symbol."""
    e = simplify(e)
    if isinstance(e, Lit) and isinstance(e.value, Symbol):
        return e.value
    raise EvalError(f"expected a literal block symbol, got {e!r}")


def concrete_int(e: Expr, what: str) -> int:
    """Require a concrete integer, faulting with a ``what``-branded tag."""
    e = simplify(e)
    if isinstance(e, Lit) and isinstance(e.value, (int, float)) \
            and not isinstance(e.value, bool) and float(e.value).is_integer():
        return int(e.value)
    raise MemFault((f"symbolic-{what.replace(' ', '-')}-unsupported", repr(e)))


def concrete_str(e: Expr) -> str:
    """Require a literal string."""
    e = simplify(e)
    if isinstance(e, Lit) and isinstance(e.value, str):
        return e.value
    raise EvalError(f"expected a literal string, got {e!r}")


def concrete_chunk(e: Expr) -> Tuple[int, int, str]:
    """Require a literal (size, align, tag) chunk."""
    from repro.logic.expr import EList

    e = simplify(e)
    if isinstance(e, Lit) and isinstance(e.value, tuple):
        size, align, tag = e.value
        return int(size), int(align), str(tag)
    if isinstance(e, EList):
        items = [simplify(x) for x in e.items]
        if all(isinstance(x, Lit) for x in items):
            return int(items[0].value), int(items[1].value), str(items[2].value)
    raise EvalError(f"expected a literal chunk, got {e!r}")


def pointer_parts(e: Expr) -> Tuple[Symbol, Expr]:
    """Split a pointer expression into (literal block, offset expression)."""
    from repro.logic.expr import EList

    e = simplify(e)
    if isinstance(e, EList) and len(e.items) == 2:
        block = simplify(e.items[0])
        if isinstance(block, Lit) and isinstance(block.value, Symbol):
            return block.value, e.items[1]
    if isinstance(e, Lit):
        if isinstance(e.value, tuple) and len(e.value) == 2 \
                and isinstance(e.value[0], Symbol):
            return e.value[0], Lit(e.value[1])
        if isinstance(e.value, (int, float)) and not isinstance(e.value, bool) \
                and e.value == 0:
            raise MemFault(("null-dereference",))
    raise MemFault(("invalid-pointer", repr(e)))
