"""``PMap`` — a labelled partial map with symbolic-key branching.

The combinator behind the While memory (paper §2.4, Figure 3): cells
``(location, label) ↦ value`` with a concrete string label, three
actions (``lookup``, ``mutate``, ``dispose``), and the Figure 3 rules:

* [S-Lookup] branches over every location potentially equal to the
  looked-up one under π, passing the learned equality back to the state;
* [S-Mutate-Present]/[S-Mutate-Absent] likewise; the absent branch
  learns that the location differs from every location defining the
  label;
* ``dispose`` expands every aliasing pattern over the known locations
  (:func:`~repro.memlib.branching.alias_cases`), since cells under
  different labels can legitimately share a location;
* the error branches (no rule applies — missing cell, missing object)
  surface as ``SymMemErr``, which the interpreter turns into GIL errors
  ``E(v)``; this is how use-after-dispose is caught in While.

The error tags, label-coercion message, and memory classes are spec
parameters, so a target can brand the part without redefining it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type

from repro.gil.ops import EvalError
from repro.gil.values import Symbol, Value
from repro.logic.expr import Expr, Lit, lst
from repro.memlib.branching import alias_cases, match_key
from repro.memlib.convert import check_loc, concrete_label, unpack_list
from repro.memlib.core import MemoryPart
from repro.state.interface import (
    ConcreteBranch,
    MemErr,
    MemOk,
    SymbolicBranch,
    SymMemErr,
    SymMemOk,
)


@dataclass(frozen=True)
class MapMem:
    """An immutable concrete labelled-map memory: cells (ς, p) ↦ v."""

    cells: Tuple[Tuple[Tuple[Symbol, str], Value], ...] = ()

    def as_dict(self) -> Dict[Tuple[Symbol, str], Value]:
        """The cells as a dict (insertion order preserved)."""
        return dict(self.cells)

    @classmethod
    def of(cls, cells: Dict[Tuple[Symbol, str], Value]) -> "MapMem":
        """The canonical (name-then-label sorted) memory for ``cells``."""
        return cls(tuple(sorted(cells.items(), key=_concrete_cell_key)))


def _concrete_cell_key(kv) -> Tuple[str, str]:
    """Sort key for concrete cells: location name, then label."""
    return (kv[0][0].name, kv[0][1])


@dataclass(frozen=True)
class SymMapMem:
    """An immutable symbolic labelled-map memory: cells (ê, p) ↦ ê′."""

    cells: Tuple[Tuple[Tuple[Expr, str], Expr], ...] = ()

    def as_dict(self) -> Dict[Tuple[Expr, str], Expr]:
        """The cells as a dict (insertion order preserved)."""
        return dict(self.cells)

    @classmethod
    def of(cls, cells: Dict[Tuple[Expr, str], Expr]) -> "SymMapMem":
        """A memory over ``cells`` in dict (insertion) order."""
        return cls(tuple(cells.items()))

    def locations(self) -> List[Expr]:
        """Distinct location expressions in the memory, in cell order."""
        seen: List[Expr] = []
        for (loc, _label), _ in self.cells:
            if loc not in seen:
                seen.append(loc)
        return seen


@dataclass(frozen=True)
class PMapSpec:
    """Branding for a :class:`PMap`: memory classes and error wording."""

    #: memory classes to build (targets subclass MapMem/SymMapMem)
    concrete_mem: Type[MapMem] = MapMem
    symbolic_mem: Type[SymMapMem] = SymMapMem
    #: error tags surfaced in error-branch values
    missing_cell_error: str = "missing-property"
    missing_store_error: str = "missing-object"
    #: messages for argument-shape EvalErrors
    label_error: str = "property names must be concrete strings"
    loc_error: str = "not an object location"
    #: name used in unknown-action errors
    name: str = "PMap"
    #: action names (renameable here or via the rename combinator)
    lookup_action: str = "lookup"
    mutate_action: str = "mutate"
    dispose_action: str = "dispose"


class PMap(MemoryPart):
    """The labelled partial-map part (Figure 3, both columns)."""

    def __init__(self, spec: Optional[PMapSpec] = None) -> None:
        """Build the part over ``spec`` (default: a plain PMap)."""
        self.spec = spec or PMapSpec()
        # Action names cached as plain attributes: execute() compares
        # against them on every memory action, and one attribute load
        # beats two on that hot path.
        self._lookup_name = self.spec.lookup_action
        self._mutate_name = self.spec.mutate_action
        self._dispose_name = self.spec.dispose_action
        self._actions = frozenset(
            {self._lookup_name, self._mutate_name, self._dispose_name}
        )

    @property
    def actions(self) -> frozenset:
        """lookup / mutate / dispose (under the spec's names)."""
        return self._actions

    def initial_concrete(self) -> MapMem:
        """The empty concrete map."""
        return self.spec.concrete_mem()

    def initial_symbolic(self) -> SymMapMem:
        """The empty symbolic map."""
        return self.spec.symbolic_mem()

    # -- concrete arm (Figure 3, left column) -------------------------------

    def execute_concrete(
        self, action: str, memory: MapMem, value: Value
    ) -> List[ConcreteBranch]:
        """ea for {lookup, mutate, dispose}."""
        spec = self.spec
        cells = memory.as_dict()
        if action == self._lookup_name:
            loc, label = value
            check_loc(loc, spec.loc_error)
            label = str(label)
            if (loc, label) in cells:
                return [MemOk(memory, cells[(loc, label)])]
            return [MemErr((spec.missing_cell_error, loc, label))]
        if action == self._mutate_name:
            loc, label, new_value = value
            check_loc(loc, spec.loc_error)
            cells[(loc, str(label))] = new_value
            return [MemOk(spec.concrete_mem.of(cells), new_value)]
        if action == self._dispose_name:
            (loc,) = value
            check_loc(loc, spec.loc_error)
            remaining = {k: v for k, v in cells.items() if k[0] != loc}
            if len(remaining) == len(cells):
                return [MemErr((spec.missing_store_error, loc))]
            return [MemOk(spec.concrete_mem.of(remaining), True)]
        raise ValueError(f"unknown {spec.name} action {action!r}")

    # -- symbolic arm (Figure 3, right column) ------------------------------

    def execute_symbolic(
        self, action: str, memory: SymMapMem, expr: Expr, pc, solver
    ) -> List[SymbolicBranch]:
        """êa for {lookup, mutate, dispose}, with error branches."""
        spec = self.spec
        args = unpack_list(expr)
        if action == self._lookup_name:
            loc, label = args[0], concrete_label(args[1], spec.label_error)
            return self._lookup(memory, loc, label, pc, solver)
        if action == self._mutate_name:
            loc, label = args[0], concrete_label(args[1], spec.label_error)
            return self._mutate(memory, loc, label, args[2], pc, solver)
        if action == self._dispose_name:
            return self._dispose(memory, args[0], pc, solver)
        raise ValueError(f"unknown {spec.name} action {action!r}")

    # [S-Lookup]
    def _lookup(
        self, memory: SymMapMem, loc: Expr, label: str, pc, solver
    ) -> List[SymbolicBranch]:
        """Branch over every cell defining ``label`` that may alias ``loc``."""
        keys: List[Expr] = []
        values: List[Expr] = []
        for (cell_loc, cell_label), cell_value in memory.cells:
            if cell_label == label:
                keys.append(cell_loc)
                values.append(cell_value)

        def on_match(i: int, learned) -> List[SymbolicBranch]:
            return [SymMemOk(memory, values[i], learned)]

        def on_absent(learned) -> List[SymbolicBranch]:
            return [
                SymMemErr(
                    _err(self.spec.missing_cell_error, loc, label), learned
                )
            ]

        return match_key(
            keys, loc, pc, solver, on_match, on_absent,
            sat_check_on_empty_absent=True,
        )

    # [S-Mutate-Present] / [S-Mutate-Absent]
    def _mutate(
        self, memory: SymMapMem, loc: Expr, label: str, new_value: Expr,
        pc, solver,
    ) -> List[SymbolicBranch]:
        """Update the aliasing cell per branch; create it on the absent one."""
        spec = self.spec
        keys = [k[0] for k, _ in memory.cells if k[1] == label]

        def on_match(i: int, learned) -> List[SymbolicBranch]:
            cells = memory.as_dict()
            cells[(keys[i], label)] = new_value
            return [SymMemOk(spec.symbolic_mem.of(cells), new_value, learned)]

        def on_absent(learned) -> List[SymbolicBranch]:
            cells = memory.as_dict()
            cells[(loc, label)] = new_value
            return [SymMemOk(spec.symbolic_mem.of(cells), new_value, learned)]

        return match_key(
            keys, loc, pc, solver, on_match, on_absent,
            sat_check_on_empty_absent=True,
        )

    def _dispose(
        self, memory: SymMapMem, loc: Expr, pc, solver
    ) -> List[SymbolicBranch]:
        """Dispose branches over *every* aliasing pattern.

        A disposed location may alias several location expressions in
        the memory, so each known location independently contributes an
        "aliases / does not alias" case (see
        :func:`~repro.memlib.branching.alias_cases`); matched cases drop
        every cell under the matched locations, unmatched ones are the
        missing-object error branch.
        """
        spec = self.spec
        branches: List[SymbolicBranch] = []
        for matched_keys, learned, matched in alias_cases(
            memory.locations(), loc, pc, solver
        ):
            if matched:
                cells = {
                    k: v for k, v in memory.cells if k[0] not in matched_keys
                }
                branches.append(
                    SymMemOk(spec.symbolic_mem.of(cells), Lit(True), learned)
                )
            else:
                branches.append(
                    SymMemErr(_err(spec.missing_store_error, loc), learned)
                )
        return branches


def _err(tag: str, loc: Expr, label: Optional[str] = None) -> Expr:
    """A symbolic error value: [tag, loc] or [tag, loc, label]."""
    if label is None:
        return lst(tag, loc)
    return lst(tag, loc, label)
