"""Symbolic-key branching engines shared by every combinator.

Each engine reproduces, call-for-call, one of the branching loops the
monolithic target memories used; the differential-fuzz fingerprint
(``tools/fingerprint.py``) pins not only the branches produced but the
exact sequence of solver queries, so the engines are deliberately eager
or lazy exactly where the originals were and consult the solver under
the same guards.

* :func:`match_key` — the [S-Lookup]/[SGetProp]-style branch over an
  ordered key list, with the two behavioural flags on which the While
  and MiniJS loops differ;
* :func:`alias_cases` — the cartesian alias/no-alias case expansion the
  While ``dispose`` action performs over every known location;
* :func:`concretise_int` — the MiniC offset concretiser, kept a
  *generator* so solver calls interleave with the caller's per-offset
  work in the original order.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Sequence, Tuple

from repro.gil.values import values_equal
from repro.logic.expr import Expr, Lit
from repro.logic.simplify import simplify


def match_key(
    keys: Sequence[Expr],
    key: Expr,
    pc,
    solver,
    on_match: Callable[[int, Tuple[Expr, ...]], List],
    on_absent: Callable[[Tuple[Expr, ...]], List],
    *,
    learned0: Tuple[Expr, ...] = (),
    keep_prior_on_concrete_hit: bool = False,
    sat_check_on_empty_absent: bool = False,
) -> List:
    """Branch ``key`` over an ordered candidate ``keys`` list under ``pc``.

    For each candidate (in order) the engine simplifies the equality
    ``key = k``: a provably-false candidate is skipped; a provably-true
    one short-circuits to ``on_match(i, learned0)`` — returning *only*
    that branch, or appending it to the branches accumulated so far when
    ``keep_prior_on_concrete_hit`` is set (the MiniJS property-table
    behaviour); a genuinely symbolic equality contributes a branch iff
    the solver finds ``pc ∧ learned0 ∧ (key = k)`` satisfiable.  The
    final *absent* branch learns the disequality against every
    non-skipped candidate and is emitted iff feasible; when no
    disequality was learned, ``sat_check_on_empty_absent`` chooses
    between still consulting the solver (the While behaviour — the path
    condition itself may be infeasible) and taking the branch for free
    (the MiniJS behaviour).

    ``on_match(i, learned)`` / ``on_absent(learned)`` build the branch
    list for candidate index ``i`` under the accumulated ``learned``
    conditions (``learned0`` threaded through, per MiniJS's resolver).
    """
    branches: List = []
    miss: List[Expr] = []
    key_is_lit = isinstance(key, Lit)
    for i, k in enumerate(keys):
        if key_is_lit and isinstance(k, Lit):
            # Fast lane mirroring simplify exactly: a Lit/Lit equality
            # always folds to Lit(values_equal(...)), and the folded
            # disequality of a skipped pair is Lit(True), which the
            # absent branch filters out — so neither the branch list nor
            # the solver-call sequence can differ from the general path.
            if values_equal(key.value, k.value):
                hit = on_match(i, learned0)
                return branches + hit if keep_prior_on_concrete_hit else hit
            continue
        eq = simplify(key.eq(k))
        if eq == Lit(False):
            continue
        if eq == Lit(True):
            hit = on_match(i, learned0)
            return branches + hit if keep_prior_on_concrete_hit else hit
        learned = learned0 + (eq,)
        if solver.is_sat(pc.conjoin_all(learned)):
            branches.extend(on_match(i, learned))
        miss.append(simplify(key.neq(k)))
    if not any(c == Lit(False) for c in miss):
        learned = learned0 + tuple(c for c in miss if c != Lit(True))
        if not learned and not sat_check_on_empty_absent:
            branches.extend(on_absent(learned))
        elif solver.is_sat(pc.conjoin_all(learned)):
            branches.extend(on_absent(learned))
    return branches


def alias_cases(
    keys: Iterable[Expr], key: Expr, pc, solver
) -> List[Tuple[Tuple[Expr, ...], Tuple[Expr, ...], bool]]:
    """Expand every aliasing pattern of ``key`` against ``keys``.

    A disposed location may alias several location expressions at once
    (cells under different labels can legitimately share a location), so
    each known key independently contributes an "aliases / does not
    alias" case; cases are pruned against the path condition as they are
    built, in candidate order.  Returns ``(matched_keys, learned,
    matched_any)`` triples — ``matched_keys`` are the candidates the
    case identifies with ``key`` — with provably-true conditions already
    filtered from ``learned``.
    """
    # Each case: (matched keys, learned conditions, matched-any flag).
    cases: List[Tuple[Tuple[Expr, ...], List[Expr], bool]] = [((), [], False)]
    for known in keys:
        eq = simplify(key.eq(known))
        next_cases: List[Tuple[Tuple[Expr, ...], List[Expr], bool]] = []
        for matched_keys, learned, matched in cases:
            if eq == Lit(True):
                next_cases.append((matched_keys + (known,), learned, True))
                continue
            if eq == Lit(False):
                next_cases.append((matched_keys, learned, matched))
                continue
            # alias case
            alias_learned = learned + [eq]
            if solver.is_sat(pc.conjoin_all(alias_learned)):
                next_cases.append((matched_keys + (known,), alias_learned, True))
            # non-alias case
            diseq = simplify(key.neq(known))
            noalias_learned = learned + [diseq]
            if solver.is_sat(pc.conjoin_all(noalias_learned)):
                next_cases.append((matched_keys, noalias_learned, matched))
        cases = next_cases
    return [
        (matched_keys, tuple(c for c in learned if c != Lit(True)), matched)
        for matched_keys, learned, matched in cases
    ]


def concretise_int(
    offset_expr: Expr,
    feasible: Sequence[int],
    pc,
    solver,
    on_invalid: Callable[[Expr], Exception],
):
    """Branch a symbolic integer over the ``feasible`` concrete values.

    Yields ``(value, learned)`` pairs; ``value=None`` is the
    out-of-feasible-set branch (for block offsets: out of bounds or
    misaligned).  A literal short-circuits without touching the solver;
    a non-numeric literal raises ``on_invalid(offset_expr)``.  This is a
    *generator* on purpose: the MiniC access path interleaves each
    offset's solver query with the caller's decode work, and the
    fingerprint pins that interleaving.
    """
    offset_expr = simplify(offset_expr)
    if isinstance(offset_expr, Lit):
        off = offset_expr.value
        if isinstance(off, (int, float)) and not isinstance(off, bool):
            off = int(off)
            if off in feasible:
                yield off, ()
            else:
                yield None, ()
            return
        raise on_invalid(offset_expr)
    miss: List[Expr] = []
    for off in feasible:
        eq = simplify(offset_expr.eq(Lit(off)))
        if eq == Lit(False):
            continue
        if eq == Lit(True):
            yield off, ()
            return
        if solver.is_sat(pc.conjoin(eq)):
            yield off, (eq,)
        miss.append(simplify(offset_expr.neq(Lit(off))))
    learned = tuple(c for c in miss if c != Lit(True))
    if not any(c == Lit(False) for c in miss):
        if solver.is_sat(pc.conjoin_all(learned)):
            yield None, learned
