"""Argument/value conversions shared by every memory part.

Each of the three monolithic target memories carried a private copy of
these helpers; they are the glue between GIL's action calling convention
(one list-shaped argument expression) and the parts' typed views of it.
"""

from __future__ import annotations

from typing import List

from repro.gil.ops import EvalError
from repro.gil.values import Symbol
from repro.logic.expr import Expr, Lit, lst


def unpack_list(expr: Expr) -> List[Expr]:
    """View an action argument as a list of item expressions."""
    from repro.logic.expr import EList

    if isinstance(expr, EList):
        return list(expr.items)
    if isinstance(expr, Lit) and isinstance(expr.value, tuple):
        return [Lit(v) for v in expr.value]
    raise EvalError(f"action argument is not a list: {expr!r}")


def as_expr(x) -> Expr:
    """Wrap a raw value as an expression (exprs pass through)."""
    return x if isinstance(x, Expr) else Lit(x)


def as_expr_list(items) -> Expr:
    """An error-value list expression; non-literal items are reprs."""
    return lst(*[x if isinstance(x, (str, int, float, Symbol, bool)) else repr(x)
                 for x in items])


def check_loc(loc, message: str) -> None:
    """Require a concrete location symbol (concrete-arm argument check)."""
    if not isinstance(loc, Symbol):
        raise EvalError(f"{message}: {loc!r}")


def concrete_label(expr: Expr, message: str) -> str:
    """Require a concrete string label (e.g. a While property name)."""
    if isinstance(expr, Lit) and isinstance(expr.value, str):
        return expr.value
    raise EvalError(f"{message}: {expr!r}")
