"""Execution drivers: scheduler, strategies, budgets, events, concolic mode."""

from repro.engine.budget import Budget, BudgetDecision, StopReason
from repro.engine.concolic import ConcolicBug, ConcolicReport, ConcolicTester
from repro.engine.config import EngineConfig, gillian, javert2_baseline
from repro.engine.events import (
    BranchEvent,
    EventBus,
    PathEndEvent,
    ShardLostEvent,
    ShardRetryEvent,
    SolverQueryEvent,
    SolverUnknownEvent,
    StepEvent,
)
from repro.engine.events import WorkerEvent
from repro.engine.explorer import Explorer
from repro.engine.parallel import (
    ConcreteModelFactory,
    ParallelExplorer,
    SymbolicModelFactory,
    WorkerError,
    resolve_workers,
)
from repro.engine.results import (
    STOP_REASON_PRECEDENCE,
    ExecutionResult,
    ExecutionStats,
    Incompleteness,
    RunReport,
    merge_results,
    merge_stop_reasons,
)
from repro.engine.strategy import (
    BFSStrategy,
    CoverageGuidedStrategy,
    DFSStrategy,
    RandomStrategy,
    SearchStrategy,
    make_strategy,
    strategy_names,
)

__all__ = [
    "BFSStrategy", "BranchEvent", "Budget", "BudgetDecision",
    "ConcolicBug", "ConcolicReport", "ConcolicTester",
    "ConcreteModelFactory", "CoverageGuidedStrategy", "DFSStrategy",
    "EngineConfig", "EventBus", "ExecutionResult", "ExecutionStats",
    "Explorer", "Incompleteness", "ParallelExplorer", "PathEndEvent",
    "RandomStrategy", "RunReport", "STOP_REASON_PRECEDENCE",
    "SearchStrategy", "ShardLostEvent", "ShardRetryEvent",
    "SolverQueryEvent", "SolverUnknownEvent", "StepEvent", "StopReason",
    "SymbolicModelFactory", "WorkerError", "WorkerEvent", "gillian",
    "javert2_baseline", "make_strategy", "merge_results",
    "merge_stop_reasons", "resolve_workers", "strategy_names",
]
