"""Execution drivers: scheduler, strategies, budgets, events, concolic mode."""

from repro.engine.budget import Budget, BudgetDecision, StopReason
from repro.engine.concolic import ConcolicBug, ConcolicReport, ConcolicTester
from repro.engine.config import EngineConfig, gillian, javert2_baseline
from repro.engine.events import (
    BranchEvent,
    EventBus,
    PathEndEvent,
    SolverQueryEvent,
    StepEvent,
)
from repro.engine.explorer import Explorer
from repro.engine.results import ExecutionResult, ExecutionStats
from repro.engine.strategy import (
    BFSStrategy,
    CoverageGuidedStrategy,
    DFSStrategy,
    RandomStrategy,
    SearchStrategy,
    make_strategy,
    strategy_names,
)

__all__ = [
    "BFSStrategy", "BranchEvent", "Budget", "BudgetDecision",
    "ConcolicBug", "ConcolicReport", "ConcolicTester",
    "CoverageGuidedStrategy", "DFSStrategy", "EngineConfig", "EventBus",
    "ExecutionResult", "ExecutionStats", "Explorer", "PathEndEvent",
    "RandomStrategy", "SearchStrategy", "SolverQueryEvent", "StepEvent",
    "StopReason", "gillian", "javert2_baseline", "make_strategy",
    "strategy_names",
]
