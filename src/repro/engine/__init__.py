"""Execution drivers: path exploration, configurations, concolic mode."""

from repro.engine.concolic import ConcolicBug, ConcolicReport, ConcolicTester
from repro.engine.config import EngineConfig, gillian, javert2_baseline
from repro.engine.explorer import Explorer
from repro.engine.results import ExecutionResult, ExecutionStats

__all__ = [
    "ConcolicBug", "ConcolicReport", "ConcolicTester", "EngineConfig",
    "ExecutionResult", "ExecutionStats", "Explorer", "gillian",
    "javert2_baseline",
]
