"""Concolic execution on top of the parametric engine (paper §6).

The paper's conclusions: "we also plan to extend Gillian with ...
additional forms of analysis, such as concolic execution; Gillian's
modular design lends itself well to these extensions."  This module is
that extension: a DART-style concolic driver built *entirely out of the
platform's existing pieces* — the concrete state model executes, while a
shadow symbolic run over the same scripted inputs collects the path
condition; negating branch suffixes and solving yields the next input
vector.

The design exploits two platform properties:

* the scripted :class:`~repro.state.allocator.ConcreteAllocator` makes a
  concrete run follow any chosen input vector deterministically, and
* allocators name the logical variables of ``iSym`` sites
  deterministically (``val_site_idx``), so the symbolic shadow run's path
  condition speaks about exactly the inputs the driver controls.

One concolic iteration = one concrete path.  The driver maintains the
classic worklist of unexplored branch negations with a depth bound, and
reports the same confirmed-bug objects as the symbolic tester.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.engine.config import EngineConfig
from repro.engine.explorer import Explorer
from repro.gil.semantics import Final, OutcomeKind
from repro.gil.syntax import Prog
from repro.gil.values import Value, value_key
from repro.logic.expr import Expr, UnOp, UnOpExpr
from repro.logic.pathcond import PathCondition
from repro.logic.solver import Solver
from repro.state.allocator import ConcreteAllocator
from repro.state.concrete import ConcreteStateModel
from repro.state.symbolic import SymbolicStateModel
from repro.targets.language import Language


@dataclass
class ConcolicBug:
    """An error path hit by a concrete run (inherently confirmed)."""

    value: object
    inputs: Dict[str, Value]


@dataclass
class ConcolicReport:
    """Summary of a concolic run: iterations, paths, bugs, inputs tried."""

    iterations: int
    paths_explored: int
    bugs: List[ConcolicBug] = field(default_factory=list)
    input_vectors: List[Dict[str, Value]] = field(default_factory=list)

    @property
    def found_bug(self) -> bool:
        return bool(self.bugs)


class _DirectedSymbolicModel(SymbolicStateModel):
    """A symbolic state model whose branching follows a concrete oracle.

    ``branch_on`` keeps only the branch the concrete run took (decided by
    evaluating the condition under the input vector), so the shadow run
    explores exactly one path and its path condition is that path's.
    """

    def __init__(self, memory_model, solver, inputs: Dict[str, Value]) -> None:
        super().__init__(memory_model, solver=solver)
        self.inputs = inputs

    def branch_on(self, state, cond):
        from repro.gil.ops import EvalError, evaluate

        try:
            taken = evaluate(cond, lvar_env=self.inputs) is True
        except EvalError:
            # Can't decide concretely (input-independent symbol, etc.):
            # fall back to the first satisfiable branch.
            branches = super().branch_on(state, cond)
            return branches[:1]
        guard = cond if taken else UnOpExpr(UnOp.NOT, cond)
        out = []
        for st in self.assume(state, guard):
            out.append((st, taken))
        return out

    def execute_action(self, state, action, arg):
        branches = super().execute_action(state, action, arg)
        if len(branches) <= 1:
            return branches
        # Keep the branch consistent with the oracle inputs.
        from repro.gil.ops import EvalError, evaluate

        for branch in branches:
            conds = branch.state.pc.conjuncts[len(state.pc.conjuncts):]
            try:
                if all(evaluate(c, lvar_env=self.inputs) is True for c in conds):
                    return [branch]
            except EvalError:
                continue
        return branches[:1]


class ConcolicTester:
    """DART-style directed testing for any Gillian instantiation."""

    def __init__(
        self,
        language: Language,
        config: Optional[EngineConfig] = None,
        max_iterations: int = 64,
        strategy=None,
        events=None,
    ) -> None:
        self.language = language
        self.config = config if config is not None else EngineConfig()
        self.max_iterations = max_iterations
        #: scheduler knobs, handed to every Explorer this driver builds —
        #: the concrete run and the shadow symbolic run both go through
        #: the shared scheduler loop (strategy, budget, events included)
        self.strategy = strategy
        self.events = events

    def run(self, prog: Prog, entry: str) -> ConcolicReport:
        solver = Solver()
        seen_inputs: Set[tuple] = set()
        # Worklist of candidate input vectors; start unconstrained.
        worklist: List[Dict[str, Value]] = [{}]
        report = ConcolicReport(iterations=0, paths_explored=0)
        seen_paths: Set[tuple] = set()
        seen_values: Dict[str, List[Value]] = {}

        def input_key(vector: Dict[str, Value]) -> tuple:
            # Type-aware: Python's ``True == 1`` must not collapse inputs.
            return tuple(
                (name, value_key(value))
                for name, value in sorted(vector.items(), key=lambda kv: kv[0])
            )

        while worklist and report.iterations < self.max_iterations:
            inputs = worklist.pop(0)
            key = input_key(inputs)
            if key in seen_inputs:
                continue
            seen_inputs.add(key)
            report.iterations += 1
            report.input_vectors.append(inputs)

            final, pc = self._execute(prog, entry, inputs, solver)
            if pc is None:
                continue
            path_key = pc.conjuncts
            if path_key not in seen_paths:
                seen_paths.add(path_key)
                report.paths_explored += 1
            if final is not None and final.kind is OutcomeKind.ERROR:
                report.bugs.append(ConcolicBug(final.value, inputs))

            for name, value in inputs.items():
                seen_values.setdefault(name, []).append(value)

            # Flip each branch suffix to schedule new paths (DART).
            conjuncts = list(pc.conjuncts)
            for i in range(len(conjuncts)):
                flipped = conjuncts[:i] + [UnOpExpr(UnOp.NOT, conjuncts[i])]
                model = solver.get_model(flipped)
                if model is None:
                    continue
                candidate = {
                    name: value
                    for name, value in model.items()
                    if name.startswith("val_")
                }
                ckey = input_key(candidate)
                if ckey in seen_inputs:
                    # Ask for a *fresh* model: exclude the already-tried
                    # values of the variables the flipped conjunct reads.
                    model = self._fresh_model(
                        solver, flipped, conjuncts[i], seen_values
                    )
                    if model is None:
                        continue
                    candidate = {
                        name: value
                        for name, value in model.items()
                        if name.startswith("val_")
                    }
                    ckey = input_key(candidate)
                if ckey not in seen_inputs:
                    worklist.append(candidate)
        return report

    @staticmethod
    def _fresh_model(solver, flipped, pivot, seen_values):
        from repro.gil.values import is_value
        from repro.logic.expr import Lit, LVar, free_lvars

        extra = list(flipped)
        for name in free_lvars(pivot):
            for value in seen_values.get(name, []):
                if is_value(value):
                    extra.append(LVar(name).neq(Lit(value)))
        return solver.get_model(extra)

    # -- one concolic iteration ------------------------------------------------

    def _execute(
        self, prog: Prog, entry: str, inputs: Dict[str, Value], solver: Solver
    ) -> Tuple[Optional[Final], Optional[PathCondition]]:
        # Concrete run, scripted by the inputs.
        conc_sm = ConcreteStateModel(
            self.language.concrete_memory(), ConcreteAllocator(script=dict(inputs))
        )
        conc_result = Explorer(
            prog, conc_sm, self.config,
            strategy=self.strategy, events=self.events,
        ).run(entry)
        finals = [
            f for f in conc_result.finals if f.kind is not OutcomeKind.VANISH
        ]
        conc_final = finals[0] if finals else None

        # Shadow symbolic run along the same path, via the directed model.
        # Defaults for iSym sites the script does not cover mirror the
        # concrete allocator's default.
        oracle = _InputOracle(inputs, default=0)
        sym_sm = _DirectedSymbolicModel(
            self.language.symbolic_memory(), solver, oracle
        )
        sym_result = Explorer(
            prog, sym_sm, self.config,
            strategy=self.strategy, events=self.events,
        ).explore([self._initial_config(sym_sm, prog, entry)])
        all_finals = sym_result.finals
        if not all_finals:
            return conc_final, None
        return conc_final, all_finals[0].state.pc

    @staticmethod
    def _initial_config(sm, prog: Prog, entry: str):
        from repro.gil.semantics import make_call_config

        return make_call_config(sm, sm.initial_state(), prog, entry, [])


class _InputOracle(dict):
    """Input vector with the concrete allocator's default for new sites."""

    def __init__(self, inputs: Dict[str, Value], default: Value) -> None:
        super().__init__(inputs)
        self._default = default

    def __missing__(self, key: str) -> Value:
        if key.startswith("val_"):
            return self._default
        raise KeyError(key)

    def __contains__(self, key) -> bool:  # evaluate() checks membership
        return isinstance(key, str) and (
            super().__contains__(key) or key.startswith("val_")
        )
