"""Engine configurations.

The paper attributes Gillian-JS being roughly twice as fast as JaVerT 2.0
(§4.1, Table 1) to improvements in the symbolic execution engine — "more
efficient use of OCaml features, such as hashtables" and "better
simplifications and better caching of results" in the first-order solver.
We expose exactly those levers so the benchmark ablation (E4) can run the
same analysis under both configurations:

* :func:`gillian` — memoised simplifier + solver result cache;
* :func:`javert2_baseline` — same simplification *rules* (so exploration
  is identical: same branches, same results) but nothing is memoised or
  cached, which re-does the work JaVerT 2.0 re-did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union


@dataclass
class EngineConfig:
    name: str = "gillian"
    #: memoise the expression simplifier
    simplifier_memoisation: bool = True
    #: cache solver results per path-condition
    solver_cache: bool = True
    #: solve path conditions incrementally along prefix chains (per-prefix
    #: solver contexts, delta-only normalization, parent-model reuse); off
    #: means every query re-solves the whole conjunction monolithically
    solver_incremental: bool = True
    #: bound on GIL commands executed along a single path (loop unrolling
    #: bound; paper §1: "unrolling loops up to a bound")
    max_steps_per_path: int = 100_000
    #: bound on the number of explored paths
    max_paths: int = 100_000
    #: global bound on executed GIL commands
    max_total_steps: int = 5_000_000
    #: wall-clock budget per ``explore`` call, in seconds (None: unbounded)
    deadline: Optional[float] = None
    #: search strategy spec: "dfs" | "bfs" | "random" | "random:<seed>" |
    #: "coverage" (see :mod:`repro.engine.strategy`)
    strategy: str = "dfs"
    #: PRNG seed for the "random" strategy (when the spec carries none)
    random_seed: int = 0
    #: worker processes for path exploration: 1 (sequential, the
    #: default), an explicit count, or "auto" (``os.cpu_count()``).
    #: Values above 1 route harness/parallel-explorer runs through
    #: :class:`repro.engine.parallel.ParallelExplorer`, which shards the
    #: frontier across OS processes and merges outcomes
    #: deterministically (same multiset of finals as ``workers=1``).
    workers: Union[int, str] = 1


def gillian(**overrides) -> EngineConfig:
    """The optimised Gillian engine configuration."""
    return EngineConfig(name="gillian", **overrides)


def javert2_baseline(**overrides) -> EngineConfig:
    """The JaVerT 2.0-like baseline: identical precision, no caching."""
    return EngineConfig(
        name="javert2",
        simplifier_memoisation=False,
        solver_cache=False,
        solver_incremental=False,
        **overrides,
    )
