"""Engine configurations.

The paper attributes Gillian-JS being roughly twice as fast as JaVerT 2.0
(§4.1, Table 1) to improvements in the symbolic execution engine — "more
efficient use of OCaml features, such as hashtables" and "better
simplifications and better caching of results" in the first-order solver.
We expose exactly those levers so the benchmark ablation (E4) can run the
same analysis under both configurations:

* :func:`gillian` — memoised simplifier + solver result cache;
* :func:`javert2_baseline` — same simplification *rules* (so exploration
  is identical: same branches, same results) but nothing is memoised or
  cached, which re-does the work JaVerT 2.0 re-did.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

#: valid values for :attr:`EngineConfig.unknown_policy`
UNKNOWN_POLICIES = ("assume-sat", "prune", "abort")

#: valid values for :attr:`EngineConfig.shard_failure`
SHARD_FAILURE_MODES = ("degrade", "raise")

#: valid values for :attr:`EngineConfig.summary_mode`
SUMMARY_MODES = ("verify", "incorrectness")


@dataclass
class EngineConfig:
    """Every engine knob in one bundle; the named constructors below
    build the paper's tool configurations.
    """

    name: str = "gillian"
    #: memoise the expression simplifier
    simplifier_memoisation: bool = True
    #: cache solver results per path-condition
    solver_cache: bool = True
    #: solve path conditions incrementally along prefix chains (per-prefix
    #: solver contexts, delta-only normalization, parent-model reuse); off
    #: means every query re-solves the whole conjunction monolithically
    solver_incremental: bool = True
    #: drive execution through the compiled per-procedure step closures
    #: (:mod:`repro.gil.compile`) when the state model supports them; off
    #: forces the tree-walking interpreter everywhere.  Results are
    #: bit-identical either way (the differential fuzz suite asserts it);
    #: the flag exists for ablation and as the interpreter's oracle switch
    compiled: bool = True
    #: gen-0 garbage-collector threshold while a drive loop runs (0:
    #: leave the collector alone).  Path exploration allocates short-lived
    #: states, configs, and expression nodes at a rate that makes the
    #: default gen-0 threshold (~700 allocations) collect hundreds of
    #: times per run; batching collections recovers a double-digit share
    #: of wall time with bounded peak memory.  Purely a timing knob —
    #: results are unaffected.
    gc_batch: int = 50_000
    #: bound on GIL commands executed along a single path (loop unrolling
    #: bound; paper §1: "unrolling loops up to a bound")
    max_steps_per_path: int = 100_000
    #: bound on the number of explored paths
    max_paths: int = 100_000
    #: global bound on executed GIL commands
    max_total_steps: int = 5_000_000
    #: wall-clock budget per ``explore`` call, in seconds (None: unbounded)
    deadline: Optional[float] = None
    #: search strategy spec: "dfs" | "bfs" | "random" | "random:<seed>" |
    #: "coverage" (see :mod:`repro.engine.strategy`)
    strategy: str = "dfs"
    #: PRNG seed for the "random" strategy (when the spec carries none)
    random_seed: int = 0
    #: worker processes for path exploration: 1 (sequential, the
    #: default), an explicit count, or "auto" (``os.cpu_count()``).
    #: Values above 1 route harness/parallel-explorer runs through
    #: :class:`repro.engine.parallel.ParallelExplorer`, which shards the
    #: frontier across OS processes and merges outcomes
    #: deterministically (same multiset of finals as ``workers=1``).
    workers: Union[int, str] = 1
    #: per-query solver work budget, counted in solver *steps* (split
    #: branches, propagation passes, model-search nodes) rather than wall
    #: clock, so bounded runs stay deterministic.  A query that exhausts
    #: the budget answers ``UNKNOWN`` with its timeout recorded in
    #: ``SolverStats.timeouts`` / ``Incompleteness.solver_timeouts``.
    #: None (the default) leaves queries unbounded.
    solver_step_budget: Optional[int] = None
    #: attribute solver wall clock to pipeline phases (boolean case
    #: splitting, interval propagation, model search), surfaced in
    #: ``SolverStats`` / ``ExecutionStats.phase_times`` and emitted as
    #: ``SpanEnd`` events at the end of a run.  Off by default: profiling
    #: adds two ``perf_counter`` calls around each phase invocation
    profile_solver_phases: bool = False
    #: what the engine does with a branch whose feasibility the solver
    #: could not decide (``UNKNOWN``):
    #: ``"assume-sat"`` (default) keeps the branch alive — sound for
    #: bug-finding since every reported bug is separately confirmed by
    #: concrete replay (Theorem 3.6); ``"prune"`` drops the branch,
    #: trading possible coverage for a path set with no undecided
    #: feasibility; ``"abort"`` stops the run with stop reason
    #: ``"unknown-abort"``.  Every degraded decision is counted in the
    #: run's :class:`~repro.engine.results.Incompleteness` record.
    unknown_policy: str = "assume-sat"
    #: how many times a crashed/hung parallel shard is re-sharded and
    #: retried before its frontier is abandoned (counted per shard
    #: lineage, not per run)
    max_shard_retries: int = 2
    #: seconds of backoff before retry round ``r`` (scaled by ``r``);
    #: affects wall clock only, never results
    shard_retry_backoff: float = 0.05
    #: ``"degrade"`` (default): exhausted shard retries downgrade the run
    #: to stop reason ``"incomplete"`` — partial results from healthy
    #: shards are kept and the lost frontier is reported on the result;
    #: ``"raise"``: restore the historical behaviour of raising
    #: :class:`~repro.engine.parallel.WorkerError` on the first failure.
    shard_failure: str = "degrade"
    #: wall-clock seconds a silent worker may run before it is declared
    #: hung, terminated, and treated as a crashed shard (None: wait
    #: forever — hung workers then stall the run, as they always did)
    worker_timeout: Optional[float] = None
    #: seconds the parent waits when joining a worker process at shutdown
    #: before escalating to ``terminate()``
    worker_join_timeout: float = 30.0
    #: seconds between polls of the worker result queue (also the
    #: granularity of crash detection)
    worker_result_poll: float = 0.2
    #: compositional execution via function summaries
    #: (:mod:`repro.specs`): a procedure is executed once against a
    #: ``π = true`` pre-state and replayed at call sites from a
    #: content-addressed cache.  Off by default; applies only to the
    #: stock symbolic state model, and is ignored (never constructed)
    #: when a fault plan is installed.  With the default ``verify``
    #: mode the finals multiset is identical on vs off — the
    #: differential fuzz arm asserts it
    summaries: bool = False
    #: ``"verify"`` (default) replays only *complete* summaries (every
    #: callee path recorded), preserving the whole path set;
    #: ``"incorrectness"`` also replays partial summaries — paths may
    #: be dropped but never widened (arXiv 2407.10838), so bug reports
    #: remain true positives once confirmed by concrete replay
    summary_mode: str = "verify"
    #: directory for the durable checksummed summary store
    #: (:class:`repro.service.store.SummaryStore`); None keeps
    #: summaries in process memory only
    summary_dir: Optional[str] = None
    #: bound on GIL commands one summarisation run may execute before
    #: the summary is cut (and marked incomplete)
    summary_max_commands: int = 100_000
    #: bound on paths one summarisation run may explore
    summary_max_paths: int = 512
    #: deterministic fault-injection plan
    #: (:class:`repro.testing.faults.FaultPlan`); None disables injection
    #: entirely.  Test-only: production runs never set this.
    fault_plan: Optional[object] = None
    #: fault-injection context, set internally by the parallel explorer:
    #: the shard's worker id (None: the sequential/seeding phase)
    fault_worker: Optional[int] = None
    #: fault-injection context, set internally: the retry round (0 = the
    #: first attempt), letting plans model transient vs permanent faults
    fault_attempt: int = 0

    def __post_init__(self) -> None:
        if self.unknown_policy not in UNKNOWN_POLICIES:
            raise ValueError(
                f"unknown_policy must be one of {UNKNOWN_POLICIES}, "
                f"got {self.unknown_policy!r}"
            )
        if self.shard_failure not in SHARD_FAILURE_MODES:
            raise ValueError(
                f"shard_failure must be one of {SHARD_FAILURE_MODES}, "
                f"got {self.shard_failure!r}"
            )
        if self.max_shard_retries < 0:
            raise ValueError(
                f"max_shard_retries must be >= 0, got {self.max_shard_retries}"
            )
        if self.summary_mode not in SUMMARY_MODES:
            raise ValueError(
                f"summary_mode must be one of {SUMMARY_MODES}, "
                f"got {self.summary_mode!r}"
            )
        if self.summary_max_commands <= 0 or self.summary_max_paths <= 0:
            raise ValueError(
                "summary_max_commands and summary_max_paths must be positive"
            )


def gillian(**overrides) -> EngineConfig:
    """The optimised Gillian engine configuration."""
    return EngineConfig(name="gillian", **overrides)


def javert2_baseline(**overrides) -> EngineConfig:
    """The JaVerT 2.0-like baseline: identical precision, no caching."""
    return EngineConfig(
        name="javert2",
        simplifier_memoisation=False,
        solver_cache=False,
        solver_incremental=False,
        **overrides,
    )
