"""Deterministic exponential backoff with seeded jitter.

Retry loops in this repo — the parallel explorer's shard re-deal and the
analysis service's job retries — share one schedule shape: exponential
growth from a base delay, a hard cap, and optional jitter to de-correlate
retry storms.  :class:`BackoffPolicy` computes that schedule as a pure
function of ``(attempt, jitter_seed)``, so tests can assert the *exact*
delays (no wall-clock sleeping: callers take an injectable ``sleep``)
and two processes retrying the same failure spread out deterministically
given distinct seeds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class BackoffPolicy:
    """An exponential backoff schedule: ``base * factor**attempt``,
    capped at ``cap``, plus up to ``jitter`` fraction of the capped
    delay drawn from a PRNG seeded by ``jitter_seed`` mixed with the
    attempt number.

    ``delay(attempt)`` is a pure function — the same policy and attempt
    always produce the same delay — which is what lets the retry tests
    assert the full schedule instead of sampling wall clock.  A ``base``
    of 0 disables backoff entirely (every delay is 0.0).
    """

    base: float = 0.05
    factor: float = 2.0
    cap: float = 30.0
    jitter: float = 0.0
    jitter_seed: int = 0

    def __post_init__(self) -> None:
        if self.base < 0:
            raise ValueError(f"base must be >= 0, got {self.base}")
        if self.factor < 1:
            raise ValueError(f"factor must be >= 1, got {self.factor}")
        if self.cap < 0:
            raise ValueError(f"cap must be >= 0, got {self.cap}")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delay(self, attempt: int) -> float:
        """The delay before retry round ``attempt`` (0-based), in seconds."""
        if self.base <= 0:
            return 0.0
        raw = min(self.base * (self.factor ** attempt), self.cap)
        if not self.jitter:
            return raw
        rng = random.Random(self.jitter_seed * 1_000_003 + attempt)
        return raw * (1.0 + self.jitter * (rng.random() - 0.5))

    def schedule(self, attempts: int) -> "list[float]":
        """The first ``attempts`` delays, for logging and assertions."""
        return [self.delay(i) for i in range(attempts)]
