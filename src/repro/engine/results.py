"""Execution results, statistics, and incompleteness accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.gil.semantics import Final, OutcomeKind

#: Stop-reason precedence for merging runs: lower rank wins.  A merged
#: run reports the *most restrictive* reason any constituent hit —
#: "incomplete" (a shard's frontier was abandoned after crash retries)
#: over "unknown-abort" (the run stopped on an undecidable branch) over
#: "deadline" (the run was cut mid-flight by wall clock) over
#: "max-total-steps" (the global command budget ran dry) over
#: "max-paths" (the path cap evicted the worklist) over "exhausted"
#: (every constituent drained its worklist).  The parallel explorer's
#: shard merge relies on this order being total and documented; an
#: unknown reason ranks most restrictive of all so it is never silently
#: swallowed.
STOP_REASON_PRECEDENCE = (
    "incomplete",
    "unknown-abort",
    "deadline",
    "max-total-steps",
    "max-paths",
    "exhausted",
)

_STOP_RANK = {reason: rank for rank, reason in enumerate(STOP_REASON_PRECEDENCE)}


def merge_stop_reasons(*reasons: str) -> str:
    """The most restrictive of the given reasons ("" entries ignored)."""
    live = [r for r in reasons if r]
    if not live:
        return ""
    return min(live, key=lambda r: _STOP_RANK.get(r, -1))


@dataclass
class Incompleteness:
    """What a run could *not* decide or explore, itemised.

    The OCaml Gillian leans on Z3's per-query timeouts and ``Unknown``
    verdict to survive hostile inputs; this record is the engine-side
    ledger of every such degradation — each counter is a place where the
    "explores all paths up to a bound" claim (paper §1) was narrowed
    further than the configured bounds alone would narrow it.  All-zero
    means the run's only incompleteness is the explicit budget.
    """

    #: solver queries that hit the per-query step budget (or an injected
    #: timeout fault) and answered UNKNOWN
    solver_timeouts: int = 0
    #: branches dropped because their feasibility was UNKNOWN under
    #: ``unknown_policy="prune"``
    unknown_pruned: int = 0
    #: branches kept alive under ``unknown_policy="assume-sat"`` (the
    #: default) despite a *timed-out* UNKNOWN feasibility verdict (step
    #: budget exhausted or fault-injected): sound for bug-finding, but
    #: the branch may be infeasible.  Baseline incomplete-search
    #: UNKNOWNs — those the solver reports even with no budget — are the
    #: documented ``is_sat`` over-approximation and are not counted here
    unknown_assumed: int = 0
    #: parallel shards that crashed/hung and were re-sharded for retry.
    #: Informational: a retried shard that then succeeds loses nothing,
    #: so retries alone do not make a run :attr:`clean`-false
    shards_retried: int = 0
    #: parallel shards abandoned after exhausting their retries
    shards_lost: int = 0
    #: frontier items lost with abandoned shards (their subtrees were
    #: never explored; see ``ExecutionResult.lost_frontier``)
    frontier_lost: int = 0

    def merge(self, other: "Incompleteness") -> None:
        self.solver_timeouts += other.solver_timeouts
        self.unknown_pruned += other.unknown_pruned
        self.unknown_assumed += other.unknown_assumed
        self.shards_retried += other.shards_retried
        self.shards_lost += other.shards_lost
        self.frontier_lost += other.frontier_lost

    @property
    def clean(self) -> bool:
        """True iff nothing was degraded: no timeouts, no undecided
        branches, no lost shards.  ``shards_retried`` is deliberately
        excluded — a retry that succeeded recovered the exact result."""
        return not (
            self.solver_timeouts
            or self.unknown_pruned
            or self.unknown_assumed
            or self.shards_lost
            or self.frontier_lost
        )

    def to_dict(self) -> Dict[str, int]:
        """A JSON-able counter dict (durable job records store this)."""
        return {
            "solver_timeouts": self.solver_timeouts,
            "unknown_pruned": self.unknown_pruned,
            "unknown_assumed": self.unknown_assumed,
            "shards_retried": self.shards_retried,
            "shards_lost": self.shards_lost,
            "frontier_lost": self.frontier_lost,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, int]) -> "Incompleteness":
        """Rebuild from :meth:`to_dict` output (unknown keys rejected)."""
        return cls(**data)


@dataclass(frozen=True)
class RunReport:
    """The operational verdict of a run: why it stopped and what it
    could not decide — the shape a caller needs to judge whether
    "no bug found" means *verified up to the bound* or merely *nothing
    surfaced before the engine degraded*."""

    stop_reason: str
    incompleteness: Incompleteness

    @property
    def complete(self) -> bool:
        """Every path ran to a final and no decision was degraded."""
        return self.stop_reason == "exhausted" and self.incompleteness.clean

    def to_dict(self) -> Dict[str, object]:
        """A JSON-able record: stop reason plus the itemised ledger."""
        return {
            "stop_reason": self.stop_reason,
            "incompleteness": self.incompleteness.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunReport":
        """Rebuild from :meth:`to_dict` output."""
        return cls(
            stop_reason=data["stop_reason"],
            incompleteness=Incompleteness.from_dict(data["incompleteness"]),
        )

    def summary(self) -> str:
        inc = self.incompleteness
        parts = [f"stop={self.stop_reason or 'not-run'}"]
        for label, count in (
            ("solver-timeouts", inc.solver_timeouts),
            ("unknown-pruned", inc.unknown_pruned),
            ("unknown-assumed", inc.unknown_assumed),
            ("shards-retried", inc.shards_retried),
            ("shards-lost", inc.shards_lost),
            ("frontier-lost", inc.frontier_lost),
        ):
            if count:
                parts.append(f"{label}={count}")
        return " ".join(parts)


@dataclass
class ExecutionStats:
    """Counters for one engine run; the benchmark tables report these."""

    commands_executed: int = 0
    #: commands that executed through the compiled concrete fast lane
    #: (every program variable the command reads holds a literal; see
    #: :mod:`repro.gil.compile`) — a subset of ``commands_executed``.
    #: Zero under the tree-walking interpreter
    fast_lane_steps: int = 0
    paths_finished: int = 0
    paths_vanished: int = 0
    paths_dropped: int = 0
    solver_queries: int = 0
    solver_cache_hits: int = 0
    solver_prefix_hits: int = 0
    solver_model_reuse: int = 0
    solver_time: float = 0.0
    wall_time: float = 0.0
    #: call sites served from an already-recorded summary (memory/disk)
    summary_hits: int = 0
    #: call sites a summary could not answer (cold, incomplete-in-verify,
    #: recursive, corrupt disk entry)
    summary_misses: int = 0
    #: call sites answered by summary replay (hits plus freshly-built)
    summary_replays: int = 0
    #: GIL commands replays avoided re-executing (the summarisation
    #: run's command count, credited once per replay)
    summary_commands_saved: int = 0
    #: GIL commands executed *inside* summarisation sub-runs — not part
    #: of ``commands_executed``, so a cold compositional run's true cost
    #: is ``commands_executed + summary_build_commands``
    summary_build_commands: int = 0
    #: why the scheduler stopped (a StopReason value, e.g. "exhausted",
    #: "max-paths", "max-total-steps", "deadline", "unknown-abort",
    #: "incomplete"); "" before any run
    stop_reason: str = ""
    #: the run's degradation ledger (see :class:`Incompleteness`)
    incompleteness: Incompleteness = field(default_factory=Incompleteness)
    #: wall-clock seconds attributed to named phases — solver pipeline
    #: phases ("solver/split", "solver/propagation", "solver/search")
    #: when the solver profiles them (``EngineConfig.
    #: profile_solver_phases``), and anything else a caller folds in.
    #: Merged key-wise additively, so per-worker stats aggregate like
    #: every other counter.  Empty unless profiling is on.
    phase_times: Dict[str, float] = field(default_factory=dict)

    def merge(self, other: "ExecutionStats") -> None:
        self.commands_executed += other.commands_executed
        self.fast_lane_steps += other.fast_lane_steps
        self.paths_finished += other.paths_finished
        self.paths_vanished += other.paths_vanished
        self.paths_dropped += other.paths_dropped
        self.solver_queries += other.solver_queries
        self.solver_cache_hits += other.solver_cache_hits
        self.solver_prefix_hits += other.solver_prefix_hits
        self.solver_model_reuse += other.solver_model_reuse
        self.solver_time += other.solver_time
        self.wall_time += other.wall_time
        self.summary_hits += other.summary_hits
        self.summary_misses += other.summary_misses
        self.summary_replays += other.summary_replays
        self.summary_commands_saved += other.summary_commands_saved
        self.summary_build_commands += other.summary_build_commands
        # A merged run was exhaustive only if every constituent was: the
        # most restrictive stop reason wins (see STOP_REASON_PRECEDENCE).
        self.stop_reason = merge_stop_reasons(self.stop_reason, other.stop_reason)
        self.incompleteness.merge(other.incompleteness)
        for name, seconds in other.phase_times.items():
            self.phase_times[name] = self.phase_times.get(name, 0.0) + seconds

    def add_solver_delta(self, delta) -> None:
        """Fold a :class:`repro.logic.solver.SolverSnapshot` delta in."""
        self.solver_queries += delta.queries
        self.solver_cache_hits += delta.cache_hits
        self.solver_prefix_hits += delta.prefix_hits
        self.solver_model_reuse += delta.model_reuse_hits
        self.solver_time += delta.solve_time
        self.incompleteness.solver_timeouts += delta.timeouts
        for name, seconds in (
            ("solver/split", delta.split_time),
            ("solver/propagation", delta.propagation_time),
            ("solver/search", delta.search_time),
        ):
            if seconds:
                self.phase_times[name] = (
                    self.phase_times.get(name, 0.0) + seconds
                )

    def add_phase_time(self, name: str, seconds: float) -> None:
        """Attribute ``seconds`` of wall clock to phase ``name``."""
        self.phase_times[name] = self.phase_times.get(name, 0.0) + seconds

    def add_degradation_delta(self, pruned: int, assumed: int) -> None:
        """Fold the state model's per-step unknown-policy counters in."""
        self.incompleteness.unknown_pruned += pruned
        self.incompleteness.unknown_assumed += assumed

    def add_summary_delta(
        self, hits: int, misses: int, replays: int, saved: int, built: int
    ) -> None:
        """Fold a summary engine's counter movement in (see
        :class:`repro.specs.engine.SummaryCounters`)."""
        self.summary_hits += hits
        self.summary_misses += misses
        self.summary_replays += replays
        self.summary_commands_saved += saved
        self.summary_build_commands += built

    def to_dict(self) -> Dict[str, object]:
        """A JSON-able summary (durable job records and reports).

        Carries every counter plus the stop reason and ledger; the
        wall-clock and solver-time floats are included for reporting but
        are *not* part of any determinism contract.
        """
        return {
            "commands_executed": self.commands_executed,
            "fast_lane_steps": self.fast_lane_steps,
            "paths_finished": self.paths_finished,
            "paths_vanished": self.paths_vanished,
            "paths_dropped": self.paths_dropped,
            "solver_queries": self.solver_queries,
            "solver_cache_hits": self.solver_cache_hits,
            "solver_prefix_hits": self.solver_prefix_hits,
            "solver_model_reuse": self.solver_model_reuse,
            "solver_time": self.solver_time,
            "wall_time": self.wall_time,
            "summary_hits": self.summary_hits,
            "summary_misses": self.summary_misses,
            "summary_replays": self.summary_replays,
            "summary_commands_saved": self.summary_commands_saved,
            "summary_build_commands": self.summary_build_commands,
            "stop_reason": self.stop_reason,
            "incompleteness": self.incompleteness.to_dict(),
        }


def final_sort_key(fin: Final) -> tuple:
    """A canonical order on finals for the deterministic shard merge.

    Keyed by outcome kind and the repr of the outcome value — enough to
    make the merged *list* order independent of worker scheduling: the
    sort is stable and the per-shard input order is itself deterministic
    (seeding is sequential, shards are fixed by round-robin).
    """
    return (fin.kind.name, repr(fin.value))


def merge_results(parts: List["ExecutionResult"]) -> "ExecutionResult":
    """Deterministically merge sub-runs into one result.

    Finals are combined as a sorted multiset (stable sort over
    :func:`final_sort_key`, so equal-keyed finals keep their shard
    order); stats are folded with :meth:`ExecutionStats.merge`, whose
    stop-reason precedence makes the merged reason the most restrictive
    one any shard hit.  This is the merge the parallel explorer's
    outcome-determinism guarantee rests on: any partition of the same
    path set yields the same multiset, hence the same sorted list.
    """
    finals: List[Final] = []
    stats = ExecutionStats()
    lost: List[tuple] = []
    for part in parts:
        finals.extend(part.finals)
        stats.merge(part.stats)
        lost.extend(part.lost_frontier)
    finals.sort(key=final_sort_key)
    return ExecutionResult(finals, stats, lost_frontier=tuple(lost))


@dataclass
class ExecutionResult:
    """All finished paths of a (concrete or symbolic) execution."""

    finals: List[Final]
    stats: ExecutionStats
    #: ``(Config, depth)`` frontier items whose subtrees were abandoned
    #: with a lost shard — re-feeding them to ``Explorer.explore`` (with
    #: their depths) resumes exactly the unexplored remainder of an
    #: ``"incomplete"`` run
    lost_frontier: Tuple[tuple, ...] = ()

    @property
    def report(self) -> RunReport:
        """The run's :class:`RunReport` (stop reason + incompleteness)."""
        return RunReport(self.stats.stop_reason, self.stats.incompleteness)

    @property
    def normal(self) -> List[Final]:
        return [f for f in self.finals if f.kind is OutcomeKind.NORMAL]

    @property
    def errors(self) -> List[Final]:
        return [f for f in self.finals if f.kind is OutcomeKind.ERROR]

    @property
    def sole_outcome(self) -> Final:
        """The unique final of a deterministic (concrete) run."""
        real = [f for f in self.finals if f.kind is not OutcomeKind.VANISH]
        if len(real) != 1:
            raise ValueError(f"expected exactly one outcome, got {len(real)}")
        return real[0]
