"""Execution results and statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.gil.semantics import Final, OutcomeKind

#: Stop-reason precedence for merging runs: lower rank wins.  A merged
#: run reports the *most restrictive* reason any constituent hit —
#: "deadline" (the run was cut mid-flight by wall clock) over
#: "max-total-steps" (the global command budget ran dry) over
#: "max-paths" (the path cap evicted the worklist) over "exhausted"
#: (every constituent drained its worklist).  The parallel explorer's
#: shard merge relies on this order being total and documented; an
#: unknown reason ranks most restrictive of all so it is never silently
#: swallowed.
STOP_REASON_PRECEDENCE = ("deadline", "max-total-steps", "max-paths", "exhausted")

_STOP_RANK = {reason: rank for rank, reason in enumerate(STOP_REASON_PRECEDENCE)}


def merge_stop_reasons(*reasons: str) -> str:
    """The most restrictive of the given reasons ("" entries ignored)."""
    live = [r for r in reasons if r]
    if not live:
        return ""
    return min(live, key=lambda r: _STOP_RANK.get(r, -1))


@dataclass
class ExecutionStats:
    """Counters for one engine run; the benchmark tables report these."""

    commands_executed: int = 0
    paths_finished: int = 0
    paths_vanished: int = 0
    paths_dropped: int = 0
    solver_queries: int = 0
    solver_cache_hits: int = 0
    solver_prefix_hits: int = 0
    solver_model_reuse: int = 0
    solver_time: float = 0.0
    wall_time: float = 0.0
    #: why the scheduler stopped (a StopReason value, e.g. "exhausted",
    #: "max-paths", "max-total-steps", "deadline"); "" before any run
    stop_reason: str = ""

    def merge(self, other: "ExecutionStats") -> None:
        self.commands_executed += other.commands_executed
        self.paths_finished += other.paths_finished
        self.paths_vanished += other.paths_vanished
        self.paths_dropped += other.paths_dropped
        self.solver_queries += other.solver_queries
        self.solver_cache_hits += other.solver_cache_hits
        self.solver_prefix_hits += other.solver_prefix_hits
        self.solver_model_reuse += other.solver_model_reuse
        self.solver_time += other.solver_time
        self.wall_time += other.wall_time
        # A merged run was exhaustive only if every constituent was: the
        # most restrictive stop reason wins (see STOP_REASON_PRECEDENCE).
        self.stop_reason = merge_stop_reasons(self.stop_reason, other.stop_reason)

    def add_solver_delta(self, delta) -> None:
        """Fold a :class:`repro.logic.solver.SolverSnapshot` delta in."""
        self.solver_queries += delta.queries
        self.solver_cache_hits += delta.cache_hits
        self.solver_prefix_hits += delta.prefix_hits
        self.solver_model_reuse += delta.model_reuse_hits
        self.solver_time += delta.solve_time


def final_sort_key(fin: Final) -> tuple:
    """A canonical order on finals for the deterministic shard merge.

    Keyed by outcome kind and the repr of the outcome value — enough to
    make the merged *list* order independent of worker scheduling: the
    sort is stable and the per-shard input order is itself deterministic
    (seeding is sequential, shards are fixed by round-robin).
    """
    return (fin.kind.name, repr(fin.value))


def merge_results(parts: List["ExecutionResult"]) -> "ExecutionResult":
    """Deterministically merge sub-runs into one result.

    Finals are combined as a sorted multiset (stable sort over
    :func:`final_sort_key`, so equal-keyed finals keep their shard
    order); stats are folded with :meth:`ExecutionStats.merge`, whose
    stop-reason precedence makes the merged reason the most restrictive
    one any shard hit.  This is the merge the parallel explorer's
    outcome-determinism guarantee rests on: any partition of the same
    path set yields the same multiset, hence the same sorted list.
    """
    finals: List[Final] = []
    stats = ExecutionStats()
    for part in parts:
        finals.extend(part.finals)
        stats.merge(part.stats)
    finals.sort(key=final_sort_key)
    return ExecutionResult(finals, stats)


@dataclass
class ExecutionResult:
    """All finished paths of a (concrete or symbolic) execution."""

    finals: List[Final]
    stats: ExecutionStats

    @property
    def normal(self) -> List[Final]:
        return [f for f in self.finals if f.kind is OutcomeKind.NORMAL]

    @property
    def errors(self) -> List[Final]:
        return [f for f in self.finals if f.kind is OutcomeKind.ERROR]

    @property
    def sole_outcome(self) -> Final:
        """The unique final of a deterministic (concrete) run."""
        real = [f for f in self.finals if f.kind is not OutcomeKind.VANISH]
        if len(real) != 1:
            raise ValueError(f"expected exactly one outcome, got {len(real)}")
        return real[0]
