"""Execution results and statistics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.gil.semantics import Final, OutcomeKind


@dataclass
class ExecutionStats:
    """Counters for one engine run; the benchmark tables report these."""

    commands_executed: int = 0
    paths_finished: int = 0
    paths_vanished: int = 0
    paths_dropped: int = 0
    solver_queries: int = 0
    solver_cache_hits: int = 0
    solver_prefix_hits: int = 0
    solver_model_reuse: int = 0
    solver_time: float = 0.0
    wall_time: float = 0.0
    #: why the scheduler stopped (a StopReason value, e.g. "exhausted",
    #: "max-paths", "max-total-steps", "deadline"); "" before any run
    stop_reason: str = ""

    def merge(self, other: "ExecutionStats") -> None:
        self.commands_executed += other.commands_executed
        self.paths_finished += other.paths_finished
        self.paths_vanished += other.paths_vanished
        self.paths_dropped += other.paths_dropped
        self.solver_queries += other.solver_queries
        self.solver_cache_hits += other.solver_cache_hits
        self.solver_prefix_hits += other.solver_prefix_hits
        self.solver_model_reuse += other.solver_model_reuse
        self.solver_time += other.solver_time
        self.wall_time += other.wall_time
        # A merged run was exhaustive only if every constituent was.
        reasons = {r for r in (self.stop_reason, other.stop_reason) if r}
        non_exhaustive = reasons - {"exhausted"}
        if non_exhaustive:
            self.stop_reason = sorted(non_exhaustive)[0]
        elif reasons:
            self.stop_reason = "exhausted"

    def add_solver_delta(self, delta) -> None:
        """Fold a :class:`repro.logic.solver.SolverSnapshot` delta in."""
        self.solver_queries += delta.queries
        self.solver_cache_hits += delta.cache_hits
        self.solver_prefix_hits += delta.prefix_hits
        self.solver_model_reuse += delta.model_reuse_hits
        self.solver_time += delta.solve_time


@dataclass
class ExecutionResult:
    """All finished paths of a (concrete or symbolic) execution."""

    finals: List[Final]
    stats: ExecutionStats

    @property
    def normal(self) -> List[Final]:
        return [f for f in self.finals if f.kind is OutcomeKind.NORMAL]

    @property
    def errors(self) -> List[Final]:
        return [f for f in self.finals if f.kind is OutcomeKind.ERROR]

    @property
    def sole_outcome(self) -> Final:
        """The unique final of a deterministic (concrete) run."""
        real = [f for f in self.finals if f.kind is not OutcomeKind.VANISH]
        if len(real) != 1:
            raise ValueError(f"expected exactly one outcome, got {len(real)}")
        return real[0]
