"""The execution event bus.

Instrumentation for the scheduler loop and the solver without baking any
consumer into the hot path: the scheduler and solver hold an optional
:class:`EventBus` and guard every emission with its truthiness, so an
unattached or subscriber-less bus costs one falsy check per step — the
near-zero-overhead-when-unsubscribed contract the benchmarks assert.

Events are small frozen dataclasses:

* :class:`StepEvent` — one GIL command stepped by the scheduler;
* :class:`BranchEvent` — a step that produced more than one successor;
* :class:`PathEndEvent` — a path reached a final (normal/error/vanish);
* :class:`SolverQueryEvent` — the solver answered one satisfiability
  query (emitted from :mod:`repro.logic.solver`);
* :class:`SolverUnknownEvent` — a query degraded to ``UNKNOWN`` (budget
  timeout or incomplete search);
* :class:`ShardRetryEvent` / :class:`ShardLostEvent` — a parallel shard
  crashed and was retried, or exhausted its retries and was abandoned;
* :class:`SummaryHit` / :class:`SummaryMiss` / :class:`SummaryReplay` —
  a ``Call`` was served from the function-summary cache, could not be,
  or was answered by replaying a summary's recorded paths (emitted from
  :mod:`repro.specs.engine`);
* :class:`SpanEnd` — a named engine phase (seed, explore, shards, merge,
  compile) finished, with its wall-clock duration and step count;
* :class:`MetricSample` — one observability metric reading, flushed by a
  :class:`repro.obs.metrics.MetricsRegistry`.

Consumers subscribe a callable, optionally filtered to specific event
types; :class:`repro.testing.trace.JsonlEventSink` is the stock JSONL
consumer and :class:`repro.obs.collect.MetricsCollector` is the stock
metrics consumer.  The schema of every event is documented in
``docs/events.md`` (kept authoritative by a test over
:func:`event_types`).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Callable, Iterable, List, Optional, Tuple, Type


@dataclass(frozen=True)
class StepEvent:
    """One GIL command executed by the scheduler."""

    proc: str
    idx: int
    depth: int
    successors: int
    finals: int


@dataclass(frozen=True)
class BranchEvent:
    """A step that split the path into ``arms`` successors."""

    proc: str
    idx: int
    depth: int
    arms: int


@dataclass(frozen=True)
class PathEndEvent:
    """A path reached a final outcome."""

    kind: str      # OutcomeKind name: NORMAL / ERROR / VANISH
    depth: int
    value: object  # outcome value (symbolic expression or concrete value)


@dataclass(frozen=True)
class SolverQueryEvent:
    """The solver answered one query (cache hits included)."""

    result: str     # SatResult name: SAT / UNSAT / UNKNOWN
    conjuncts: int  # size of the queried conjunction
    cached: bool    # answered without running a solve pipeline
    time: float     # seconds spent answering (0.0 for cache hits)


@dataclass(frozen=True)
class SolverUnknownEvent:
    """A solver query degraded to ``UNKNOWN`` (incomplete search, a
    step-budget timeout, or an internal degradation such as a type
    conflict while completing a model).

    Recorded in-band so JSONL traces show *where* a run's soundness
    envelope narrowed, not just that it did.
    """

    reason: str     # "timeout" | "incomplete-search" | "model-completion"
    conjuncts: int  # size of the queried conjunction
    timed_out: bool # True iff the step budget (or an injected fault) fired


@dataclass(frozen=True)
class ShardRetryEvent:
    """A parallel shard crashed or hung and its frontier is being
    re-sharded for another attempt."""

    worker_id: int  # the failed worker (ids are per retry round)
    attempt: int    # the round that failed (0 = first attempt)
    items: int      # frontier items being retried
    detail: str     # truncated failure description (traceback head)


@dataclass(frozen=True)
class ShardLostEvent:
    """A parallel shard exhausted its retries; its frontier is abandoned
    and the run downgrades to stop reason ``"incomplete"``."""

    worker_id: int  # the worker that failed last
    attempt: int    # the final round
    items: int      # frontier items lost


@dataclass(frozen=True)
class SummaryHit:
    """A ``Call`` found a usable summary in the cache."""

    proc: str    # the summarised callee
    tier: str    # "pure" (abstract summary) | "exact" (pre-state memo)
    source: str  # "memory" | "disk" (which cache level answered)
    paths: int   # recorded paths in the summary


@dataclass(frozen=True)
class SummaryMiss:
    """A ``Call`` could not be served from the summary cache.

    ``"cold"`` misses are followed by a summarisation run (and then a
    replay); the other reasons fall back to inline descent.
    """

    proc: str    # the callee
    reason: str  # "cold" | "incomplete" | "recursive" | "corrupt"


@dataclass(frozen=True)
class SummaryReplay:
    """A ``Call`` was answered by replaying a summary's paths."""

    proc: str            # the summarised callee
    paths: int           # recorded paths considered
    feasible: int        # paths admitted under the caller's π
    commands_saved: int  # GIL commands the replay avoided re-executing


@dataclass(frozen=True)
class SpanEnd:
    """A named engine phase finished.

    Emitted once per phase per run (not per step), so spans are cheap
    enough to leave on whenever a bus is attached: ``seed`` and
    ``explore`` come from the scheduler, ``shards`` and ``merge`` from
    the parallel explorer, ``compile`` from the testing harness, and
    ``solver/*`` from :func:`repro.obs.profile.solver_phase_spans`.
    Worker processes emit their own ``explore`` spans, which arrive
    wrapped in :class:`WorkerEvent`.
    """

    name: str    # phase name ("seed", "explore", "shards", "merge", ...)
    wall: float  # wall-clock seconds spent in the phase
    steps: int   # work units attributed to the phase (0 when untracked)


@dataclass(frozen=True)
class MetricSample:
    """One metric reading flushed from a metrics registry.

    ``labels`` is a (sorted) tuple of ``(key, value)`` string pairs so
    samples stay hashable and JSONL-serialisable; histogram registries
    flush one sample per bucket with an ``le`` label plus ``_count`` /
    ``_sum`` samples.
    """

    name: str                    # metric name ("engine.paths", ...)
    kind: str                    # "counter" | "gauge" | "histogram"
    value: float                 # the reading
    labels: Tuple[Tuple[str, str], ...] = ()


@dataclass(frozen=True)
class WorkerEvent:
    """An event forwarded from a parallel-explorer worker process.

    Workers run the ordinary scheduler loop against a local bus whose
    single subscriber marshals every event over a queue; the parent
    drains the queue and re-emits each one wrapped in this envelope, so
    consumers see the usual Step/Branch/PathEnd/SolverQuery stream tagged
    with the shard it came from.  Events from different workers interleave
    in queue-arrival order; within one worker the order is the worker's
    own emission order.
    """

    worker_id: int
    inner: object   # the original event (StepEvent, BranchEvent, ...)


Event = object
Subscriber = Callable[[Event], None]


class EventBus:
    """A tiny synchronous pub/sub hub.

    ``bool(bus)`` is False while nobody subscribes; emitters use that to
    skip event construction entirely, which keeps the unsubscribed cost
    to a single branch.
    """

    __slots__ = ("_subscribers",)

    def __init__(self) -> None:
        self._subscribers: List[Tuple[Subscriber, Optional[tuple]]] = []

    def __bool__(self) -> bool:
        return bool(self._subscribers)

    def subscribe(
        self,
        callback: Subscriber,
        kinds: Optional[Iterable[Type[Event]]] = None,
    ) -> Subscriber:
        """Register ``callback``; ``kinds`` filters to those event types.

        Returns the callback so it can be passed to :meth:`unsubscribe`.
        """
        self._subscribers.append(
            (callback, tuple(kinds) if kinds is not None else None)
        )
        return callback

    def unsubscribe(self, callback: Subscriber) -> None:
        self._subscribers = [
            (cb, kinds) for cb, kinds in self._subscribers if cb is not callback
        ]

    def emit(self, event: Event) -> None:
        for callback, kinds in self._subscribers:
            if kinds is None or isinstance(event, kinds):
                callback(event)


def event_types() -> List[Type[Event]]:
    """Every event dataclass this module defines, in definition order.

    The single source of truth for "what can appear on the bus": the
    docs test walks it to enforce that ``docs/events.md`` documents
    every type, and the report CLI uses it to distinguish engine events
    from foreign JSONL lines.
    """
    import dataclasses as _dc
    import sys as _sys

    module = _sys.modules[__name__]
    return [
        obj
        for obj in vars(module).values()
        if isinstance(obj, type)
        and _dc.is_dataclass(obj)
        and obj.__module__ == __name__
    ]


def event_payload(event: Event) -> dict:
    """``{"event": <type name>, ...fields}`` — the serialisation shape.

    A :class:`WorkerEvent` envelope flattens to its inner event's payload
    plus a ``worker_id`` field, so JSONL streams of parallel runs stay
    grep-compatible with sequential ones.
    """
    if isinstance(event, WorkerEvent):
        payload = event_payload(event.inner)
        payload["worker_id"] = event.worker_id
        return payload
    payload = {"event": type(event).__name__}
    for f in fields(event):
        payload[f.name] = getattr(event, f.name)
    return payload
