"""Parallel multi-worker path exploration.

The paper's engine "explores all paths up to a bound" (§1), and the
relaxed trace-composition result (§3.1) grants permission to drop or
*reorder* paths at will — branching is path-local and allocation records
are threaded through states, so any schedule over the same path set
produces the same multiset of final outcomes.  That soundness argument is
exactly what licenses sharding the frontier across OS processes:

1. **Seed** — a sequential breadth-first phase
   (:meth:`~repro.engine.explorer.Explorer.explore_frontier`) steps the
   program until the worklist holds a frontier of pending configurations
   (a *cut* across the shallow execution tree: every path of the full run
   extends exactly one frontier item or already ended during seeding).
2. **Shard** — frontier items are dealt round-robin across ``workers``
   processes.  Each worker rebuilds a fresh state model from a picklable
   *factory* (solvers and their caches are per-process; only programs,
   configurations, and results cross the boundary), then drives the
   ordinary sequential :class:`~repro.engine.explorer.Explorer` over its
   shard with a per-shard :meth:`~repro.engine.budget.Budget.shard_slice`
   and the frontier depths preserved (the loop-unrolling bound keeps
   counting from the cut).
3. **Merge** — finals from the seed phase and every shard are combined
   with :func:`~repro.engine.results.merge_results`: a sorted-multiset
   outcome merge (stable, canonical key), ``ExecutionStats.merge``
   aggregation, and the most restrictive ``stop_reason`` winning by the
   documented ``STOP_REASON_PRECEDENCE``.

The pickle layer underneath is what makes step 2 safe: hash-consed
``Expr`` nodes re-intern in the receiving process (``__reduce__`` routes
through the constructors), ``PathCondition`` prefix chains serialize as
delta lists and re-link on load, and state stores re-wrap their mapping
proxies.  Allocation records stay disjoint across shards by construction
— they are threaded through per-path states (Def. 2.2/3.3 restriction) —
so fresh names are identical to the sequential run's, which is why a
parallel run with *any* worker count yields the same multiset of finals
as ``workers=1``.  (:meth:`SymbolicAllocator.split` exists for the other
topology — independent runs fanned out of one shared root state — where
namespaces must be split per shard.)

Worker events are marshalled over a queue and re-emitted on the parent
bus wrapped in :class:`~repro.engine.events.WorkerEvent` (a ``worker_id``
plus the inner event), but only when the parent bus has subscribers —
the zero-overhead-when-unsubscribed contract holds across processes.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import pickle
import queue as queue_mod
import threading
import time
import traceback
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

from repro.engine.backoff import BackoffPolicy
from repro.engine.budget import Budget
from repro.engine.config import EngineConfig
from repro.engine.events import (
    EventBus,
    ShardLostEvent,
    ShardRetryEvent,
    SpanEnd,
    WorkerEvent,
)
from repro.engine.explorer import Explorer
from repro.engine.results import ExecutionResult, merge_results
from repro.engine.strategy import StrategySpec, make_strategy
from repro.gil.semantics import Config, make_call_config
from repro.gil.syntax import Prog

#: Frontier items targeted per worker during seeding.  Oversubscription
#: smooths load imbalance: subtree sizes vary wildly, so handing each
#: worker several frontier items keeps a worker with small subtrees from
#: idling while another grinds a big one.
SEED_FACTOR = 4

#: Consecutive empty result polls before a dead-without-reporting worker
#: is declared failed.  A worker that crashed *after* putting its result
#: may still have the payload in flight through the queue's feeder pipe;
#: a few extra polls let it land before the shard is written off.
_DEAD_WORKER_GRACE_POLLS = 3


def resolve_workers(spec: Union[int, str, None]) -> int:
    """Normalise a ``workers`` spec: int count, or ``"auto"`` → CPUs."""
    if spec is None:
        return 1
    if isinstance(spec, str):
        if spec.strip().lower() == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            spec = int(spec)
        except ValueError:
            raise ValueError(
                f"workers must be a positive int or 'auto', got {spec!r}"
            ) from None
    if isinstance(spec, bool) or not isinstance(spec, int):
        raise ValueError(f"workers must be a positive int or 'auto', got {spec!r}")
    if spec < 1:
        raise ValueError(f"workers must be >= 1, got {spec}")
    return spec


# -- state-model factories ----------------------------------------------------
#
# Workers never unpickle a live state model: solvers carry per-process
# caches (and an event-bus slot) that must not cross the boundary.  A
# factory is a small picklable recipe that builds a *fresh* model inside
# the worker, mirroring what the harness does for every test.


@dataclass(frozen=True)
class SymbolicModelFactory:
    """Builds a fresh :class:`SymbolicStateModel` with its own solver."""

    memory_model: object
    config: EngineConfig

    def __call__(self):
        from repro.logic.simplify import Simplifier
        from repro.logic.solver import Solver
        from repro.state.symbolic import SymbolicStateModel

        simplifier = Simplifier(
            enabled=True, memoise=self.config.simplifier_memoisation
        )
        solver = Solver(
            simplifier=simplifier,
            cache_enabled=self.config.solver_cache,
            incremental=self.config.solver_incremental,
            step_budget=self.config.solver_step_budget,
            profile_phases=self.config.profile_solver_phases,
        )
        return SymbolicStateModel(
            self.memory_model,
            solver=solver,
            unknown_policy=self.config.unknown_policy,
        )


@dataclass(frozen=True)
class ConcreteModelFactory:
    """Builds a fresh :class:`ConcreteStateModel` (allocator included)."""

    memory_model: object
    allocator: object = None

    def __call__(self):
        from repro.state.concrete import ConcreteStateModel

        return ConcreteStateModel(self.memory_model, self.allocator)


def model_factory_for(state_model, config: EngineConfig):
    """Derive the worker factory matching a parent state model."""
    from repro.state.concrete import ConcreteStateModel
    from repro.state.symbolic import SymbolicStateModel
    from repro.testing.faults import FaultyMemoryModel

    if isinstance(state_model, SymbolicStateModel):
        memory = state_model.memory_model
        if isinstance(memory, FaultyMemoryModel):
            # The parent's injector wrapper must not leak into workers:
            # each worker resolves its own injector from the shipped plan.
            memory = memory.inner
        return SymbolicModelFactory(memory, config)
    if isinstance(state_model, ConcreteStateModel):
        return ConcreteModelFactory(state_model.memory_model, state_model.allocator)
    raise TypeError(
        f"cannot derive a worker factory for {type(state_model).__name__}; "
        f"pass factory= explicitly"
    )


# -- the worker process -------------------------------------------------------


@dataclass(frozen=True)
class _WorkerTask:
    """Everything one worker needs, shipped as a single pickled blob."""

    prog: Prog
    config: EngineConfig
    strategy: StrategySpec
    budget: Budget
    factory: object
    items: Tuple[Tuple[Config, int], ...]  # (config, depth) shard


def _worker_main(worker_id: int, blob: bytes, result_q, event_q) -> None:
    """Worker entry point: run a sequential explorer over one shard.

    The task arrives pickled (exercising the same wire protocol under
    every start method, fork included — expressions re-intern into this
    process's tables on load); the result leaves the same way.  Any
    failure is reported as an ``("err", ...)`` record rather than a
    silent exit, so the parent can surface the worker traceback.
    """
    try:
        task: _WorkerTask = pickle.loads(blob)
        # Stamp this process's shard id into the (worker-local) config so
        # a shipped FaultPlan resolves to this worker's injector.
        task.config.fault_worker = worker_id
        bus = None
        if event_q is not None:
            bus = EventBus()
            bus.subscribe(lambda ev: event_q.put((worker_id, ev)))
        sm = task.factory()
        explorer = Explorer(
            task.prog,
            sm,
            task.config,
            strategy=task.strategy,
            budget=task.budget,
            events=bus,
        )
        configs = [cfg for cfg, _ in task.items]
        depths = [depth for _, depth in task.items]
        result = explorer.explore(configs, depths=depths)
        payload = pickle.dumps((result.finals, result.stats))
        if event_q is not None:
            event_q.close()
            event_q.join_thread()  # flush forwarded events before reporting
        result_q.put(("ok", worker_id, payload))
    except BaseException:
        result_q.put(("err", worker_id, traceback.format_exc()))


class WorkerError(RuntimeError):
    """A worker process failed; carries the worker's traceback text."""


# -- the parallel explorer ----------------------------------------------------


class ParallelExplorer:
    """Shards bounded path exploration across a process pool.

    Mirrors :class:`~repro.engine.explorer.Explorer`'s surface —
    ``run(proc, args)`` / ``explore(configs)`` returning an
    :class:`ExecutionResult` — plus:

    * ``workers``: process count, ``"auto"`` (→ ``os.cpu_count()``), or
      None to defer to ``config.workers``;
    * ``factory``: a picklable zero-arg recipe building a worker's state
      model (derived automatically for the stock symbolic/concrete
      models);
    * ``seed_factor``: frontier items targeted per worker before
      sharding.

    ``workers=1`` (or a frontier that never materialises — the program
    finishes during seeding) degrades to the plain sequential run, so
    callers can thread a single code path for any worker count.
    """

    def __init__(
        self,
        prog: Prog,
        state_model,
        config: Optional[EngineConfig] = None,
        strategy: StrategySpec = None,
        budget: Optional[Budget] = None,
        events: Optional[EventBus] = None,
        workers: Union[int, str, None] = None,
        factory=None,
        seed_factor: int = SEED_FACTOR,
        mp_context=None,
    ):
        self.prog = prog
        self.sm = state_model
        self.config = config if config is not None else EngineConfig()
        self.strategy = strategy
        self.budget = budget if budget is not None else Budget.from_config(self.config)
        self.events = events
        self.workers = resolve_workers(
            workers if workers is not None else self.config.workers
        )
        self.factory = factory
        self.seed_factor = max(1, seed_factor)
        self._mp = mp_context if mp_context is not None else multiprocessing.get_context()
        #: retry-delay schedule for crashed shards; tests inject a fake
        #: ``_sleep`` to assert the exact delays without real waiting
        self.backoff = BackoffPolicy(base=self.config.shard_retry_backoff)
        self._sleep = time.sleep
        # Validate the strategy spec up front: a malformed spec should
        # fail in the caller's process, not inside N workers.
        make_strategy(self.strategy if self.strategy is not None else self.config.strategy,
                      seed=self.config.random_seed)

    # -- Explorer-compatible surface ----------------------------------------

    def run(self, proc: str, args: Sequence = (), state: object = None) -> ExecutionResult:
        """Execute ``proc(args)`` from ``state`` (default: initial state)."""
        if state is None:
            state = self.sm.initial_state()
        from repro.logic.expr import Expr

        evaluated = [
            self.sm.eval_expr(state, a) if isinstance(a, Expr) else a for a in args
        ]
        cfg = make_call_config(self.sm, state, self.prog, proc, evaluated)
        return self.explore([cfg])

    def explore(self, configs: List[Config]) -> ExecutionResult:
        if self.workers <= 1:
            return self._sequential().explore(configs)

        start = time.perf_counter()
        seq = self._sequential()
        target = self.workers * self.seed_factor
        items, seed_result = seq.explore_frontier(configs, target)
        if not items:
            # Finished (or hit a global bound) during seeding: the seed
            # result already carries the authoritative stop reason.
            return seed_result

        shards = [items[i :: self.workers] for i in range(self.workers)]
        shards = [shard for shard in shards if shard]
        slice_budget = self.budget.shard_slice(
            len(shards),
            steps_spent=seed_result.stats.commands_executed,
            paths_found=seed_result.stats.paths_finished,
            elapsed=seed_result.stats.wall_time,
        )
        factory = self.factory
        if factory is None:
            factory = model_factory_for(self.sm, self.config)

        bus = self.events
        shards_start = time.perf_counter()
        shard_parts = self._run_shards(shards, slice_budget, factory)
        if bus:
            bus.emit(
                SpanEnd(
                    "shards",
                    time.perf_counter() - shards_start,
                    sum(p.stats.commands_executed for p in shard_parts),
                )
            )
        merge_start = time.perf_counter()
        merged = merge_results([seed_result] + shard_parts)
        if bus:
            bus.emit(
                SpanEnd("merge", time.perf_counter() - merge_start, len(merged.finals))
            )
        # Per-part wall times are CPU-aggregate across processes; the
        # run's wall clock is what the caller observes.
        merged.stats.wall_time = time.perf_counter() - start
        return merged

    def explore_items(
        self, items: Sequence[tuple], budget: Optional[Budget] = None
    ) -> ExecutionResult:
        """Drive explicit ``(Config, depth)`` frontier items to completion.

        The resumable entry point used by the analysis service's
        checkpointed runner (:mod:`repro.service.runner`): seeding is
        skipped — the caller already holds a frontier cut (from
        :meth:`Explorer.explore_frontier` or a restored checkpoint) —
        and the items are dealt round-robin across workers, run with the
        usual crash recovery, and merged deterministically.  Because the
        final multiset is partition-independent, processing a frontier
        in several ``explore_items`` rounds (checkpointing between them)
        yields exactly the finals of one uninterrupted run.

        ``budget`` overrides the per-call budget (the runner passes the
        job's remaining budget); it is sliced across shards as usual.
        With ``workers<=1`` the items run on the sequential explorer.
        """
        items = list(items)
        budget = budget if budget is not None else self.budget
        configs = [cfg for cfg, _ in items]
        depths = [depth for _, depth in items]
        if self.workers <= 1 or len(items) <= 1:
            seq = self._sequential()
            seq.budget = budget
            return seq.explore(configs, depths=depths)
        start = time.perf_counter()
        shards = [items[i :: self.workers] for i in range(self.workers)]
        shards = [shard for shard in shards if shard]
        slice_budget = budget.shard_slice(len(shards))
        factory = self.factory
        if factory is None:
            factory = model_factory_for(self.sm, self.config)
        parts = self._run_shards(shards, slice_budget, factory)
        merged = merge_results(parts)
        merged.stats.wall_time = time.perf_counter() - start
        if self.events:
            self.events.emit(
                SpanEnd("shards", merged.stats.wall_time,
                        merged.stats.commands_executed)
            )
        return merged

    # -- internals -----------------------------------------------------------

    def _sequential(self) -> Explorer:
        return Explorer(
            self.prog,
            self.sm,
            self.config,
            strategy=self.strategy,
            budget=self.budget,
            events=self.events,
        )

    def _run_shards(
        self, shards: List[list], slice_budget: Budget, factory
    ) -> List[ExecutionResult]:
        """Run shards to completion with crash recovery.

        Rounds: every shard of the round runs in its own process; results
        from healthy workers are *salvaged* even when a sibling crashes.
        Failed shards' frontier items are re-dealt across up to
        ``workers`` fresh processes and retried (with
        ``shard_retry_backoff`` exponential backoff) until they succeed
        or ``max_shard_retries`` extra rounds are spent.  Exhausted
        retries abandon the surviving items: the run *degrades* — stop
        reason ``"incomplete"``, the abandoned ``(Config, depth)`` items
        recorded on ``ExecutionResult.lost_frontier``, and the
        :class:`~repro.engine.results.Incompleteness` ledger counting
        every retry and loss — instead of raising.  Set
        ``EngineConfig.shard_failure="raise"`` to restore the fail-fast
        :class:`WorkerError`.
        """
        from repro.engine.results import ExecutionStats

        cfg = self.config
        bus = self.events
        event_q = None
        drainer = None
        if bus:  # truthy only with subscribers: keep idle runs queue-free
            event_q = self._mp.Queue()
            drainer = threading.Thread(
                target=_drain_events, args=(event_q, bus), daemon=True
            )
            drainer.start()

        acct = ExecutionStats()  # synthetic part: retry/loss accounting
        lost_items: List[tuple] = []
        parts: List[ExecutionResult] = []
        pending: List[tuple] = [tuple(shard) for shard in shards if shard]
        attempt = 0
        try:
            while pending:
                results, failures = self._run_round(
                    pending, slice_budget, factory, attempt, event_q
                )
                parts.extend(results)
                if not failures:
                    break
                if cfg.shard_failure == "raise":
                    worker_id, detail, _ = failures[0]
                    raise WorkerError(
                        f"parallel worker {worker_id} failed:\n{detail}"
                    )
                failed_items = [
                    item for _, _, items in failures for item in items
                ]
                if attempt >= cfg.max_shard_retries:
                    # Retries exhausted: salvage what we have, abandon the
                    # rest, and downgrade the run instead of raising.
                    for worker_id, _, items in failures:
                        acct.incompleteness.shards_lost += 1
                        acct.incompleteness.frontier_lost += len(items)
                        if bus:
                            bus.emit(
                                ShardLostEvent(worker_id, attempt, len(items))
                            )
                    acct.paths_dropped += len(failed_items)
                    acct.stop_reason = "incomplete"
                    lost_items.extend(failed_items)
                    break
                for worker_id, detail, items in failures:
                    acct.incompleteness.shards_retried += 1
                    if bus:
                        bus.emit(
                            ShardRetryEvent(
                                worker_id, attempt, len(items),
                                detail.strip().splitlines()[-1][:200]
                                if detail.strip() else "",
                            )
                        )
                delay = self.backoff.delay(attempt)
                if delay > 0:
                    self._sleep(delay)
                width = min(self.workers, len(failed_items))
                pending = [
                    tuple(failed_items[i::width]) for i in range(width)
                ]
                attempt += 1
        finally:
            if event_q is not None:
                event_q.put(None)  # drainer sentinel
                drainer.join(timeout=cfg.worker_join_timeout)

        if drainer is not None and drainer.is_alive():
            # Raised outside the finally so it cannot mask a WorkerError.
            raise RuntimeError(
                f"parallel event-drainer thread failed to shut down within "
                f"worker_join_timeout={cfg.worker_join_timeout}s; a bus "
                f"subscriber is likely blocked"
            )

        if not acct.incompleteness.clean or acct.incompleteness.shards_retried:
            parts.append(
                ExecutionResult([], acct, lost_frontier=tuple(lost_items))
            )
        return parts

    def _run_round(
        self,
        shards: List[tuple],
        slice_budget: Budget,
        factory,
        attempt: int,
        event_q,
    ) -> "Tuple[List[ExecutionResult], List[Tuple[int, str, tuple]]]":
        """Run one round of shard processes and collect every outcome.

        Returns ``(results, failures)``: salvaged results in worker-id
        order, and ``(worker_id, detail, items)`` for each shard that
        crashed (reported an error record), died without reporting
        (e.g. ``os._exit`` — detected by liveness polling with a few
        grace polls so an in-flight queue flush can land), or hung past
        ``EngineConfig.worker_timeout`` (terminated and counted failed).
        """
        from repro.engine.results import ExecutionResult as _Result

        cfg = self.config
        # Fresh queue per round: a dead worker's half-flushed pipe must
        # not pollute the next round's results.
        result_q = self._mp.Queue()
        round_config = dataclasses.replace(cfg, fault_attempt=attempt)
        procs: List = []
        for worker_id, shard in enumerate(shards):
            task = _WorkerTask(
                prog=self.prog,
                config=round_config,
                strategy=self.strategy,
                budget=slice_budget,
                factory=factory,
                items=tuple(shard),
            )
            proc = self._mp.Process(
                target=_worker_main,
                args=(worker_id, pickle.dumps(task), result_q, event_q),
                daemon=True,
            )
            proc.start()
            procs.append(proc)

        by_worker: dict = {}
        failures: dict = {}
        grace: dict = {}
        outstanding = set(range(len(procs)))
        hard_deadline = (
            None
            if cfg.worker_timeout is None
            else time.monotonic() + cfg.worker_timeout
        )
        while outstanding:
            try:
                kind, worker_id, payload = result_q.get(
                    timeout=cfg.worker_result_poll
                )
            except queue_mod.Empty:
                if hard_deadline is not None and time.monotonic() > hard_deadline:
                    for i in sorted(outstanding):
                        proc = procs[i]
                        if proc.is_alive():
                            proc.terminate()
                            proc.join()
                        failures[i] = (
                            f"worker {i} hung past worker_timeout="
                            f"{cfg.worker_timeout}s and was terminated"
                        )
                        outstanding.discard(i)
                    continue
                for i in sorted(outstanding):
                    if not procs[i].is_alive():
                        grace[i] = grace.get(i, 0) + 1
                        if grace[i] >= _DEAD_WORKER_GRACE_POLLS:
                            failures[i] = (
                                f"worker {i} exited (code "
                                f"{procs[i].exitcode}) without reporting"
                            )
                            outstanding.discard(i)
                continue
            if kind == "err":
                failures[worker_id] = payload
            else:
                finals, stats = pickle.loads(payload)
                by_worker[worker_id] = _Result(finals, stats)
            outstanding.discard(worker_id)

        for proc in procs:
            proc.join(timeout=cfg.worker_join_timeout)
            if proc.is_alive():
                proc.terminate()
                proc.join()
        result_q.close()

        results = [by_worker[i] for i in sorted(by_worker)]
        failed = [(i, failures[i], shards[i]) for i in sorted(failures)]
        return results, failed


def _drain_events(event_q, bus: EventBus) -> None:
    """Parent-side pump: queue records → ``WorkerEvent`` on the bus."""
    while True:
        item = event_q.get()
        if item is None:
            return
        worker_id, inner = item
        bus.emit(WorkerEvent(worker_id, inner))
