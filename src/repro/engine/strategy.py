"""Search strategies: the exploration-order policy of the scheduler.

The paper's engine (§2.1, Fig. 1) is a worklist over GIL configurations;
*which* pending configuration is stepped next is a policy choice that the
semantics leaves open.  For exhaustive runs the choice cannot change the
set of final outcomes — every pending configuration is eventually stepped
and branching is path-local — but it changes memory footprint, time to
first bug, and which paths survive a budget cut, which is why the
follow-up journal paper (Maksimović et al.) and Soteria both treat
exploration order as central to engine performance.

A :class:`SearchStrategy` owns the worklist.  Items are ``(Config,
depth)`` pairs; the scheduler only ever calls :meth:`push`, :meth:`pop`,
:meth:`evict` and ``len``.  Eviction (the ``max_paths`` budget cut) is a
strategy decision too: each strategy discards the items it would have
scheduled *last*, deterministically, so a budget-capped run under a
strategy is a prefix of the uncapped run under the same strategy.

Implemented policies:

* :class:`DFSStrategy` — LIFO stack; the classic depth-first engine loop.
* :class:`BFSStrategy` — FIFO queue; breadth-first, finds shallow bugs
  first.
* :class:`RandomStrategy` — uniformly random next item from a seeded PRNG;
  reproducible for a given seed, used to surface exploration-order
  sensitivity.
* :class:`CoverageGuidedStrategy` — prefers configurations at the
  least-visited ``(proc, command-index)`` site (visit counts are bumped as
  items are popped), breaking ties FIFO; a greedy novelty search.
"""

from __future__ import annotations

import heapq
import random
from collections import deque
from typing import Dict, Iterable, List, Tuple, Union

from repro.gil.semantics import Config

#: A scheduled unit of work: a configuration and its depth (steps taken
#: along its path so far).
WorkItem = Tuple[Config, int]

#: The site of a work item, for coverage accounting.
Site = Tuple[str, int]


def _site(item: WorkItem) -> Site:
    cfg = item[0]
    return (cfg.proc, cfg.idx)


class SearchStrategy:
    """The worklist policy interface the scheduler drives.

    Subclasses must keep :meth:`pop` and :meth:`evict` deterministic:
    given the same sequence of pushes, the same items come out in the
    same order (seeded PRNGs count as deterministic).
    """

    #: short policy name, reported in benchmark output
    name: str = "abstract"

    def push(self, item: WorkItem) -> None:
        raise NotImplementedError

    def pop(self) -> WorkItem:
        """Remove and return the next item to step. Undefined when empty."""
        raise NotImplementedError

    def evict(self, count: int) -> List[WorkItem]:
        """Remove and return up to ``count`` lowest-priority items.

        "Lowest priority" means the items this strategy would otherwise
        have scheduled last; the scheduler counts them as dropped paths.
        """
        raise NotImplementedError

    def snapshot(self) -> Tuple[WorkItem, ...]:
        """The pending items, *without* removing them.

        Used by checkpointing (:mod:`repro.service.checkpoint`): the
        returned tuple, pushed in order into a fresh strategy of the
        same type, reproduces the same worklist contents.  For DFS and
        BFS the rebuilt schedule is byte-identical; for the stateful
        policies (random PRNG position, coverage visit counts) only the
        *item set* is preserved — which is all outcome determinism needs,
        since exhaustive exploration is schedule-independent.
        """
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def extend(self, items: Iterable[WorkItem]) -> None:
        for item in items:
            self.push(item)


class DFSStrategy(SearchStrategy):
    """Depth-first: LIFO stack.

    Eviction discards from the *bottom* of the stack — the oldest pending
    branch alternatives, which DFS would have reached last — never the
    deep frontier it is about to extend.
    """

    name = "dfs"

    def __init__(self) -> None:
        self._stack: List[WorkItem] = []

    def push(self, item: WorkItem) -> None:
        self._stack.append(item)

    def pop(self) -> WorkItem:
        return self._stack.pop()

    def evict(self, count: int) -> List[WorkItem]:
        count = min(count, len(self._stack))
        evicted = self._stack[:count]
        del self._stack[:count]
        return evicted

    def snapshot(self) -> Tuple[WorkItem, ...]:
        """Stack bottom-to-top: re-pushing in order rebuilds it exactly."""
        return tuple(self._stack)

    def __len__(self) -> int:
        return len(self._stack)


class BFSStrategy(SearchStrategy):
    """Breadth-first: FIFO queue.

    Eviction discards from the *back* of the queue — the most recently
    scheduled (deepest) items, which BFS would have reached last.
    """

    name = "bfs"

    def __init__(self) -> None:
        self._queue: deque = deque()

    def push(self, item: WorkItem) -> None:
        self._queue.append(item)

    def pop(self) -> WorkItem:
        return self._queue.popleft()

    def evict(self, count: int) -> List[WorkItem]:
        count = min(count, len(self._queue))
        evicted = [self._queue.pop() for _ in range(count)]
        evicted.reverse()
        return evicted

    def snapshot(self) -> Tuple[WorkItem, ...]:
        """Queue front-to-back: re-pushing in order rebuilds it exactly."""
        return tuple(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


class RandomStrategy(SearchStrategy):
    """Uniformly random next item, from a seeded PRNG (reproducible).

    ``pop`` swap-removes a random index (O(1)); ``evict`` removes random
    items with the same PRNG, so a given seed fixes the whole schedule.
    """

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._items: List[WorkItem] = []

    def push(self, item: WorkItem) -> None:
        self._items.append(item)

    def pop(self) -> WorkItem:
        idx = self._rng.randrange(len(self._items))
        self._items[idx], self._items[-1] = self._items[-1], self._items[idx]
        return self._items.pop()

    def evict(self, count: int) -> List[WorkItem]:
        count = min(count, len(self._items))
        return [self.pop() for _ in range(count)]

    def snapshot(self) -> Tuple[WorkItem, ...]:
        """The pending item list (insertion order; PRNG state excluded)."""
        return tuple(self._items)

    def __len__(self) -> int:
        return len(self._items)


class CoverageGuidedStrategy(SearchStrategy):
    """Prefer configurations at the least-visited ``(proc, idx)`` site.

    A lazily re-prioritised heap: items enter keyed by the current visit
    count of their site (FIFO tie-break); when an item surfaces with a
    stale key its priority is refreshed and it is re-queued.  Visit
    counts are bumped on ``pop`` — the popped configuration's site is
    about to be executed — so the policy continuously steers towards
    novel program points.
    """

    name = "coverage"

    def __init__(self) -> None:
        self._heap: List[Tuple[int, int, WorkItem]] = []
        self._visits: Dict[Site, int] = {}
        self._seq = 0  # FIFO tie-break; also makes heap entries comparable

    def _priority(self, item: WorkItem) -> int:
        return self._visits.get(_site(item), 0)

    def push(self, item: WorkItem) -> None:
        heapq.heappush(self._heap, (self._priority(item), self._seq, item))
        self._seq += 1

    def pop(self) -> WorkItem:
        while True:
            priority, seq, item = heapq.heappop(self._heap)
            current = self._priority(item)
            if current != priority:
                # Stale priority: the site has been visited since the
                # item was queued; re-queue at its true rank (the
                # original sequence number keeps the FIFO tie-break).
                heapq.heappush(self._heap, (current, seq, item))
                continue
            site = _site(item)
            self._visits[site] = self._visits.get(site, 0) + 1
            return item

    def evict(self, count: int) -> List[WorkItem]:
        count = min(count, len(self._heap))
        if not count:
            return []
        # Most-visited sites first (the least novel work); among equals,
        # the most recently queued goes first — both total orders, so the
        # cut is deterministic.
        ranked = sorted(
            self._heap, key=lambda e: (self._priority(e[2]), e[1]), reverse=True
        )
        victims = ranked[:count]
        victim_keys = {(e[1]) for e in victims}
        self._heap = [e for e in self._heap if e[1] not in victim_keys]
        heapq.heapify(self._heap)
        return [e[2] for e in victims]

    def snapshot(self) -> Tuple[WorkItem, ...]:
        """Pending items in (priority, seq) order (visit counts excluded)."""
        return tuple(e[2] for e in sorted(self._heap, key=lambda e: (e[0], e[1])))

    def __len__(self) -> int:
        return len(self._heap)


#: Specs accepted anywhere a strategy is configurable: a policy name
#: (optionally ``random:<seed>``), or an instance passed through as-is.
StrategySpec = Union[str, SearchStrategy, None]

_FACTORIES = {
    "dfs": DFSStrategy,
    "bfs": BFSStrategy,
    "random": RandomStrategy,
    "coverage": CoverageGuidedStrategy,
}


def strategy_names() -> List[str]:
    return sorted(_FACTORIES)


def make_strategy(spec: StrategySpec = None, seed: int = 0) -> SearchStrategy:
    """Build a fresh strategy from a spec.

    ``spec`` may be None (DFS, the historical default), a name from
    :func:`strategy_names`, ``"random:<seed>"`` (an explicit seed
    overriding ``seed``), or an already-built :class:`SearchStrategy`,
    which is returned unchanged.
    """
    if isinstance(spec, SearchStrategy):
        return spec
    if spec is None:
        spec = "dfs"
    if not isinstance(spec, str):
        raise ValueError(
            f"strategy spec must be a name string or a SearchStrategy, "
            f"got {type(spec).__name__}: {spec!r}"
        )
    name, sep, arg = spec.partition(":")
    name = name.strip().lower()
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown search strategy {spec!r} (known: {', '.join(strategy_names())})"
        )
    if factory is RandomStrategy:
        if not sep:
            return RandomStrategy(seed=seed)
        try:
            explicit = int(arg.strip())
        except ValueError:
            raise ValueError(
                f"malformed strategy spec {spec!r}: 'random:' takes an "
                f"integer seed, got {arg!r}"
            ) from None
        return RandomStrategy(seed=explicit)
    if sep:
        raise ValueError(f"strategy {name!r} takes no argument, got {spec!r}")
    return factory()
