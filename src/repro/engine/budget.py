"""Execution budgets: every bound the scheduler enforces, in one object.

Bounded symbolic execution (paper §1: "exploring all paths and unrolling
loops up to a bound") is sound for bug-finding by the relaxed
trace-composition result (§3.1): the engine has permission to drop paths
by need.  Historically each bound was an ad-hoc ``if`` scattered through
the exploration loop; :class:`Budget` unifies them behind a single
:meth:`decide` call per scheduler iteration, and the decision records
*why* exploration stopped so :class:`~repro.engine.results.ExecutionStats`
can report it.

Bounds:

* ``max_steps_per_path`` — loop-unrolling bound: a popped item deeper
  than this is dropped (the path, not the run).
* ``max_paths`` — cap on finished+pending paths: overshoot is *evicted*
  from the worklist (the strategy chooses the victims).
* ``max_total_steps`` — global command budget: stops the run.
* ``deadline`` — wall-clock budget in seconds: stops the run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional


class StopReason(enum.Enum):
    """Why a scheduler run ended; stored in ``ExecutionStats.stop_reason``."""

    #: the worklist drained — every path ran to a final or was dropped at
    #: its depth bound (the only *exhaustive* stop)
    EXHAUSTED = "exhausted"
    #: the ``max_paths`` eviction emptied the worklist
    MAX_PATHS = "max-paths"
    #: the global ``max_total_steps`` command budget ran out
    MAX_TOTAL_STEPS = "max-total-steps"
    #: the wall-clock ``deadline`` passed
    DEADLINE = "deadline"
    #: a branch's feasibility came back UNKNOWN under
    #: ``unknown_policy="abort"`` — the run stopped rather than degrade
    UNKNOWN_ABORT = "unknown-abort"
    #: a parallel shard exhausted its crash retries and its frontier was
    #: abandoned; partial results from healthy shards were kept
    INCOMPLETE = "incomplete"


@dataclass(frozen=True)
class BudgetDecision:
    """The budget's verdict for one scheduler iteration.

    Exactly one of three shapes: ``stop`` set (end the run, dropping the
    current item and everything pending), ``drop_path`` (discard the
    current item only, keep running), or neither (continue; first
    evicting ``evict`` pending items if positive).  ``cap_hit`` marks a
    drop caused by the path cap rather than the depth bound, so the
    scheduler can report ``max-paths`` when the cap drains the worklist.
    """

    stop: Optional[StopReason] = None
    drop_path: bool = False
    evict: int = 0
    cap_hit: bool = False


_CONTINUE = BudgetDecision()
_DROP_PATH = BudgetDecision(drop_path=True)


@dataclass(frozen=True)
class Budget:
    """All scheduler bounds; checked at exactly one point in the loop."""

    max_steps_per_path: int = 100_000
    max_paths: int = 100_000
    max_total_steps: int = 5_000_000
    #: wall-clock budget for one ``explore`` call, in seconds (None: off)
    deadline: Optional[float] = None

    @classmethod
    def from_config(cls, config) -> "Budget":
        """The budget an :class:`~repro.engine.config.EngineConfig` implies."""
        return cls(
            max_steps_per_path=config.max_steps_per_path,
            max_paths=config.max_paths,
            max_total_steps=config.max_total_steps,
            deadline=getattr(config, "deadline", None),
        )

    def shard_slice(
        self,
        shards: int,
        steps_spent: int = 0,
        paths_found: int = 0,
        elapsed: float = 0.0,
    ) -> "Budget":
        """The per-shard slice of this budget for a ``shards``-way split.

        The global bounds that survive the seeding phase (``steps_spent``
        commands, ``paths_found`` finished paths, ``elapsed`` seconds)
        are divided evenly across shards, rounding up so the shard sum
        covers the remainder; the per-path depth bound is path-local and
        passes through unchanged.  Exhaustive runs never touch these
        bounds, which is why slicing preserves the outcome multiset; a
        budget-bound run stops with the most restrictive shard reason
        (see ``STOP_REASON_PRECEDENCE``) exactly as a sequential run
        records why *it* stopped.
        """
        shards = max(1, shards)
        remaining_steps = max(0, self.max_total_steps - steps_spent)
        remaining_paths = max(0, self.max_paths - paths_found)
        deadline = None
        if self.deadline is not None:
            deadline = max(0.0, self.deadline - elapsed)
        return Budget(
            max_steps_per_path=self.max_steps_per_path,
            max_paths=-(-remaining_paths // shards),
            max_total_steps=-(-remaining_steps // shards),
            deadline=deadline,
        )

    def scaled(self, factor: float) -> "Budget":
        """A cheaper copy of this budget, every global bound multiplied
        by ``factor`` (with a floor of 1 so a scaled budget can still do
        *some* work).

        This is the degradation ladder's lever
        (:mod:`repro.service.degrade`): under memory pressure the
        analysis service admits new jobs at ``scaled(0.25)`` (say)
        rather than refusing them or OOMing.  The per-path depth bound
        is left alone — it bounds a single path's memory, not the run's
        fan-out — and the wall-clock deadline scales like the step
        bounds.
        """
        if not 0 < factor <= 1:
            raise ValueError(f"factor must be in (0, 1], got {factor}")
        return Budget(
            max_steps_per_path=self.max_steps_per_path,
            max_paths=max(1, int(self.max_paths * factor)),
            max_total_steps=max(1, int(self.max_total_steps * factor)),
            deadline=None if self.deadline is None else self.deadline * factor,
        )

    def decide(
        self, stats, depth: int, pending: int, elapsed: float
    ) -> BudgetDecision:
        """Judge the item just popped (at ``depth``) against every bound.

        ``stats`` is the run's live :class:`ExecutionStats`; ``pending``
        is the worklist size *after* the pop; ``elapsed`` is wall-clock
        seconds since the run started.
        """
        if stats.commands_executed >= self.max_total_steps:
            return BudgetDecision(stop=StopReason.MAX_TOTAL_STEPS)
        if self.deadline is not None and elapsed >= self.deadline:
            return BudgetDecision(stop=StopReason.DEADLINE)
        # Path cap: the popped item plus everything pending are prospective
        # paths on top of those already finished.  Overshoot is evicted
        # (strategy's choice of victims); if even the popped item is over
        # the cap, it is dropped too.
        overshoot = stats.paths_finished + pending + 1 - self.max_paths
        if overshoot > pending:
            return BudgetDecision(drop_path=True, evict=pending, cap_hit=True)
        if depth >= self.max_steps_per_path:
            return _DROP_PATH
        if overshoot > 0:
            return BudgetDecision(evict=overshoot)
        return _CONTINUE
