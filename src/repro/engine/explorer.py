"""The symbolic execution driver: a scheduler over GIL configurations.

Explores all branches of the GIL semantics up to configurable bounds
(paper §1: "exploring all paths and unrolling loops up to a bound").
Dropping a path at a bound is sound for bug-finding by the relaxed
trace-composition result (paper §3.1): "this gives us permission to
arbitrarily drop paths in the analysis by need".

The driver is a thin scheduler composed from three pluggable layers:

* a :class:`~repro.engine.strategy.SearchStrategy` owns the worklist and
  decides exploration order and eviction victims (DFS by default);
* a :class:`~repro.engine.budget.Budget` owns every bound — per-path
  depth, path cap, global steps, wall-clock deadline — judged by a
  single :meth:`~repro.engine.budget.Budget.decide` call per iteration,
  and the run records *why* it stopped in ``ExecutionStats.stop_reason``;
* an optional :class:`~repro.engine.events.EventBus` receives
  step/branch/path-end events from the loop (and solver-query events
  from the attached solver); when absent or subscriber-less the loop
  pays one falsy check per step.

The same scheduler drives concrete execution — a concrete state model
simply never branches — which is what the differential conformance tests
(E5), counter-model replay (Thm. 3.6), the concolic driver, and the
symbolic testing harness all rely on: one exploration loop, many modes.

For an exhaustive run (stop reason ``exhausted``) the strategy cannot
change the *multiset* of final outcomes, only the order they are found
in: branching is path-local and allocation records are threaded through
states, so every path produces the same finals whenever it is scheduled.
``benchmarks/bench_strategies.py`` asserts this invariance.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.engine.budget import Budget, StopReason
from repro.engine.config import EngineConfig
from repro.engine.events import (
    BranchEvent,
    EventBus,
    PathEndEvent,
    SpanEnd,
    StepEvent,
)
from repro.engine.results import ExecutionResult, ExecutionStats
from repro.engine.strategy import SearchStrategy, StrategySpec, make_strategy
from repro.gil.semantics import (
    Config,
    Final,
    OutcomeKind,
    make_call_config,
    step,
)
from repro.gil.syntax import Prog
from repro.logic.solver import UnknownAbort


class Explorer:
    """Runs a GIL program under a state model to completion.

    ``strategy`` accepts a spec string (``"dfs"``, ``"bfs"``,
    ``"random[:seed]"``, ``"coverage"``) or a ready
    :class:`SearchStrategy` instance; None defers to
    ``config.strategy``.  ``budget`` defaults to the bounds the config
    carries.  ``events`` is an optional :class:`EventBus`.
    """

    def __init__(
        self,
        prog: Prog,
        state_model,
        config: Optional[EngineConfig] = None,
        strategy: StrategySpec = None,
        budget: Optional[Budget] = None,
        events: Optional[EventBus] = None,
    ):
        self.prog = prog
        self.sm = state_model
        self.config = config if config is not None else EngineConfig()
        self.strategy = strategy
        self.budget = budget if budget is not None else Budget.from_config(self.config)
        self.events = events
        # Deterministic fault injection: a FaultPlan shipped through the
        # config (by the fault harness, or by the parallel explorer to
        # its workers) is resolved to this process's injector here.  A
        # plan with no fault for (fault_worker, fault_attempt) resolves
        # to None and the loop pays nothing.
        self.faults = None
        plan = getattr(self.config, "fault_plan", None)
        if plan is not None:
            from repro.testing.faults import install_faults

            injector = plan.injector(
                getattr(self.config, "fault_worker", None),
                getattr(self.config, "fault_attempt", 0),
            )
            if injector is not None:
                install_faults(self.sm, injector)
                self.faults = injector

    def run(
        self,
        proc: str,
        args: Sequence = (),
        state: object = None,
    ) -> ExecutionResult:
        """Execute ``proc(args)`` from ``state`` (default: initial state)."""
        if state is None:
            state = self.sm.initial_state()
        # Arguments are expressions; evaluate them in the initial state so
        # concrete stores hold values and symbolic stores hold logical
        # expressions.
        from repro.logic.expr import Expr

        evaluated = [
            self.sm.eval_expr(state, a) if isinstance(a, Expr) else a for a in args
        ]
        cfg = make_call_config(self.sm, state, self.prog, proc, evaluated)
        return self.explore([cfg])

    def _make_strategy(self) -> SearchStrategy:
        spec = self.strategy if self.strategy is not None else self.config.strategy
        return make_strategy(spec, seed=self.config.random_seed)

    def explore(
        self,
        configs: List[Config],
        depths: Optional[Sequence[int]] = None,
    ) -> ExecutionResult:
        """Drive every configuration to a final under budget and strategy.

        ``depths`` optionally gives the starting depth of each config —
        parallel-explorer shards resume mid-path, so their loop-unrolling
        bound must keep counting from where the seeding phase stopped.
        """
        stats = ExecutionStats()
        strategy = self._make_strategy()
        budget = self.budget
        bus = self.events  # truthy only when subscribers are attached
        solver = getattr(self.sm, "solver", None)
        solver_stats = solver.stats if solver is not None else None
        degradation = getattr(self.sm, "degradation", None)
        faults = self.faults
        # Route this run's solver queries onto our bus (restored on exit:
        # nested or interleaved explorers over a shared solver each see
        # their own wiring).
        prev_solver_events = None
        if solver is not None and bus is not None:
            prev_solver_events = solver.events
            solver.events = bus

        start = time.perf_counter()
        finals: List[Final] = []
        try:
            for i, cfg in enumerate(configs):
                strategy.push((cfg, depths[i] if depths is not None else 0))
            stop = StopReason.EXHAUSTED
            while len(strategy):
                cfg, depth = strategy.pop()
                # The one budget checkpoint of the loop.
                decision = budget.decide(
                    stats,
                    depth=depth,
                    pending=len(strategy),
                    elapsed=time.perf_counter() - start,
                )
                if decision.stop is not None:
                    stats.paths_dropped += 1 + len(strategy)
                    stop = decision.stop
                    break
                if decision.evict:
                    stats.paths_dropped += len(strategy.evict(decision.evict))
                if decision.drop_path:
                    stats.paths_dropped += 1
                    if decision.cap_hit and not len(strategy):
                        stop = StopReason.MAX_PATHS
                    continue

                # Attribute solver work step-by-step, so interleaved
                # explorers over a shared state model stay accurate.
                snap = solver_stats.snapshot() if solver_stats is not None else None
                dsnap = degradation.snapshot() if degradation is not None else None
                if faults is not None:
                    faults.on_step()
                try:
                    successors, finished = step(self.prog, self.sm, cfg)
                except UnknownAbort:
                    stats.commands_executed += 1
                    if snap is not None:
                        stats.add_solver_delta(solver_stats.delta(snap))
                    stats.paths_dropped += 1 + len(strategy)
                    stop = StopReason.UNKNOWN_ABORT
                    break
                stats.commands_executed += 1
                if snap is not None:
                    stats.add_solver_delta(solver_stats.delta(snap))
                if dsnap is not None:
                    now = degradation.snapshot()
                    if now != dsnap:
                        stats.add_degradation_delta(
                            now[0] - dsnap[0], now[1] - dsnap[1]
                        )

                if bus:
                    bus.emit(
                        StepEvent(
                            cfg.proc, cfg.idx, depth,
                            len(successors), len(finished),
                        )
                    )
                    if len(successors) > 1:
                        bus.emit(
                            BranchEvent(cfg.proc, cfg.idx, depth, len(successors))
                        )
                for fin in finished:
                    if fin.kind is OutcomeKind.VANISH:
                        stats.paths_vanished += 1
                    else:
                        stats.paths_finished += 1
                        finals.append(fin)
                    if bus:
                        bus.emit(PathEndEvent(fin.kind.name, depth, fin.value))
                for succ in successors:
                    strategy.push((succ, depth + 1))
            stats.stop_reason = stop.value
        finally:
            if solver is not None and bus is not None:
                solver.events = prev_solver_events
        stats.wall_time = time.perf_counter() - start
        if bus:
            bus.emit(SpanEnd("explore", stats.wall_time, stats.commands_executed))
            for name, seconds in sorted(stats.phase_times.items()):
                bus.emit(SpanEnd(name, seconds, 0))
        return ExecutionResult(finals, stats)

    def explore_frontier(
        self, configs: List[Config], target: int
    ) -> "tuple[List[tuple], ExecutionResult]":
        """Breadth-first seeding: step until the worklist holds ``target``
        pending items, then hand the frontier back instead of finishing.

        This is the parallel explorer's phase 1.  BFS order is used
        regardless of the configured strategy so the frontier is a *cut*
        across the shallow part of the execution tree — every path of the
        full run extends exactly one frontier item (or already ended),
        which is what makes sharding the frontier a partition of the path
        set (§3.1 trace composition: outcomes are path-local).

        Returns ``(items, result)`` where ``items`` is the pending
        ``(Config, depth)`` list (empty when the run finished during
        seeding) and ``result`` carries the finals found so far plus the
        seeding stats.  ``result.stats.stop_reason`` is ``""`` while the
        frontier is live, or the budget's stop reason if a global bound
        fired mid-seed (the frontier is then dropped and counted, exactly
        as :meth:`explore` would have).
        """
        from repro.engine.strategy import BFSStrategy

        stats = ExecutionStats()
        strategy = BFSStrategy()
        budget = self.budget
        bus = self.events
        solver = getattr(self.sm, "solver", None)
        solver_stats = solver.stats if solver is not None else None
        degradation = getattr(self.sm, "degradation", None)
        faults = self.faults
        prev_solver_events = None
        if solver is not None and bus is not None:
            prev_solver_events = solver.events
            solver.events = bus

        start = time.perf_counter()
        finals: List[Final] = []
        items: List[tuple] = []
        stop: Optional[StopReason] = None
        try:
            for cfg in configs:
                strategy.push((cfg, 0))
            while len(strategy):
                if len(strategy) >= target:
                    items = [strategy.pop() for _ in range(len(strategy))]
                    break
                cfg, depth = strategy.pop()
                decision = budget.decide(
                    stats,
                    depth=depth,
                    pending=len(strategy),
                    elapsed=time.perf_counter() - start,
                )
                if decision.stop is not None:
                    stats.paths_dropped += 1 + len(strategy)
                    stop = decision.stop
                    break
                if decision.evict:
                    stats.paths_dropped += len(strategy.evict(decision.evict))
                if decision.drop_path:
                    stats.paths_dropped += 1
                    if decision.cap_hit and not len(strategy):
                        stop = StopReason.MAX_PATHS
                    continue

                snap = solver_stats.snapshot() if solver_stats is not None else None
                dsnap = degradation.snapshot() if degradation is not None else None
                if faults is not None:
                    faults.on_step()
                try:
                    successors, finished = step(self.prog, self.sm, cfg)
                except UnknownAbort:
                    stats.commands_executed += 1
                    if snap is not None:
                        stats.add_solver_delta(solver_stats.delta(snap))
                    stats.paths_dropped += 1 + len(strategy)
                    stop = StopReason.UNKNOWN_ABORT
                    break
                stats.commands_executed += 1
                if snap is not None:
                    stats.add_solver_delta(solver_stats.delta(snap))
                if dsnap is not None:
                    now = degradation.snapshot()
                    if now != dsnap:
                        stats.add_degradation_delta(
                            now[0] - dsnap[0], now[1] - dsnap[1]
                        )

                if bus:
                    bus.emit(
                        StepEvent(
                            cfg.proc, cfg.idx, depth,
                            len(successors), len(finished),
                        )
                    )
                    if len(successors) > 1:
                        bus.emit(
                            BranchEvent(cfg.proc, cfg.idx, depth, len(successors))
                        )
                for fin in finished:
                    if fin.kind is OutcomeKind.VANISH:
                        stats.paths_vanished += 1
                    else:
                        stats.paths_finished += 1
                        finals.append(fin)
                    if bus:
                        bus.emit(PathEndEvent(fin.kind.name, depth, fin.value))
                for succ in successors:
                    strategy.push((succ, depth + 1))
            if not items:
                # The run either drained (exhausted) or a bound fired.
                stats.stop_reason = (stop or StopReason.EXHAUSTED).value
        finally:
            if solver is not None and bus is not None:
                solver.events = prev_solver_events
        stats.wall_time = time.perf_counter() - start
        if bus:
            bus.emit(SpanEnd("seed", stats.wall_time, stats.commands_executed))
        return items, ExecutionResult(finals, stats)
