"""The symbolic execution driver: a scheduler over GIL configurations.

Explores all branches of the GIL semantics up to configurable bounds
(paper §1: "exploring all paths and unrolling loops up to a bound").
Dropping a path at a bound is sound for bug-finding by the relaxed
trace-composition result (paper §3.1): "this gives us permission to
arbitrarily drop paths in the analysis by need".

The driver is a thin scheduler composed from three pluggable layers:

* a :class:`~repro.engine.strategy.SearchStrategy` owns the worklist and
  decides exploration order and eviction victims (DFS by default);
* a :class:`~repro.engine.budget.Budget` owns every bound — per-path
  depth, path cap, global steps, wall-clock deadline — judged by a
  single :meth:`~repro.engine.budget.Budget.decide` call per iteration,
  and the run records *why* it stopped in ``ExecutionStats.stop_reason``;
* an optional :class:`~repro.engine.events.EventBus` receives
  step/branch/path-end events from the loop (and solver-query events
  from the attached solver); when absent or subscriber-less the loop
  pays one falsy check per step.

Stepping goes through the compiled pipeline (:mod:`repro.gil.compile`)
whenever ``config.compiled`` is on and the state model is one the
compiler covers; anything else — custom state models, the ablation
configuration — falls back to the tree-walking interpreter
:func:`repro.gil.semantics.step`, which doubles as the differential
oracle for the compiled path.  The scheduler also takes a private fast
path of its own: under plain DFS, a step with a single successor and no
finals continues inline instead of round-tripping through the worklist
(push/pop order, budget decisions, and eviction victims are unchanged —
the successor would have been the next pop anyway).

The same scheduler drives concrete execution — a concrete state model
simply never branches — which is what the differential conformance tests
(E5), counter-model replay (Thm. 3.6), the concolic driver, and the
symbolic testing harness all rely on: one exploration loop, many modes.

For an exhaustive run (stop reason ``exhausted``) the strategy cannot
change the *multiset* of final outcomes, only the order they are found
in: branching is path-local and allocation records are threaded through
states, so every path produces the same finals whenever it is scheduled.
``benchmarks/bench_strategies.py`` asserts this invariance.
"""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager
from typing import List, Optional, Sequence, Tuple

from repro.engine.budget import Budget, StopReason
from repro.engine.config import EngineConfig
from repro.engine.events import (
    BranchEvent,
    EventBus,
    PathEndEvent,
    SpanEnd,
    StepEvent,
)
from repro.engine.results import ExecutionResult, ExecutionStats
from repro.engine.strategy import (
    DFSStrategy,
    SearchStrategy,
    StrategySpec,
    make_strategy,
)
from repro.gil.semantics import (
    Config,
    Final,
    OutcomeKind,
    make_call_config,
    step,
)
from repro.gil.syntax import Prog
from repro.logic.solver import UnknownAbort

_VANISH = OutcomeKind.VANISH


@contextmanager
def _batched_gc(threshold: int):
    """Raise the gen-0 collector threshold around a drive loop.

    Exploration allocates short-lived objects fast enough that CPython's
    default gen-0 threshold collects hundreds of times per run, a
    double-digit share of wall time.  Collection stays *enabled* (peak
    memory remains bounded); only the batch size grows.  Reentrant:
    a nested drive (e.g. counter-model replay inside a test) sees the
    already-raised threshold and leaves it alone.
    """
    if threshold <= 0 or not gc.isenabled():
        yield
        return
    prev = gc.get_threshold()
    if prev[0] >= threshold:
        yield
        return
    gc.set_threshold(threshold, prev[1], prev[2])
    try:
        yield
    finally:
        gc.set_threshold(*prev)


class Explorer:
    """Runs a GIL program under a state model to completion.

    ``strategy`` accepts a spec string (``"dfs"``, ``"bfs"``,
    ``"random[:seed]"``, ``"coverage"``) or a ready
    :class:`SearchStrategy` instance; None defers to
    ``config.strategy``.  ``budget`` defaults to the bounds the config
    carries.  ``events`` is an optional :class:`EventBus`.

    ``checkpoint`` is an optional crash-recovery hook (duck-typed; see
    :class:`repro.service.checkpoint.CheckpointManager`): an object with
    an ``interval`` attribute (commands between snapshots; 0 disables)
    and a ``save(frontier, finals, stats)`` method.  The scheduler calls
    ``save`` at the :meth:`Budget.decide` boundary — after the decision,
    before the step — every ``interval`` executed commands, passing the
    full pending frontier (the in-flight item first), the finals found
    so far, and the live stats with every solver/degradation delta
    folded in, so a process killed at any point resumes from the last
    snapshot with nothing double-counted.
    """

    def __init__(
        self,
        prog: Prog,
        state_model,
        config: Optional[EngineConfig] = None,
        strategy: StrategySpec = None,
        budget: Optional[Budget] = None,
        events: Optional[EventBus] = None,
        checkpoint=None,
    ):
        self.prog = prog
        self.sm = state_model
        self.config = config if config is not None else EngineConfig()
        self.strategy = strategy
        self.budget = budget if budget is not None else Budget.from_config(self.config)
        self.events = events
        self.checkpoint = checkpoint
        # Deterministic fault injection: a FaultPlan shipped through the
        # config (by the fault harness, or by the parallel explorer to
        # its workers) is resolved to this process's injector here.  A
        # plan with no fault for (fault_worker, fault_attempt) resolves
        # to None and the loop pays nothing.
        self.faults = None
        plan = getattr(self.config, "fault_plan", None)
        if plan is not None:
            from repro.testing.faults import install_faults

            injector = plan.injector(
                getattr(self.config, "fault_worker", None),
                getattr(self.config, "fault_attempt", 0),
            )
            if injector is not None:
                install_faults(self.sm, injector)
                self.faults = injector
        # Lower the program to pre-resolved step closures when the config
        # asks for it and the state model is one the compiler covers
        # (fault installation above happens first: compiled closures bind
        # state-model methods, which read the injected hooks dynamically).
        self._compiled = None
        if getattr(self.config, "compiled", True):
            from repro.gil.compile import compile_prog, supports

            if supports(self.sm):
                self._compiled = compile_prog(prog, self.sm)
        # Compositional execution: a summary engine intercepts Call
        # commands in both arms (interpreter parameter / compiled
        # attachment).  Never constructed alongside a fault injector —
        # an injected fault could be recorded into a summary and then
        # replayed everywhere.
        self._summaries = None
        if getattr(self.config, "summaries", False) and self.faults is None:
            from repro.specs.engine import make_summary_engine

            self._summaries = make_summary_engine(
                prog, self.sm, self.config, events=events
            )
            if self._summaries is not None and self._compiled is not None:
                self._compiled.attach_summaries(self._summaries)

    def run(
        self,
        proc: str,
        args: Sequence = (),
        state: object = None,
    ) -> ExecutionResult:
        """Execute ``proc(args)`` from ``state`` (default: initial state)."""
        if state is None:
            state = self.sm.initial_state()
        # Arguments are expressions; evaluate them in the initial state so
        # concrete stores hold values and symbolic stores hold logical
        # expressions.
        from repro.logic.expr import Expr

        evaluated = [
            self.sm.eval_expr(state, a) if isinstance(a, Expr) else a for a in args
        ]
        cfg = make_call_config(self.sm, state, self.prog, proc, evaluated)
        return self.explore([cfg])

    def _make_strategy(self) -> SearchStrategy:
        spec = self.strategy if self.strategy is not None else self.config.strategy
        return make_strategy(spec, seed=self.config.random_seed)

    def _drive(
        self,
        strategy: SearchStrategy,
        stats: ExecutionStats,
        finals: List[Final],
        start: float,
        frontier_target: Optional[int],
    ) -> Tuple[List[tuple], Optional[StopReason]]:
        """The scheduler loop shared by :meth:`explore` (``frontier_target``
        None: run to completion) and :meth:`explore_frontier` (stop once the
        worklist holds that many pending items and hand them back).

        Returns ``(frontier_items, stop_reason)`` — items empty unless a
        frontier was cut, stop None unless a bound fired.
        """
        budget = self.budget
        bus = self.events  # truthy only when subscribers are attached
        prog = self.prog
        sm = self.sm
        solver_stats = getattr(getattr(sm, "solver", None), "stats", None)
        degradation = getattr(sm, "degradation", None)
        faults = self.faults
        compiled = self._compiled
        compiled_step = compiled.step if compiled is not None else None
        summaries = self._summaries
        sum_counters = summaries.counters if summaries is not None else None
        fast0 = compiled.fast_steps if compiled is not None else 0
        checkpoint = self.checkpoint
        ck_every = getattr(checkpoint, "interval", 0) if checkpoint is not None else 0
        ck_next = ck_every  # first snapshot after ``interval`` commands
        # The deadline is the only bound needing wall clock; without one,
        # Budget.decide ignores ``elapsed`` and the loop skips the read.
        timed = budget.deadline is not None
        perf = time.perf_counter
        # Inline continuation is a DFS-only identity: the sole successor
        # of a non-branching step is exactly what a push would pop next.
        inline = frontier_target is None and type(strategy) is DFSStrategy

        items: List[tuple] = []
        stop: Optional[StopReason] = None
        item: Optional[tuple] = None
        # Solver work and unknown-policy degradations are attributed to
        # this drive as one start/end delta: the counters are additive,
        # so folding them once at loop exit equals folding them per step,
        # at none of the per-step snapshot cost.  The ``finally`` makes
        # the flush cover every exit, including UnknownAbort.
        ss = solver_stats
        if ss is not None:
            s0 = (
                ss.queries, ss.cache_hits, ss.prefix_hits,
                ss.model_reuse_hits, ss.solve_time, ss.timeouts,
                ss.split_time, ss.propagation_time, ss.search_time,
            )
        if degradation is not None:
            d0p = degradation.unknown_pruned
            d0a = degradation.unknown_assumed
        if sum_counters is not None:
            sc0 = sum_counters.snapshot()
        try:
            while True:
                if item is None:
                    pending = len(strategy)
                    if not pending:
                        break
                    if frontier_target is not None and pending >= frontier_target:
                        items = [strategy.pop() for _ in range(pending)]
                        break
                    item = strategy.pop()
                cfg, depth = item
                item = None
                # The one budget checkpoint of the loop.
                decision = budget.decide(
                    stats,
                    depth=depth,
                    pending=len(strategy),
                    elapsed=perf() - start if timed else 0.0,
                )
                if decision.stop is not None:
                    stats.paths_dropped += 1 + len(strategy)
                    stop = decision.stop
                    break
                if decision.evict:
                    stats.paths_dropped += len(strategy.evict(decision.evict))
                if decision.drop_path:
                    stats.paths_dropped += 1
                    if decision.cap_hit and not len(strategy):
                        stop = StopReason.MAX_PATHS
                    continue

                if ck_every and stats.commands_executed >= ck_next:
                    # Snapshot at the decide() boundary: the popped item
                    # leads the frontier (its step has not run yet), and
                    # every externally-held counter delta is folded into
                    # ``stats`` first — with baselines reset so the
                    # ``finally`` fold below stays exact — making the
                    # snapshot self-contained: resume = frontier + finals
                    # + stats, nothing double-counted.
                    ck_next = stats.commands_executed + ck_every
                    if compiled is not None:
                        stats.fast_lane_steps += compiled.fast_steps - fast0
                        fast0 = compiled.fast_steps
                    if ss is not None:
                        self._flush_solver(stats, ss, s0)
                        s0 = (
                            ss.queries, ss.cache_hits, ss.prefix_hits,
                            ss.model_reuse_hits, ss.solve_time, ss.timeouts,
                            ss.split_time, ss.propagation_time, ss.search_time,
                        )
                    if degradation is not None:
                        d1p = degradation.unknown_pruned
                        d1a = degradation.unknown_assumed
                        if d1p != d0p or d1a != d0a:
                            stats.add_degradation_delta(d1p - d0p, d1a - d0a)
                            d0p, d0a = d1p, d1a
                    if sum_counters is not None:
                        sc1 = sum_counters.snapshot()
                        if sc1 != sc0:
                            stats.add_summary_delta(
                                *(a - b for a, b in zip(sc1, sc0))
                            )
                            sc0 = sc1
                    checkpoint.save(
                        ((cfg, depth),) + strategy.snapshot(), finals, stats
                    )

                if faults is not None:
                    faults.on_step()
                try:
                    if compiled_step is not None:
                        successors, finished = compiled_step(cfg)
                    else:
                        successors, finished = step(prog, sm, cfg, summaries)
                except UnknownAbort:
                    stats.commands_executed += 1
                    stats.paths_dropped += 1 + len(strategy)
                    stop = StopReason.UNKNOWN_ABORT
                    break
                stats.commands_executed += 1

                if bus:
                    bus.emit(
                        StepEvent(
                            cfg.proc, cfg.idx, depth,
                            len(successors), len(finished),
                        )
                    )
                    if len(successors) > 1:
                        bus.emit(
                            BranchEvent(cfg.proc, cfg.idx, depth, len(successors))
                        )
                if finished:
                    for fin in finished:
                        if fin.kind is _VANISH:
                            stats.paths_vanished += 1
                        else:
                            stats.paths_finished += 1
                            finals.append(fin)
                        if bus:
                            bus.emit(PathEndEvent(fin.kind.name, depth, fin.value))
                elif inline and len(successors) == 1:
                    item = (successors[0], depth + 1)
                    continue
                for succ in successors:
                    strategy.push((succ, depth + 1))
        finally:
            if compiled is not None:
                stats.fast_lane_steps += compiled.fast_steps - fast0
            if ss is not None:
                self._flush_solver(stats, ss, s0)
            if degradation is not None:
                d1p = degradation.unknown_pruned
                d1a = degradation.unknown_assumed
                if d1p != d0p or d1a != d0a:
                    stats.add_degradation_delta(d1p - d0p, d1a - d0a)
            if sum_counters is not None:
                sc1 = sum_counters.snapshot()
                if sc1 != sc0:
                    stats.add_summary_delta(*(a - b for a, b in zip(sc1, sc0)))
        return items, stop

    @staticmethod
    def _flush_solver(stats: ExecutionStats, ss, s0) -> None:
        """Fold the solver-counter movement since ``s0`` into ``stats``
        (the raw-tuple equivalent of ``add_solver_delta``)."""
        s1 = (
            ss.queries, ss.cache_hits, ss.prefix_hits,
            ss.model_reuse_hits, ss.solve_time, ss.timeouts,
            ss.split_time, ss.propagation_time, ss.search_time,
        )
        if s1 == s0:
            return
        stats.solver_queries += s1[0] - s0[0]
        stats.solver_cache_hits += s1[1] - s0[1]
        stats.solver_prefix_hits += s1[2] - s0[2]
        stats.solver_model_reuse += s1[3] - s0[3]
        stats.solver_time += s1[4] - s0[4]
        stats.incompleteness.solver_timeouts += s1[5] - s0[5]
        for name, seconds in (
            ("solver/split", s1[6] - s0[6]),
            ("solver/propagation", s1[7] - s0[7]),
            ("solver/search", s1[8] - s0[8]),
        ):
            if seconds:
                stats.phase_times[name] = (
                    stats.phase_times.get(name, 0.0) + seconds
                )

    def explore(
        self,
        configs: List[Config],
        depths: Optional[Sequence[int]] = None,
    ) -> ExecutionResult:
        """Drive every configuration to a final under budget and strategy.

        ``depths`` optionally gives the starting depth of each config —
        parallel-explorer shards resume mid-path, so their loop-unrolling
        bound must keep counting from where the seeding phase stopped.
        """
        stats = ExecutionStats()
        strategy = self._make_strategy()
        bus = self.events
        solver = getattr(self.sm, "solver", None)
        # Route this run's solver queries onto our bus (restored on exit:
        # nested or interleaved explorers over a shared solver each see
        # their own wiring).
        prev_solver_events = None
        if solver is not None and bus is not None:
            prev_solver_events = solver.events
            solver.events = bus

        start = time.perf_counter()
        finals: List[Final] = []
        try:
            for i, cfg in enumerate(configs):
                strategy.push((cfg, depths[i] if depths is not None else 0))
            with _batched_gc(getattr(self.config, "gc_batch", 0)):
                _, stop = self._drive(strategy, stats, finals, start, None)
            stats.stop_reason = (stop or StopReason.EXHAUSTED).value
        finally:
            if solver is not None and bus is not None:
                solver.events = prev_solver_events
        stats.wall_time = time.perf_counter() - start
        if bus:
            bus.emit(SpanEnd("explore", stats.wall_time, stats.commands_executed))
            for name, seconds in sorted(stats.phase_times.items()):
                bus.emit(SpanEnd(name, seconds, 0))
        return ExecutionResult(finals, stats)

    def explore_frontier(
        self, configs: List[Config], target: int
    ) -> "tuple[List[tuple], ExecutionResult]":
        """Breadth-first seeding: step until the worklist holds ``target``
        pending items, then hand the frontier back instead of finishing.

        This is the parallel explorer's phase 1.  BFS order is used
        regardless of the configured strategy so the frontier is a *cut*
        across the shallow part of the execution tree — every path of the
        full run extends exactly one frontier item (or already ended),
        which is what makes sharding the frontier a partition of the path
        set (§3.1 trace composition: outcomes are path-local).

        Returns ``(items, result)`` where ``items`` is the pending
        ``(Config, depth)`` list (empty when the run finished during
        seeding) and ``result`` carries the finals found so far plus the
        seeding stats.  ``result.stats.stop_reason`` is ``""`` while the
        frontier is live, or the budget's stop reason if a global bound
        fired mid-seed (the frontier is then dropped and counted, exactly
        as :meth:`explore` would have).
        """
        from repro.engine.strategy import BFSStrategy

        stats = ExecutionStats()
        strategy = BFSStrategy()
        bus = self.events
        solver = getattr(self.sm, "solver", None)
        prev_solver_events = None
        if solver is not None and bus is not None:
            prev_solver_events = solver.events
            solver.events = bus

        start = time.perf_counter()
        finals: List[Final] = []
        try:
            for cfg in configs:
                strategy.push((cfg, 0))
            with _batched_gc(getattr(self.config, "gc_batch", 0)):
                items, stop = self._drive(
                    strategy, stats, finals, start, target
                )
            if not items:
                # The run either drained (exhausted) or a bound fired.
                stats.stop_reason = (stop or StopReason.EXHAUSTED).value
        finally:
            if solver is not None and bus is not None:
                solver.events = prev_solver_events
        stats.wall_time = time.perf_counter() - start
        if bus:
            bus.emit(SpanEnd("seed", stats.wall_time, stats.commands_executed))
        return items, ExecutionResult(finals, stats)
