"""The symbolic execution driver.

Explores all branches of the GIL semantics up to configurable bounds
(paper §1: "exploring all paths and unrolling loops up to a bound").
Dropping a path at the bound is sound for bug-finding by the relaxed
trace-composition result (paper §3.1): "this gives us permission to
arbitrarily drop paths in the analysis by need".

The same explorer drives concrete execution — a concrete state model
simply never branches — which is what the differential conformance tests
(E5) and counter-model replay (Thm. 3.6) rely on.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence

from repro.engine.config import EngineConfig
from repro.engine.results import ExecutionResult, ExecutionStats
from repro.gil.semantics import (
    Config,
    Final,
    OutcomeKind,
    make_call_config,
    step,
)
from repro.gil.syntax import Prog


class Explorer:
    """Runs a GIL program under a state model to completion."""

    def __init__(self, prog: Prog, state_model, config: Optional[EngineConfig] = None):
        self.prog = prog
        self.sm = state_model
        self.config = config if config is not None else EngineConfig()

    def run(
        self,
        proc: str,
        args: Sequence = (),
        state: object = None,
    ) -> ExecutionResult:
        """Execute ``proc(args)`` from ``state`` (default: initial state)."""
        if state is None:
            state = self.sm.initial_state()
        # Arguments are expressions; evaluate them in the initial state so
        # concrete stores hold values and symbolic stores hold logical
        # expressions.
        from repro.logic.expr import Expr

        evaluated = [
            self.sm.eval_expr(state, a) if isinstance(a, Expr) else a for a in args
        ]
        cfg = make_call_config(self.sm, state, self.prog, proc, evaluated)
        return self.explore([cfg])

    def explore(self, configs: List[Config]) -> ExecutionResult:
        stats = ExecutionStats()
        solver = getattr(self.sm, "solver", None)
        base_queries = solver.stats.queries if solver else 0
        base_hits = solver.stats.cache_hits if solver else 0
        base_prefix = solver.stats.prefix_hits if solver else 0
        base_reuse = solver.stats.model_reuse_hits if solver else 0
        base_time = solver.stats.solve_time if solver else 0.0
        start = time.perf_counter()

        finals: List[Final] = []
        # Worklist of (configuration, steps taken along this path); DFS.
        worklist = [(cfg, 0) for cfg in configs]
        while worklist:
            if stats.commands_executed >= self.config.max_total_steps:
                stats.paths_dropped += len(worklist)
                break
            if stats.paths_finished + len(worklist) > self.config.max_paths:
                # Over the path cap: drop the excess branches and count them
                # (sound per relaxed composition, paper §3.1).
                excess = min(
                    stats.paths_finished + len(worklist) - self.config.max_paths,
                    len(worklist),
                )
                del worklist[:excess]
                stats.paths_dropped += excess
                if not worklist:
                    break
            cfg, depth = worklist.pop()
            if depth >= self.config.max_steps_per_path:
                stats.paths_dropped += 1
                continue
            successors, finished = step(self.prog, self.sm, cfg)
            stats.commands_executed += 1
            for fin in finished:
                if fin.kind is OutcomeKind.VANISH:
                    stats.paths_vanished += 1
                else:
                    stats.paths_finished += 1
                    finals.append(fin)
            for succ in successors:
                worklist.append((succ, depth + 1))

        stats.wall_time = time.perf_counter() - start
        if solver:
            stats.solver_queries = solver.stats.queries - base_queries
            stats.solver_cache_hits = solver.stats.cache_hits - base_hits
            stats.solver_prefix_hits = solver.stats.prefix_hits - base_prefix
            stats.solver_model_reuse = (
                solver.stats.model_reuse_hits - base_reuse
            )
            stats.solver_time = solver.stats.solve_time - base_time
        return ExecutionResult(finals, stats)
