"""Concolic (DART-style) execution — the paper's §6 extension, running.

Gillian's conclusions propose concolic execution as a natural extension
of the platform.  This example runs the classic DART motivating program
through `repro.engine.concolic`: start from arbitrary inputs, execute
concretely, collect the path condition from a shadow symbolic run, flip
branch conditions, solve, repeat — until the deep bug behind
``x == 2*y && x - y > 10`` falls out, with a concrete witness.

Run:  python examples/concolic_dart.py
"""

from repro import ConcolicTester, WhileLanguage

PROGRAM = """
proc main() {
  x := symb_int();
  y := symb_int();
  if (x = 2 * y) {
    if (10 < x - y) {
      assert(false);    // needs x = 2y and x - y > 10 simultaneously
    }
  }
  return 0;
}
"""


def main() -> None:
    language = WhileLanguage()
    prog = language.compile(PROGRAM)
    report = ConcolicTester(language).run(prog, "main")

    print("== DART-style concolic run ==")
    print(f"iterations (concrete runs): {report.iterations}")
    print(f"distinct paths covered:     {report.paths_explored}")
    print("input vectors tried:")
    for vector in report.input_vectors:
        print(f"  {vector or '{} (defaults)'}")
    assert report.found_bug
    bug = report.bugs[0]
    print()
    print(f"bug reached concretely: {bug.value!r}")
    print(f"witness inputs: {bug.inputs}")
    x, y = bug.inputs["val_0_0"], bug.inputs["val_1_0"]
    assert x == 2 * y and x - y > 10
    print(f"check: {x} == 2*{y} and {x}-{y} > 10  ✓")


if __name__ == "__main__":
    main()
