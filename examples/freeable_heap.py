"""Composing a new memory model from combinators (arXiv 2508.15576).

The paper's pitch is that Gillian is *parametric* on the memory model;
the follow-up combinator work sharpens it: real memory models are
compositions of a small algebra of reusable parts.  This example shows
the payoff.  The stock While memory silently recycles disposed
locations — ``dispose`` removes the cells, so a later lookup reports a
generic ``missing-property``.  Composing three combinators::

    rename(Freeable(PropTable(...), create_on_absent={"setProp"}),
           {"lookup": "getProp", "mutate": "setProp"})

yields a *freeable* While heap (``repro.targets.while_lang.heap``, under
100 lines including the language wiring) where touching a disposed
object is a distinguishable ``use-after-dispose`` error — the same bug
class Gillian-JS and Gillian-C report — with zero new branching code.

Run:  python examples/freeable_heap.py
"""

from repro import SymbolicTester
from repro.targets.while_lang import WhileLanguage
from repro.targets.while_lang.heap import WhileHeapLanguage

USE_AFTER_DISPOSE = """
proc main() {
  o := { balance: 100 };
  n := symb_int();
  assume(0 <= n and n <= 1);
  if (n = 1) { dispose(o); }
  // Bug: the object may already be disposed here.
  x := o.balance;
  return x;
}
"""


def run(language, title: str) -> None:
    """Symbolically test the racy dispose program under ``language``."""
    print(f"== {title} ==")
    result = SymbolicTester(language).run_source(USE_AFTER_DISPOSE, "main")
    print(f"verdict: {result.verdict}")
    for bug in result.bugs:
        print(f"error value: {bug.value!r}")
        print(f"counter-model ε: {bug.model}")
        print(f"confirmed by concrete replay: {bug.confirmed}")
    print()


def main() -> None:
    """Run the same program over the stock and the freeable While heap."""
    # The stock While memory finds the bug but mislabels it: the cells
    # are simply gone, so the error is a generic missing-property.
    run(WhileLanguage(), "stock While memory")
    # The combinator-built heap keeps a tombstone for disposed objects,
    # so the same program reports the actual bug class.
    run(WhileHeapLanguage(), "freeable heap (combinators)")


if __name__ == "__main__":
    main()
