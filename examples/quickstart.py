"""Quickstart: symbolic testing with Gillian (paper §1, §2).

Instantiates the platform for the While language (the paper's running
example), writes a symbolic unit test in the style of Rosette/KLEE, and
runs it: the engine explores every path up to a bound and reports either
a bounded-verification guarantee or a bug with a *true counter-model*
(paper §1), which is then replayed concretely to confirm it.

Run:  python examples/quickstart.py
"""

from repro import SymbolicTester, WhileLanguage

VERIFIED = """
proc clamp(x, lo, hi) {
  if (x < lo) { return lo; }
  if (hi < x) { return hi; }
  return x;
}

proc main() {
  x := symb_number();
  c := clamp(x, 0, 10);
  assert(0 <= c and c <= 10);
  assert(c = x or c = 0 or c = 10);
  return c;
}
"""

BUGGY = """
proc main() {
  n := symb_int();
  assume(0 <= n and n <= 100);
  // Claims n² stays under 10 000 — fails at the boundary n = 100.
  assert(n * n < 10000);
  return n;
}
"""


def main() -> None:
    tester = SymbolicTester(WhileLanguage())

    print("== bounded verification ==")
    result = tester.run_source(VERIFIED, "main")
    print(f"verdict: {result.verdict}")
    print(f"paths explored: {result.paths}")
    print(f"GIL commands executed: {result.stats.commands_executed}")
    assert result.passed

    print()
    print("== bug finding with counter-models ==")
    result = tester.run_source(BUGGY, "main")
    print(f"verdict: {result.verdict}")
    for bug in result.bugs:
        print(f"violation: {bug.value!r}")
        print(f"counter-model ε: {bug.model}")
        print(f"confirmed by concrete replay: {bug.confirmed}")
    assert not result.passed
    assert all(bug.confirmed for bug in result.bugs)


if __name__ == "__main__":
    main()
