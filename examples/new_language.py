"""Instantiating Gillian to a brand-new language (paper §1, §4.3).

The platform's pitch: "to instantiate Gillian to a given TL, the tool
developer needs to (1) implement the concrete and symbolic memory models
of the TL in terms of its actions, and (2) provide a trusted compiler
from the TL to GIL".  This example does exactly that for a tiny
*counter language* whose memory is a bag of monotone counters with
actions ``new``, ``incr``, and ``read`` — about 80 lines for both memory
models — and gets path-exploring symbolic testing with counter-models
for free from the platform.

Run:  python examples/new_language.py
"""

from typing import List

from repro.engine.explorer import Explorer
from repro.gil.syntax import ActionCall, Assignment, Fail, IfGoto, ISym, Proc, Prog, Return, USym, Vanish
from repro.gil.values import GilType, Symbol
from repro.logic.expr import Expr, Lit, PVar, lst
from repro.logic.simplify import simplify
from repro.state.interface import (
    ConcreteMemoryModel,
    MemErr,
    MemOk,
    SymbolicMemoryModel,
    SymMemErr,
    SymMemOk,
)
from repro.state.symbolic import SymbolicStateModel
from repro.logic.solver import Solver


# -- step 1: the concrete memory model ------------------------------------------


class CounterMemory(ConcreteMemoryModel):
    """µ : U ⇀ N — named counters; decrementing below zero is an error."""

    @property
    def actions(self):
        return frozenset({"new", "incr", "read"})

    def initial(self):
        return ()

    def execute(self, action, memory, value):
        counters = dict(memory)
        if action == "new":
            (name,) = value
            counters[name] = 0
            return [MemOk(tuple(sorted(counters.items(), key=repr)), name)]
        if action == "incr":
            name, amount = value
            if name not in counters:
                return [MemErr(("unknown-counter", name))]
            if counters[name] + amount < 0:
                return [MemErr(("counter-underflow", name))]
            counters[name] += amount
            return [MemOk(tuple(sorted(counters.items(), key=repr)), counters[name])]
        if action == "read":
            (name,) = value
            if name not in counters:
                return [MemErr(("unknown-counter", name))]
            return [MemOk(memory, counters[name])]
        raise ValueError(action)


# -- step 2: the symbolic memory model -------------------------------------------


class SymCounterMemory(SymbolicMemoryModel):
    """µ̂ : U ⇀ Ê — counter values are logical expressions.

    ``incr`` branches on whether the (symbolic) increment would underflow,
    learning the branch condition — the Fig. 3 recipe, for a new model.
    """

    @property
    def actions(self):
        return frozenset({"new", "incr", "read"})

    def initial(self):
        return ()

    def execute(self, action, memory, expr, pc, solver):
        # The argument list may arrive fully simplified (a literal tuple).
        if isinstance(expr, Lit):
            args: List[Expr] = [Lit(v) for v in expr.value]
        else:
            args = list(expr.items)
        counters = dict(memory)
        name_expr = simplify(args[0])
        name = name_expr.value if isinstance(name_expr, Lit) else None
        if action == "new":
            counters[name] = Lit(0)
            return [SymMemOk(tuple(counters.items()), name_expr)]
        if name not in counters:
            return [SymMemErr(lst("unknown-counter", name_expr))]
        if action == "read":
            return [SymMemOk(memory, counters[name])]
        if action == "incr":
            amount = args[1]
            updated = simplify(counters[name] + amount)
            ok_cond = simplify(Lit(0).leq(updated))
            underflow_cond = simplify(updated.lt(Lit(0)))
            branches = []
            if solver.is_sat(pc.conjoin(ok_cond)):
                counters[name] = updated
                branches.append(
                    SymMemOk(tuple(counters.items()), updated, (ok_cond,))
                )
            if solver.is_sat(pc.conjoin(underflow_cond)):
                branches.append(
                    SymMemErr(lst("counter-underflow", name_expr), (underflow_cond,))
                )
            return branches
        raise ValueError(action)


# -- step 3: a (trivially trusted) "compiler": build GIL directly -----------------


def bank_program() -> Prog:
    """A counter-language program, compiled to GIL by hand.

    balance := new counter; deposit symbolic d ≥ 0; withdraw symbolic w;
    the withdraw must not underflow — unless the program checks first.
    """
    body = (
        USym("acct", 0),
        ActionCall("_", "new", lst(PVar("acct"))),
        ISym("d", 0),
        IfGoto(PVar("d").typeof().eq(Lit(GilType.NUMBER)).and_(Lit(0).leq(PVar("d"))), 5),
        Vanish(),
        ActionCall("_", "incr", lst(PVar("acct"), PVar("d"))),
        ISym("w", 0),
        IfGoto(PVar("w").typeof().eq(Lit(GilType.NUMBER)).and_(Lit(0).leq(PVar("w"))), 9),
        Vanish(),
        # Withdraw without checking the balance: underflow reachable.
        ActionCall("_", "incr", lst(PVar("acct"), -PVar("w"))),
        ActionCall("bal", "read", lst(PVar("acct"))),
        IfGoto(Lit(0).leq(PVar("bal")), 13),
        Fail(lst("negative-balance", PVar("bal"))),
        Return(PVar("bal")),
    )
    prog = Prog()
    prog.add(Proc("main", (), body))
    from repro.gil.syntax import allocate_sites

    return allocate_sites(prog)


def main() -> None:
    solver = Solver()
    sm = SymbolicStateModel(SymCounterMemory(), solver=solver)
    explorer = Explorer(bank_program(), sm)
    result = explorer.run("main")

    print("== symbolic execution of the counter-language bank ==")
    print(f"paths finished: {result.stats.paths_finished}")
    for final in result.finals:
        print(f"  {final.kind.name}: {final.value!r}")
        if final.kind.name == "ERROR":
            model = solver.get_model(final.state.pc.conjuncts)
            print(f"    counter-model ε: {model}")
            assert model is not None
            # The solver found a deposit/withdrawal pair that underflows.
    errors = [f for f in result.finals if f.kind.name == "ERROR"]
    assert errors, "the underflow must be reachable"
    print()
    print("A new Gillian instantiation in ~80 lines of memory model.")


if __name__ == "__main__":
    main()
