"""Gillian-C in action: the five §4.2 findings (paper §4.2).

Reproduces the paper's Collections-C evaluation outcome: the symbolic
suites reveal a buffer overflow (off-by-one), undefined-behaviour pointer
comparisons, a test-suite bug (comparing freed pointers), ring-buffer
over-allocation, and a string-hashing defect — each reported with a
concrete counter-model where one exists.

Run:  python examples/bug_hunt_c.py
"""

from repro import MiniCLanguage, SymbolicTester
from repro.targets.c_like.collections import suites

FINDINGS = [
    ("array", "test_array_add_triggers_expand",
     "1. buffer overflow in dynamic arrays (off-by-one index)"),
    ("slist", "test_slist_node_before_lookup",
     "2. undefined behaviour: pointer comparison across blocks"),
    ("array", "test_array_compare_freed_pointers",
     "3. concrete-test-suite bug: comparing freed pointers"),
    ("rbuf", "test_rbuf_allocation_is_exact",
     "4. over-allocation in the ring buffer (behaviour correct)"),
    ("hash", "test_hash_distinguishes_strings",
     "5. string hashing bug (performance loss)"),
]


def main() -> None:
    language = MiniCLanguage()
    tester = SymbolicTester(language)
    print("== the five Collections-C findings (paper §4.2) ==")
    for suite_name, test_name, description in FINDINGS:
        source, _ = suites.suite(suite_name)
        prog = language.compile(source)
        result = tester.run_test(prog, test_name)
        assert not result.passed, f"finding not detected: {description}"
        bug = result.bugs[0]
        print()
        print(description)
        print(f"  error value: {bug.value!r}")
        print(f"  confirmed by concrete replay: {bug.confirmed}")

    print()
    print("== symbolic overflow with a synthesised index ==")
    source = """
    void main() {
      int *a = (int *) malloc(3 * sizeof(int));
      int i = symb_int();
      assume(0 <= i && i <= 3);
      a[i] = 1;   // i == 3 is one past the end
      free(a);
    }
    """
    result = tester.run_source(source, "main")
    for bug in result.bugs:
        print(f"  overflow at: {bug.value!r}")
        print(f"  counter-model ε: {bug.model}  confirmed: {bug.confirmed}")
    assert any(b.confirmed for b in result.bugs)


if __name__ == "__main__":
    main()
