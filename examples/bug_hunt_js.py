"""Gillian-JS in action: hunting the known Buckets.js bugs (paper §4.1).

Runs the Buckets-style MiniJS library's symbolic suites and reports the
two known bugs the paper's evaluation re-detects, with their
counter-models.  Also demonstrates a dynamic-property-key exploit search:
the engine finds the *string* key that collides with an internal
property.

Run:  python examples/bug_hunt_js.py
"""

from repro import MiniJSLanguage, SymbolicTester
from repro.targets.js_like.buckets import suites


def hunt_known_bugs() -> None:
    language = MiniJSLanguage()
    tester = SymbolicTester(language)
    print("== running the Buckets-style suites (Table 1 rows) ==")
    found = []
    for name in suites.suite_names():
        source, tests = suites.suite(name)
        prog = language.compile(source)
        for test in tests:
            result = tester.run_test(prog, test)
            status = "ok" if result.passed else result.verdict.upper()
            if not result.passed:
                found.append((name, test, result))
            print(f"  [{name}] {test}: {status}")
    print()
    print(f"bugs detected: {len(found)} (the paper re-detects exactly 2)")
    for name, test, result in found:
        bug = result.bugs[0]
        print(f"  {name}/{test}: confirmed={bug.confirmed}")


def hunt_key_collision() -> None:
    """The engine synthesises the property name that corrupts the dict."""
    source = """
    function main() {
      var key = symb_string();
      var account = { balance: 100, owner: "alice" };
      // Untrusted key written straight into the object...
      account[key] = 0;
      // ...can clobber the balance.
      assert(account.balance === 100);
    }
    """
    language = MiniJSLanguage()
    result = SymbolicTester(language).run_source(source, "main")
    print()
    print("== dynamic-property collision search ==")
    print(f"verdict: {result.verdict}")
    for bug in result.bugs:
        key = {k: v for k, v in (bug.model or {}).items()}
        print(f"colliding key found by the solver: {key}")
        assert any(v == "balance" for v in key.values())


if __name__ == "__main__":
    hunt_known_bugs()
    hunt_key_collision()
