#!/usr/bin/env python
"""AST lint: require docstrings on modules and public classes.

Every module under ``src/repro/`` must open with a module docstring, and
every *public* top-level class (name not starting with ``_``) must carry
a class docstring.  The repo's documentation tree (``docs/``) links into
module docstrings as the authoritative per-module reference — a missing
one is a dead link, so this gate keeps coverage at 100%.

Functions and methods are deliberately out of scope *in general*: the
codebase documents behaviour at module/class granularity plus targeted
comments, and a blanket per-function requirement would breed one-line
noise ("Return the value.") rather than documentation.  The exception is
``src/repro/memlib/`` — the combinator library is a public extension
API (every part/spec/engine is meant to be composed by tool developers,
cf. ``examples/freeable_heap.py``), so there every module-level function
and every directly-defined method must carry a docstring too (nested
helper closures stay exempt).  ``src/repro/targets/rust_like/`` and
``src/repro/service/`` are held to the same bar: the former is the
ownership-model reference implementation, the latter is the crash-safe
daemon whose durability contract lives in its docstrings
(``docs/service.md`` links into them).

Usage: ``python tools/check_docstrings.py [paths...]`` (default:
``src/repro``).  Exits non-zero listing each offending ``file:line``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

#: path fragments under which function/method docstrings are required
STRICT_FUNCTION_DIRS = (
    "repro/memlib",
    "repro/targets/rust_like",
    "repro/service",
    "repro/specs",
)


def _is_strict(path: Path) -> bool:
    return any(frag in path.as_posix() for frag in STRICT_FUNCTION_DIRS)


def check_file(path: Path) -> list:
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    problems = []
    if ast.get_docstring(tree) is None:
        problems.append(
            (path, 1, "missing module docstring")
        )
    strict = _is_strict(path)
    funcs = (ast.FunctionDef, ast.AsyncFunctionDef)
    for node in tree.body:
        if strict and isinstance(node, funcs):
            if ast.get_docstring(node) is None:
                problems.append(
                    (
                        path,
                        node.lineno,
                        f"function {node.name!r} is missing a docstring",
                    )
                )
            continue
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name.startswith("_"):
            continue
        if ast.get_docstring(node) is None:
            problems.append(
                (
                    path,
                    node.lineno,
                    f"public class {node.name!r} is missing a docstring",
                )
            )
        if strict:
            for item in node.body:
                if isinstance(item, funcs) and ast.get_docstring(item) is None:
                    problems.append(
                        (
                            path,
                            item.lineno,
                            f"method {node.name}.{item.name} is missing "
                            "a docstring",
                        )
                    )
    return problems


def main(argv: list) -> int:
    roots = [Path(p) for p in argv] or [Path("src/repro")]
    problems = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for f in files:
            problems.extend(check_file(f))
    for path, line, msg in problems:
        print(f"{path}:{line}: {msg}")
    if problems:
        print(f"check_docstrings: {len(problems)} problem(s)")
        return 1
    print("check_docstrings: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
