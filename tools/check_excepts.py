#!/usr/bin/env python
"""AST lint: forbid silent exception swallowing under src/repro/.

Two shapes are rejected:

* a *bare* handler — ``except:`` — which catches everything including
  ``KeyboardInterrupt``/``SystemExit`` and hides the exception type from
  the reader;
* a *silencing* broad handler — ``except Exception:`` (or
  ``BaseException``) whose body is only ``pass``/``...`` — which makes a
  failure invisible.

Broad handlers that *do something* with the exception (report it over a
queue, convert it to a degraded verdict, re-raise) are allowed: the
process-boundary containment in ``engine/parallel.py`` and the replay
crash-conversion in ``soundness/`` are exactly such sites.  The fault
tolerance work in this repo rests on failures being *routed*, never
swallowed — this gate keeps it that way.

Under ``STRICT_ROUTE_DIRS`` (currently ``src/repro/service/``, the
crash-safe daemon) the bar is higher: a broad handler must *route* the
failure — its body must contain a call (quarantine, evict, report) or a
``raise`` — not merely steer control flow with ``continue``/``return``.
A caught-and-dropped exception in the service would silently turn an
at-least-once delivery into an at-most-once one.

Usage: ``python tools/check_excepts.py [paths...]`` (default:
``src/repro``).  Exits non-zero listing each offending ``file:line``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

BROAD = ("Exception", "BaseException")

#: path fragments where broad handlers must contain a call or a raise
STRICT_ROUTE_DIRS = ("repro/service",)


def _is_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if isinstance(t, ast.Name):
        return t.id in BROAD
    if isinstance(t, ast.Tuple):
        return any(isinstance(e, ast.Name) and e.id in BROAD for e in t.elts)
    return False


def _is_silent(handler: ast.ExceptHandler) -> bool:
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in handler.body
    )


def _routes(handler: ast.ExceptHandler) -> bool:
    """True when the handler body acts on the failure: a call or a raise
    anywhere in the body (eviction, quarantine, reporting, re-raise)."""
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.Call, ast.Raise)):
                return True
    return False


def _is_strict(path: Path) -> bool:
    return any(frag in path.as_posix() for frag in STRICT_ROUTE_DIRS)


def check_file(path: Path) -> list:
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    problems = []
    strict = _is_strict(path)
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            problems.append(
                (path, node.lineno, "bare 'except:' — name the exception type")
            )
        elif _is_broad(node) and _is_silent(node):
            problems.append(
                (
                    path,
                    node.lineno,
                    "broad except with an empty body swallows failures — "
                    "report, convert, or re-raise",
                )
            )
        elif strict and _is_broad(node) and not _routes(node):
            problems.append(
                (
                    path,
                    node.lineno,
                    "broad except in the service must route the failure "
                    "(call quarantine/evict/report, or re-raise) — bare "
                    "control flow drops it",
                )
            )
    return problems


def main(argv: list) -> int:
    roots = [Path(p) for p in argv] or [Path("src/repro")]
    problems = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for f in files:
            problems.extend(check_file(f))
    for path, line, msg in problems:
        print(f"{path}:{line}: {msg}")
    if problems:
        print(f"check_excepts: {len(problems)} problem(s)")
        return 1
    print("check_excepts: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
