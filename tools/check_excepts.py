#!/usr/bin/env python
"""AST lint: forbid silent exception swallowing under src/repro/.

Two shapes are rejected:

* a *bare* handler — ``except:`` — which catches everything including
  ``KeyboardInterrupt``/``SystemExit`` and hides the exception type from
  the reader;
* a *silencing* broad handler — ``except Exception:`` (or
  ``BaseException``) whose body is only ``pass``/``...`` — which makes a
  failure invisible.

Broad handlers that *do something* with the exception (report it over a
queue, convert it to a degraded verdict, re-raise) are allowed: the
process-boundary containment in ``engine/parallel.py`` and the replay
crash-conversion in ``soundness/`` are exactly such sites.  The fault
tolerance work in this repo rests on failures being *routed*, never
swallowed — this gate keeps it that way.

Usage: ``python tools/check_excepts.py [paths...]`` (default:
``src/repro``).  Exits non-zero listing each offending ``file:line``.
"""

from __future__ import annotations

import ast
import sys
from pathlib import Path

BROAD = ("Exception", "BaseException")


def _is_broad(handler: ast.ExceptHandler) -> bool:
    t = handler.type
    if isinstance(t, ast.Name):
        return t.id in BROAD
    if isinstance(t, ast.Tuple):
        return any(isinstance(e, ast.Name) and e.id in BROAD for e in t.elts)
    return False


def _is_silent(handler: ast.ExceptHandler) -> bool:
    return all(
        isinstance(stmt, ast.Pass)
        or (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and stmt.value.value is Ellipsis
        )
        for stmt in handler.body
    )


def check_file(path: Path) -> list:
    try:
        tree = ast.parse(path.read_text(), filename=str(path))
    except SyntaxError as exc:
        return [(path, exc.lineno or 0, f"syntax error: {exc.msg}")]
    problems = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            problems.append(
                (path, node.lineno, "bare 'except:' — name the exception type")
            )
        elif _is_broad(node) and _is_silent(node):
            problems.append(
                (
                    path,
                    node.lineno,
                    "broad except with an empty body swallows failures — "
                    "report, convert, or re-raise",
                )
            )
    return problems


def main(argv: list) -> int:
    roots = [Path(p) for p in argv] or [Path("src/repro")]
    problems = []
    for root in roots:
        files = sorted(root.rglob("*.py")) if root.is_dir() else [root]
        for f in files:
            problems.extend(check_file(f))
    for path, line, msg in problems:
        print(f"{path}:{line}: {msg}")
    if problems:
        print(f"check_excepts: {len(problems)} problem(s)")
        return 1
    print("check_excepts: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
