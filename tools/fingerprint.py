#!/usr/bin/env python
"""Canonical differential-fuzz fingerprints for the memory models.

Runs the seeded differential fuzzer's program generator (the exact
generator the test suite uses — imported from
``tests.engine.test_fuzz_differential``) plus the fixed MiniJS/MiniC
corpus through the symbolic engine and writes a *canonical* JSON
fingerprint of everything the memory models determine:

* the multiset of finals (outcome kind + value repr, the same key the
  deterministic shard merge sorts by), and
* every non-timing run statistic — command counts, path tallies, solver
  queries by cache tier, stop reason, and the full incompleteness
  ledger.

Three arms per workload where applicable: sequential, parallel
(``workers=2``, exercising the pickle layer), and seeded fault
injection (worker kills + injected action errors, exercising recovery).

The committed baseline (``tests/fingerprints/baseline.json``) was
generated from the pre-combinator monolithic memory models; the memlib
refactor is mechanically byte-identical to it — ``make
fingerprint-check`` regenerates the fingerprint and compares bytes.
Anything that changes branch ordering, learned conditions, solver-call
sequences, or error values shows up as a diff.

Usage::

    PYTHONPATH=src:. python tools/fingerprint.py --out FILE [--arms while,js,c]
    PYTHONPATH=src:. python tools/fingerprint.py --check FILE [--arms while,js,c]

``--check`` exits non-zero (listing the first differing lines) if the
regenerated fingerprint is not byte-identical to ``FILE``.
"""

from __future__ import annotations

import dataclasses
import json
import os
import sys
from typing import Dict, List

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
for path in (os.path.join(REPO_ROOT, "src"), REPO_ROOT):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.engine.config import EngineConfig
from repro.engine.explorer import Explorer
from repro.engine.parallel import ParallelExplorer
from repro.engine.results import ExecutionResult, final_sort_key
from repro.state.symbolic import SymbolicStateModel
from repro.targets.c_like import MiniCLanguage
from repro.targets.js_like import MiniJSLanguage
from repro.testing.faults import FaultPlan
from repro.testing.io import atomic_write_bytes

#: While-fuzzer seed slices per arm.  Kept moderate so ``make
#: fingerprint-check`` stays a tens-of-seconds gate, but wide enough
#: that every While action (lookup/mutate/dispose), error shape, and
#: branching pattern the generator can produce is pinned.
WHILE_SEQ_SEEDS = tuple(range(20))
WHILE_PAR_SEEDS = tuple(range(0, 20, 4))
WHILE_FAULT_SEEDS = tuple(range(1, 20, 6))

#: fault shapes whose recovery is exact (mirrors the fuzz suite: solver
#: timeouts are excluded because an assumed-SAT branch may add finals)
FAULT_KINDS = ("kill-raise", "kill-exit", "action")

CONFIG = EngineConfig(max_paths=2_000, max_total_steps=50_000)

#: Fixed MiniJS corpus: dynamic property branching, object branching,
#: null errors, bounded loops — the shapes §4.1's model must pin.
JS_CORPUS = {
    "dynamic_props": """
        function main() {
          var o = { a: 1, b: 2 };
          var k = symb_string();
          var v = o[k];
          if (v === undefined) { return 0; }
          return v;
        }""",
    "branching_objects": """
        function main() {
          var flag = symb_bool();
          var o = flag ? { kind: "yes", v: 1 } : { kind: "no", v: 2 };
          return o.v;
        }""",
    "null_error": """
        function main() {
          var b = symb_bool();
          var o = b ? { v: 1 } : null;
          return o.v;
        }""",
    "delete_and_has": """
        function main() {
          var o = { a: 1, b: 2 };
          var k = symb_string();
          delete o[k];
          if (has_prop(o, "a")) { return 1; }
          return 0;
        }""",
    "metadata_dispose": """
        function main() {
          var o = { v: 1 };
          var b = symb_bool();
          if (b) { dispose(o); }
          return o.v;
        }""",
}

#: Fixed MiniC corpus: loads/stores through chunks, overflow and
#: use-after-free branches, memset/memcpy, pointer comparison UB.
C_CORPUS = {
    "heap_struct": """
        struct P { int x; int y; };
        int main() {
          struct P *p = (struct P *) malloc(sizeof(struct P));
          p->x = symb_int();
          assume(0 <= p->x && p->x <= 2);
          p->y = p->x * 2;
          int r = p->y;
          free(p);
          return r;
        }""",
    "overflow_paths": """
        int main() {
          int *a = (int *) malloc(8);
          int i = symb_int();
          assume(0 <= i && i <= 2);
          a[i] = 1;
          int v = a[i];
          free(a);
          return v;
        }""",
    "conditional_free": """
        int main() {
          int *p = (int *) malloc(4);
          *p = 7;
          int b = symb_bool();
          if (b == 1) { free(p); }
          int v = *p;
          return v;
        }""",
    "memset_bytes": """
        int main() {
          char *b = (char *) malloc(4);
          memset(b, symb_int(), 4);
          assume(0 <= b[0] && b[0] <= 255);
          int v = b[2];
          free(b);
          return v;
        }""",
    "cmp_ptr_ub": """
        int main() {
          int *p = (int *) malloc(8);
          int *q = (int *) malloc(8);
          int b = symb_bool();
          if (b == 1) { free(q); }
          if (p < q) { return 1; }
          return 0;
        }""",
}


#: Fixed MiniRust corpus: owner-table branching — conditional moves,
#: drops and borrows, generation bumps, symbolic index overflow — the
#: shapes the ownership discipline must pin.
RUST_CORPUS = {
    "symbolic_index": """
        fn main() -> i64 {
          let a = [10, 20, 30];
          let i = symb_int();
          assume(0 <= i && i <= 3);
          let v = a[i];
          drop(a);
          return v;
        }""",
    "conditional_drop": """
        fn main() -> i64 {
          let b = Box::new(7);
          let flag = symb_bool();
          if flag == 1 { drop(b); }
          let v = *b;
          return v;
        }""",
    "conditional_move": """
        fn take(b: Box) -> i64 {
          return b[0];
        }
        fn main() -> i64 {
          let b = Box::new(5);
          let flag = symb_bool();
          let mut r = 0;
          if flag == 1 { r = take(b); }
          let v = *b;
          return v + r;
        }""",
    "borrow_discipline": """
        fn main() -> i64 {
          let mut a = [0, 0];
          let flag = symb_bool();
          if flag == 1 {
            let m = &mut a;
            m[0] = 1;
            drop(m);
          }
          let r = &a;
          let v = r[0];
          drop(r);
          drop(a);
          return v;
        }""",
    "builder_loop": """
        fn bump(b: Box, by: i64) -> Box {
          b[0] = b[0] + by;
          return b;
        }
        fn main() -> i64 {
          let mut b = Box::new(0);
          let n = symb_int();
          assume(0 <= n && n <= 2);
          let mut i = 0;
          while i < n { b = bump(b, i); i = i + 1; }
          let v = *b;
          drop(b);
          return v;
        }""",
}


def _incompleteness_key(inc) -> List[int]:
    return [
        inc.solver_timeouts,
        inc.unknown_pruned,
        inc.unknown_assumed,
        inc.shards_retried,
        inc.shards_lost,
        inc.frontier_lost,
    ]


def _result_key(result: ExecutionResult) -> Dict:
    """Everything deterministic a run produces: finals + counters."""
    stats = result.stats
    return {
        "finals": [list(final_sort_key(f)) for f in
                   sorted(result.finals, key=final_sort_key)],
        "stats": {
            "commands_executed": stats.commands_executed,
            "fast_lane_steps": stats.fast_lane_steps,
            "paths_finished": stats.paths_finished,
            "paths_vanished": stats.paths_vanished,
            "paths_dropped": stats.paths_dropped,
            "solver_queries": stats.solver_queries,
            "solver_cache_hits": stats.solver_cache_hits,
            "solver_prefix_hits": stats.solver_prefix_hits,
            "solver_model_reuse": stats.solver_model_reuse,
            "stop_reason": stats.stop_reason,
            "incompleteness": _incompleteness_key(stats.incompleteness),
        },
    }


def _sequential(prog, model) -> ExecutionResult:
    return Explorer(prog, model, CONFIG).run("main")


def _parallel(prog, model, config=CONFIG) -> ExecutionResult:
    return ParallelExplorer(
        prog, model, config, workers=2, seed_factor=1
    ).run("main")


def _faulted(prog, model, seed: int) -> ExecutionResult:
    plan = FaultPlan.random(seed, workers=2, max_step=12, kinds=FAULT_KINDS)
    config = dataclasses.replace(
        CONFIG, fault_plan=plan, shard_retry_backoff=0.0
    )
    return _parallel(prog, model, config)


def _while_like_section(language, generate, seq, par, faults) -> Dict:
    """Fingerprint a fuzz-generator-driven language across all arms."""
    section: Dict[str, Dict] = {"sequential": {}, "parallel": {}, "faulted": {}}
    for seed in seq:
        prog = generate(seed)
        section["sequential"][str(seed)] = _result_key(
            _sequential(prog, _model(language))
        )
    for seed in par:
        prog = generate(seed)
        section["parallel"][str(seed)] = _result_key(
            _parallel(prog, _model(language))
        )
    for seed in faults:
        prog = generate(seed)
        section["faulted"][str(seed)] = _result_key(
            _faulted(prog, _model(language), seed)
        )
    return section


def _model(language) -> SymbolicStateModel:
    return SymbolicStateModel(language.symbolic_memory())


def _corpus_section(language, corpus: Dict[str, str], fault_names) -> Dict:
    section: Dict[str, Dict] = {"sequential": {}, "parallel": {}, "faulted": {}}
    for name in sorted(corpus):
        prog = language.compile(corpus[name])
        section["sequential"][name] = _result_key(
            _sequential(prog, _model(language))
        )
        section["parallel"][name] = _result_key(
            _parallel(prog, _model(language))
        )
        if name in fault_names:
            section["faulted"][name] = _result_key(
                _faulted(prog, _model(language), seed=len(name))
            )
    return section


def while_arm() -> Dict:
    """The While memory, driven by the seeded differential fuzzer."""
    from repro.targets.while_lang import WhileLanguage
    from tests.engine.test_fuzz_differential import generate_program

    return _while_like_section(
        WhileLanguage(), generate_program,
        WHILE_SEQ_SEEDS, WHILE_PAR_SEEDS, WHILE_FAULT_SEEDS,
    )


def js_arm() -> Dict:
    """The MiniJS memory over the fixed corpus."""
    return _corpus_section(
        MiniJSLanguage(), JS_CORPUS, fault_names={"dynamic_props", "null_error"}
    )


def c_arm() -> Dict:
    """The MiniC memory over the fixed corpus."""
    return _corpus_section(
        MiniCLanguage(), C_CORPUS, fault_names={"overflow_paths", "conditional_free"}
    )


def heap_arm() -> Dict:
    """The combinator-built freeable While-heap (the fourth memory),
    driven by the same seeded fuzzer programs as the While arm."""
    from repro.targets.while_lang.heap import WhileHeapLanguage
    from tests.engine.test_fuzz_differential import generate_program

    return _while_like_section(
        WhileHeapLanguage(), generate_program,
        WHILE_SEQ_SEEDS, WHILE_PAR_SEEDS, WHILE_FAULT_SEEDS,
    )


def rust_arm() -> Dict:
    """The MiniRust owner-table × heap memory over the fixed corpus."""
    from repro.targets.rust_like import MiniRustLanguage

    return _corpus_section(
        MiniRustLanguage(),
        RUST_CORPUS,
        fault_names={"symbolic_index", "conditional_drop"},
    )


ARMS = {
    "while": while_arm, "js": js_arm, "c": c_arm, "heap": heap_arm,
    "rust": rust_arm,
}


def fingerprint(arms) -> bytes:
    """The canonical fingerprint bytes for the requested arms."""
    payload = {"arms": {name: ARMS[name]() for name in arms}}
    text = json.dumps(payload, indent=1, sort_keys=True)
    return (text + "\n").encode("utf-8")


def main(argv: List[str]) -> int:
    out = check = None
    arms = ["while", "js", "c"]
    it = iter(argv)
    for arg in it:
        if arg == "--out":
            out = next(it)
        elif arg == "--check":
            check = next(it)
        elif arg == "--arms":
            arms = [a for a in next(it).split(",") if a]
        else:
            print(f"fingerprint: unknown argument {arg!r}", file=sys.stderr)
            return 2
    unknown = [a for a in arms if a not in ARMS]
    if unknown or not (out or check):
        print(
            f"usage: fingerprint.py (--out FILE | --check FILE) "
            f"[--arms {','.join(ARMS)}]",
            file=sys.stderr,
        )
        return 2
    data = fingerprint(arms)
    if out:
        atomic_write_bytes(out, data)
        print(f"fingerprint: wrote {out} ({len(data)} bytes, arms={arms})")
        return 0
    with open(check, "rb") as fh:
        expected = fh.read()
    if data == expected:
        print(f"fingerprint: ok — byte-identical to {check} (arms={arms})")
        return 0
    got_lines = data.decode("utf-8").splitlines()
    want_lines = expected.decode("utf-8").splitlines()
    shown = 0
    for i in range(max(len(got_lines), len(want_lines))):
        g = got_lines[i] if i < len(got_lines) else "<eof>"
        w = want_lines[i] if i < len(want_lines) else "<eof>"
        if g != w:
            print(f"line {i + 1}:\n  baseline: {w}\n  current:  {g}")
            shown += 1
            if shown >= 10:
                break
    print(f"fingerprint: MISMATCH against {check} (arms={arms})")
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
