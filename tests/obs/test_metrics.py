"""Tests for the metrics layer (repro.obs.metrics): instruments,
deterministic merge, and the flush/absorb cross-process round trip."""

import pytest

from repro.engine.events import EventBus, MetricSample
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)


class TestInstruments:
    def test_counter_increments(self):
        c = Counter("x")
        c.inc()
        c.inc(3)
        c.inc(0.5)
        assert c.value == 4.5

    def test_gauge_tracks_value_and_max(self):
        g = Gauge("depth")
        g.set(3)
        g.set(7)
        g.set(2)
        assert g.value == 2
        assert g.max == 7

    def test_histogram_buckets_and_overflow(self):
        h = Histogram("arms", buckets=(1, 2, 4))
        for v in (1, 2, 2, 3, 100):
            h.observe(v)
        assert h.count == 5
        assert h.sum == 108
        assert h.max == 100
        assert h.bucket_items() == [(1, 1), (2, 2), (4, 1), (float("inf"), 1)]

    def test_default_buckets_are_powers_of_two(self):
        assert DEFAULT_BUCKETS[0] == 1
        assert all(
            b == 2 * a for a, b in zip(DEFAULT_BUCKETS, DEFAULT_BUCKETS[1:])
        )


class TestRegistry:
    def test_create_on_first_use_then_same_instance(self):
        reg = MetricsRegistry()
        c = reg.counter("engine.steps")
        c.inc()
        assert reg.counter("engine.steps") is c
        assert reg.counter("engine.steps").value == 1

    def test_kind_collision_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x")

    def test_registry_is_always_truthy(self):
        # The off-switch is holding None, as with the event bus.
        assert MetricsRegistry()

    def test_as_dict_is_sorted_and_json_ready(self):
        reg = MetricsRegistry()
        reg.counter("b").inc(2)
        reg.counter("a").inc(1)
        reg.gauge("g").set(5)
        reg.histogram("h", buckets=(1, 2)).observe(2)
        snap = reg.as_dict()
        assert list(snap) == ["a", "b", "g", "h"]
        assert snap["g"] == {"max": 5}
        assert snap["h"]["buckets"] == [[2, 1]]


def _worker_registry(steps, depth, arms):
    reg = MetricsRegistry()
    reg.counter("engine.steps").inc(steps)
    reg.gauge("engine.depth").set(depth)
    for a in arms:
        reg.histogram("engine.branch_arms").observe(a)
    return reg


class TestMerge:
    def test_merge_is_order_independent(self):
        shards = [
            _worker_registry(10, 3, [2, 2]),
            _worker_registry(7, 9, [3]),
            _worker_registry(1, 1, []),
        ]
        forward = MetricsRegistry()
        for s in shards:
            forward.merge(s)
        backward = MetricsRegistry()
        for s in reversed(shards):
            backward.merge(s)
        assert forward.as_dict() == backward.as_dict()
        assert forward.counter("engine.steps").value == 18
        assert forward.gauge("engine.depth").max == 9

    def test_merge_rejects_mismatched_buckets(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(1, 2)).observe(1)
        b = MetricsRegistry()
        b.histogram("h", buckets=(1, 2, 4)).observe(1)
        with pytest.raises(ValueError):
            a.merge(b)


class TestFlushAbsorb:
    def collect_samples(self, reg):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=(MetricSample,))
        emitted = reg.flush(bus)
        assert emitted == len(seen)
        return seen

    def test_flush_to_missing_or_idle_bus_is_a_noop(self):
        reg = _worker_registry(5, 2, [2])
        assert reg.flush(None) == 0
        assert reg.flush(EventBus()) == 0  # falsy: no subscribers

    def test_round_trip_preserves_everything(self):
        source = _worker_registry(5, 4, [2, 3, 100])
        sink = MetricsRegistry()
        for sample in self.collect_samples(source):
            sink.absorb_sample(sample)
        assert sink.as_dict() == source.as_dict()

    def test_absorption_is_additive_for_counters_max_for_gauges(self):
        sink = MetricsRegistry()
        for source in (_worker_registry(5, 4, []), _worker_registry(3, 9, [])):
            for sample in self.collect_samples(source):
                sink.absorb_sample(sample)
        assert sink.counter("engine.steps").value == 8
        assert sink.gauge("engine.depth").max == 9

    def test_absorb_rejects_unknown_kind_and_bucket(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.absorb_sample(MetricSample("x", "timer", 1.0))
        reg.histogram("h", buckets=(1, 2))
        with pytest.raises(ValueError):
            reg.absorb_sample(
                MetricSample("h", "histogram", 1, (("le", "7"),))
            )
