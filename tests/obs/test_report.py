"""Tests for trace analysis and the report CLI (repro.obs.report),
plus the JSONL reader it is built on (repro.testing.trace.read_trace)."""

import io
import json

import pytest

from repro.engine.events import (
    BranchEvent,
    MetricSample,
    PathEndEvent,
    ShardRetryEvent,
    SolverQueryEvent,
    SolverUnknownEvent,
    SpanEnd,
    StepEvent,
    WorkerEvent,
    event_payload,
)
from repro.obs.report import TraceReport, analyse_trace, main
from repro.testing.trace import read_trace


def sample_events():
    return [
        SpanEnd("compile", 0.01, 0),
        StepEvent("main", 0, 1, 2, 0),
        BranchEvent("main", 0, 1, 2),
        WorkerEvent(0, StepEvent("main", 1, 2, 1, 0)),
        WorkerEvent(1, StepEvent("main", 1, 3, 1, 0)),
        SolverQueryEvent("SAT", 2, False, 0.25),
        SolverQueryEvent("SAT", 2, True, 0.0),
        SolverQueryEvent("UNSAT", 3, False, 0.5),
        SolverUnknownEvent("timeout", 5, True),
        ShardRetryEvent(1, 0, 4, "crash"),
        PathEndEvent("NORMAL", 3, None),
        PathEndEvent("ERROR", 2, None),
        SpanEnd("explore", 1.0, 3),
        MetricSample("engine.steps", "counter", 3),
    ]


def sample_payloads():
    return [event_payload(ev) for ev in sample_events()]


class TestAnalyseTrace:
    def report(self):
        return analyse_trace(sample_payloads())

    def test_totals(self):
        report = self.report()
        assert report.events == len(sample_events())
        assert report.totals["steps"] == 3
        assert report.totals["branches"] == 1
        assert report.totals["paths.normal"] == 1
        assert report.totals["paths.error"] == 1

    def test_solver_breakdown_by_kind_and_tier(self):
        solver = self.report().solver
        assert solver[("SAT", "solved")] == {"count": 1, "time": 0.25}
        assert solver[("SAT", "cache-hit")] == {"count": 1, "time": 0.0}
        assert solver[("UNSAT", "solved")] == {"count": 1, "time": 0.5}

    def test_branch_histogram(self):
        assert self.report().branch_hist == {2: 1}

    def test_spans_aggregate_by_name(self):
        spans = self.report().spans
        assert spans["compile"]["count"] == 1
        assert spans["explore"] == {"wall": 1.0, "steps": 3, "count": 1}

    def test_depth_lanes_split_main_from_workers(self):
        profile = self.report().depth_profile
        assert set(profile) == {"main", "worker-0", "worker-1"}
        # one step per lane: one window of (steps=1, max=depth, mean=depth)
        assert profile["worker-1"] == [(1, 3, 3.0)]

    def test_timeline_preserves_event_order(self):
        timeline = self.report().timeline
        assert [e["event"] for e in timeline] == [
            "SolverUnknownEvent",
            "ShardRetryEvent",
        ]
        assert timeline[0]["seq"] < timeline[1]["seq"]

    def test_flushed_metrics_are_absorbed(self):
        assert self.report().metrics.as_dict() == {"engine.steps": 3}

    def test_foreign_payloads_only_count_as_events(self):
        report = analyse_trace([{"event": "SomethingElse"}, {}])
        assert report.events == 2
        assert report.totals == {}


class TestRendering:
    def test_markdown_has_the_required_sections(self):
        md = analyse_trace(sample_payloads()).to_markdown()
        for section in (
            "# Trace report",
            "## Run totals",
            "## Phase spans",
            "## Solver time by query kind and cache tier",
            "## Branch fan-out histogram",
            "## Frontier depth over time",
            "## Degradation and fault timeline",
            "## Flushed metrics",
        ):
            assert section in md, section
        assert "| SAT | cache-hit | 1 | 0.0000 |" in md

    def test_empty_trace_still_renders_required_sections(self):
        md = TraceReport().to_markdown()
        assert "## Solver time by query kind and cache tier" in md
        assert "## Branch fan-out histogram" in md
        assert "(clean run: no degradations or faults)" in md

    def test_json_round_trips(self):
        report = analyse_trace(sample_payloads())
        data = json.loads(report.to_json())
        assert data["totals"]["steps"] == 3
        assert data["solver"]["SAT/cache-hit"]["count"] == 1
        assert data["branch_histogram"] == {"2": 1}


class TestReadTrace:
    def test_reads_payloads_and_skips_blanks(self):
        stream = io.StringIO('{"event": "StepEvent"}\n\n{"event": "SpanEnd"}\n')
        assert [p["event"] for p in read_trace(stream)] == [
            "StepEvent",
            "SpanEnd",
        ]

    def test_bad_json_reports_the_line_number(self):
        stream = io.StringIO('{"event": "StepEvent"}\nnot json\n')
        with pytest.raises(ValueError, match="line 2"):
            list(read_trace(stream))

    def test_non_object_lines_are_rejected(self):
        with pytest.raises(ValueError):
            list(read_trace(io.StringIO("[1, 2]\n")))


class TestCli:
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w") as fh:
            for payload in sample_payloads():
                fh.write(json.dumps(payload) + "\n")
        return str(path)

    def test_markdown_to_stdout(self, tmp_path, capsys):
        assert main([self.trace_file(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "## Solver time by query kind and cache tier" in out

    def test_json_to_output_file(self, tmp_path):
        out = tmp_path / "report.json"
        code = main(
            [self.trace_file(tmp_path), "--format", "json", "-o", str(out)]
        )
        assert code == 0
        assert json.loads(out.read_text())["totals"]["steps"] == 3

    def test_missing_trace_is_a_clean_error(self, tmp_path, capsys):
        assert main([str(tmp_path / "nope.jsonl")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_corrupt_trace_is_a_clean_error(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main([str(path)]) == 1
        assert "line 1" in capsys.readouterr().err
