"""Tests for phase profiling spans (repro.obs.profile)."""

from repro.engine.events import EventBus, SpanEnd
from repro.logic.expr import Lit, LVar
from repro.logic.pathcond import PathCondition
from repro.logic.solver import Solver
from repro.obs.profile import SOLVER_PHASES, PhaseProfiler, Span, solver_phase_spans


def spans_on(bus, seen=None):
    seen = [] if seen is None else seen
    bus.subscribe(seen.append, kinds=(SpanEnd,))
    return seen


class TestSpan:
    def test_span_emits_on_end(self):
        bus = EventBus()
        seen = spans_on(bus)
        span = Span("compile", bus)
        span.add(3)
        span.add()
        event = span.end()
        assert seen == [event]
        assert event.name == "compile"
        assert event.steps == 4
        assert event.wall >= 0.0

    def test_end_is_idempotent(self):
        bus = EventBus()
        seen = spans_on(bus)
        span = Span("x", bus)
        span.end()
        span.end()
        assert len(seen) == 1

    def test_context_manager_ends_the_span(self):
        bus = EventBus()
        seen = spans_on(bus)
        with PhaseProfiler(bus).span("setup") as span:
            span.add(2)
        assert len(seen) == 1 and seen[0].steps == 2

    def test_no_bus_measures_without_emitting(self):
        span = Span("quiet", None)
        event = span.end()
        assert event.name == "quiet"


class TestSolverPhaseSpans:
    def branchy_solver(self):
        solver = Solver(profile_phases=True)
        x = LVar("x")
        pc = (
            PathCondition.true()
            .conjoin(Lit(0).lt(x))
            .conjoin(x.lt(Lit(10)))
        )
        solver.check(pc)
        return solver

    def test_profiled_solver_accrues_phase_times(self):
        solver = self.branchy_solver()
        accrued = [
            getattr(solver.stats, attr) for _, attr in SOLVER_PHASES
        ]
        assert any(t > 0 for t in accrued)

    def test_spans_cover_nonzero_phases_only(self):
        solver = self.branchy_solver()
        bus = EventBus()
        seen = spans_on(bus)
        events = solver_phase_spans(solver, bus)
        assert events == seen
        names = {e.name for e in events}
        assert names  # at least one pipeline phase did work
        assert names <= {name for name, _ in SOLVER_PHASES}
        for event in events:
            assert event.wall > 0

    def test_unprofiled_solver_emits_nothing(self):
        solver = Solver()
        x = LVar("x")
        solver.check(PathCondition.true().conjoin(x.lt(Lit(1))))
        assert solver_phase_spans(solver, EventBus()) == []
