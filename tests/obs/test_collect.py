"""Tests for the bus-driven metrics collector (repro.obs.collect)."""

from repro.engine.events import (
    BranchEvent,
    EventBus,
    MetricSample,
    PathEndEvent,
    ShardLostEvent,
    ShardRetryEvent,
    SolverQueryEvent,
    SolverUnknownEvent,
    SpanEnd,
    StepEvent,
    WorkerEvent,
)
from repro.obs.collect import MetricsCollector
from repro.obs.metrics import MetricsRegistry


def step(depth=1):
    return StepEvent("main", 0, depth, 1, 0)


class TestFold:
    def totals_after(self, *events):
        bus = EventBus()
        with MetricsCollector(bus) as collector:
            for ev in events:
                bus.emit(ev)
        return collector.registry.as_dict()

    def test_steps_and_depth(self):
        totals = self.totals_after(step(1), step(5), step(2))
        assert totals["engine.steps"] == 3
        assert totals["engine.depth"] == {"max": 5}

    def test_branches_feed_the_arm_histogram(self):
        totals = self.totals_after(
            BranchEvent("main", 0, 1, 2), BranchEvent("main", 1, 2, 3)
        )
        assert totals["engine.branches"] == 2
        assert totals["engine.branch_arms"]["count"] == 2
        assert totals["engine.branch_arms"]["sum"] == 5

    def test_path_ends_count_per_kind(self):
        totals = self.totals_after(
            PathEndEvent("NORMAL", 4, None),
            PathEndEvent("NORMAL", 6, None),
            PathEndEvent("ERROR", 2, None),
        )
        assert totals["engine.paths.normal"] == 2
        assert totals["engine.paths.error"] == 1
        assert totals["engine.path_depth"]["count"] == 3

    def test_solver_queries_split_by_result_and_tier(self):
        totals = self.totals_after(
            SolverQueryEvent("SAT", 3, False, 0.25),
            SolverQueryEvent("SAT", 3, True, 0.0),
            SolverQueryEvent("UNSAT", 2, False, 0.5),
            SolverUnknownEvent("timeout", 9, True),
        )
        assert totals["solver.queries"] == 3
        assert totals["solver.queries.sat"] == 2
        assert totals["solver.queries.unsat"] == 1
        assert totals["solver.cache_hits"] == 1
        assert totals["solver.time"] == 0.75
        assert totals["solver.unknown.timeout"] == 1

    def test_shard_faults_and_spans(self):
        totals = self.totals_after(
            ShardRetryEvent(0, 0, 4, "boom"),
            ShardLostEvent(1, 2, 3),
            SpanEnd("explore", 1.5, 100),
        )
        assert totals["shards.retried"] == 1
        assert totals["shards.lost"] == 1
        assert totals["phase.explore.seconds"] == 1.5
        assert totals["phase.explore.steps"] == 100

    def test_worker_envelopes_are_unwrapped(self):
        totals = self.totals_after(
            WorkerEvent(0, step()), WorkerEvent(1, WorkerEvent(0, step()))
        )
        assert totals["engine.steps"] == 2

    def test_metric_samples_are_absorbed(self):
        totals = self.totals_after(
            MetricSample("engine.steps", "counter", 7),
            WorkerEvent(2, MetricSample("engine.steps", "counter", 5)),
        )
        assert totals["engine.steps"] == 12

    def test_unknown_events_are_ignored(self):
        totals = self.totals_after(object())
        assert totals == {}


class TestLifecycle:
    def test_close_restores_the_bus_idle_contract(self):
        bus = EventBus()
        collector = MetricsCollector(bus)
        assert bus  # truthy while subscribed: emitters will construct events
        collector.close()
        assert not bus
        bus.emit(step())  # no subscriber: nothing recorded
        assert collector.registry.as_dict() == {}

    def test_shared_registry_aggregates_runs(self):
        registry = MetricsRegistry()
        for _ in range(2):
            bus = EventBus()
            with MetricsCollector(bus, registry=registry):
                bus.emit(step())
        assert registry.counter("engine.steps").value == 2

    def test_attach_returns_self_for_chaining(self):
        collector = MetricsCollector()
        assert collector.attach(EventBus()) is collector
