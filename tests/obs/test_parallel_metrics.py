"""Worker-count invariance of the observability layer.

The acceptance bar for cross-process aggregation: running the same
program at workers 1/2/4 must produce *identical* totals for every
deterministic metric (steps, branches, path outcomes, solver query
counts, depth/arms histograms).  Wall-clock metrics (``solver.time``,
``phase.*``) are excluded — they measure the host, not the program."""

from repro.engine.config import EngineConfig
from repro.engine.events import EventBus
from repro.engine.explorer import Explorer
from repro.engine.parallel import ParallelExplorer
from repro.gil.syntax import Assignment, Goto, IfGoto, ISym, Proc, Prog, Return
from repro.logic.expr import Lit, PVar
from repro.obs.collect import MetricsCollector
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import WhileSymbolicMemory

#: metric prefixes whose totals must be worker-count invariant
DETERMINISTIC_PREFIXES = (
    "engine.",
    "solver.queries",
    "shards.lost",
)


def branching_prog(levels=3):
    """A bushy binary tree: both arms of every branch keep executing, so
    the frontier genuinely grows to ``2**levels`` live paths and the
    parallel explorer has something to shard."""
    prog = Prog()
    body = (Assignment("acc", Lit(0)),)
    for i in range(levels):
        body += (ISym(f"b{i}", i),)
    for i in range(levels):
        base = 1 + levels + 4 * i
        body += (
            IfGoto(PVar(f"b{i}").lt(Lit(0)), base + 3),
            Assignment("acc", PVar("acc") + Lit(1)),
            Goto(base + 4),
            Assignment("acc", PVar("acc") - Lit(1)),
        )
    body += (Return(PVar("acc")),)
    prog.add(Proc("main", (), body))
    return prog


def deterministic(totals):
    return {
        name: value
        for name, value in totals.items()
        if name.startswith(DETERMINISTIC_PREFIXES)
    }


def metrics_at(workers, levels=3):
    prog = branching_prog(levels)
    model = SymbolicStateModel(WhileSymbolicMemory())
    bus = EventBus()
    with MetricsCollector(bus) as collector:
        if workers == 1:
            Explorer(prog, model, EngineConfig(), events=bus).run("main")
        else:
            # seed_factor=1 stops seeding as soon as the frontier covers
            # the workers, so shards genuinely run (and emit) in
            # subprocesses rather than the program finishing during the
            # seed phase.
            ParallelExplorer(
                prog,
                model,
                EngineConfig(),
                events=bus,
                workers=workers,
                seed_factor=1,
            ).run("main")
    return collector


class TestWorkerCountInvariance:
    def test_deterministic_totals_identical_at_1_2_4_workers(self):
        reference = deterministic(metrics_at(1).registry.as_dict())
        assert reference["engine.steps"] > 0
        assert reference["engine.branches"] > 0
        assert reference["solver.queries"] > 0
        for workers in (2, 4):
            totals = deterministic(metrics_at(workers).registry.as_dict())
            assert totals == reference, f"workers={workers}"

    def test_path_outcomes_match_the_program_shape(self):
        # A full binary tree over 3 symbolic sign tests: 2**3 normal
        # leaves, and the branch histogram records one two-arm split per
        # live comparison (2**levels - 1 interior nodes).
        totals = metrics_at(1).registry.as_dict()
        assert totals["engine.paths.normal"] == 8
        assert totals["engine.branches"] == 7
        assert totals["engine.branch_arms"]["count"] == totals[
            "engine.branches"
        ]


class TestParallelSpans:
    def test_parallel_run_emits_lifecycle_spans(self):
        totals = metrics_at(4).registry.as_dict()
        for phase in ("seed", "shards", "merge"):
            assert f"phase.{phase}.seconds" in totals, phase

    def test_sequential_run_emits_an_explore_span(self):
        totals = metrics_at(1).registry.as_dict()
        assert totals["phase.explore.steps"] == totals["engine.steps"]
