"""Concrete fast lane vs the symbolic evaluator on operator edge cases.

The compiled pipeline's fast lane (:mod:`repro.gil.compile`) executes a
command through the concrete evaluator (:func:`repro.gil.ops.evaluate`)
whenever every program variable it reads holds a literal, skipping
``logic/`` entirely.  That is only sound under a one-directional
contract with the symbolic route (simplify ∘ substitute, what the
interpreter's ``eval_expr`` computes on the same literal store): when
the concrete evaluator *succeeds*, the symbolic route must produce the
same literal with the same runtime type; when it raises ``EvalError``
the fast lane bails and replays through the slow path, so the symbolic
answer ships either way.  The awkward corners exercised:

* division and modulo by zero (a bail, then an error or residual from
  the slow path — never a crash, never a fabricated value);
* exact-integer division results (``10/2`` is ``5``, not ``5.0``);
* short-circuit ``and``/``or`` (a false left arm must hide an erroring
  right arm, matching the simplifier's annihilator rules);
* mixed-type comparisons (number/string orderings error, ``==`` never
  does, booleans are not numbers, ``10 == 10.0`` holds).

Every case is checked twice: at the expression level (``evaluate`` vs
simplified substitution) and end-to-end (a compiled symbolic run whose
store is all literals — so the fast lane fires — against the
tree-walking interpreter, finals compared exactly).
"""

import dataclasses

import pytest

from repro.engine.config import EngineConfig
from repro.engine.explorer import Explorer
from repro.engine.results import final_sort_key
from repro.gil.ops import EvalError, evaluate
from repro.gil.syntax import Assignment, Proc, Prog, Return
from repro.logic.expr import (
    BinOp,
    BinOpExpr,
    Expr,
    Lit,
    PVar,
    substitute_pvars,
)
from repro.logic.simplify import Simplifier
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import WhileSymbolicMemory

COMPILED = EngineConfig()
INTERP = dataclasses.replace(COMPILED, compiled=False)

#: the literal store every case runs under — one binding per type so
#: expressions can read variables instead of folding to constants at
#: compile time (a PVar-free expression never exercises the fast lane's
#: runtime evaluator)
STORE = {
    "n": Lit(10),
    "z": Lit(0),
    "f": Lit(2.5),
    "s": Lit("abc"),
    "t": Lit(True),
    "nil": Lit(False),
}


def _div(a: Expr, b: Expr) -> Expr:
    return BinOpExpr(BinOp.DIV, a, b)


def _mod(a: Expr, b: Expr) -> Expr:
    return BinOpExpr(BinOp.MOD, a, b)


n, z, f, s, t, nil = (PVar(name) for name in ("n", "z", "f", "s", "t", "nil"))

#: (label, expression) — every operator corner the fast lane must match
EDGE_CASES = [
    ("div-by-zero", _div(n, z)),
    ("mod-by-zero", _mod(n, z)),
    ("div-exact-int", _div(n, Lit(2))),
    ("div-inexact", _div(Lit(7), Lit(2)).eq(Lit(3.5))),
    ("div-float", _div(f, Lit(0.5))),
    ("mod-negative", _mod(Lit(-7), Lit(3))),
    ("and-short-circuit-hides-error", nil.and_(_div(n, z).lt(Lit(1)))),
    ("or-short-circuit-hides-error", t.or_(_div(n, z).lt(Lit(1)))),
    ("and-right-error-surfaces", t.and_(_div(n, z).lt(Lit(1)))),
    ("and-non-bool-left", n.and_(t)),
    ("lt-mixed-number-string", n.lt(s)),
    ("lt-string-string", s.lt(Lit("abd"))),
    ("lt-bool-is-not-number", t.lt(Lit(2))),
    ("leq-int-float", n.leq(Lit(10.0))),
    ("eq-mixed-types-is-false", n.eq(s)),
    ("eq-int-float", n.eq(Lit(10.0))),
    ("eq-bool-vs-int", t.eq(Lit(1))),
]


def symbolic_eval(e: Expr):
    """The symbolic route on a literal store: simplify(subst(e))."""
    return Simplifier().simplify(substitute_pvars(e, STORE))


class TestEvaluatorAgreement:
    """Expression level: concrete evaluate vs simplified substitution."""

    @pytest.mark.parametrize(
        "label,expr", EDGE_CASES, ids=[c[0] for c in EDGE_CASES]
    )
    def test_fast_and_symbolic_agree(self, label, expr):
        env = {name: lit.value for name, lit in STORE.items()}
        try:
            concrete = evaluate(expr, pvar_env=env)
        except EvalError:
            concrete = EvalError
        try:
            sym = symbolic_eval(expr)
        except TypeError:
            sym = TypeError
        if concrete is EvalError:
            # The fast lane *bails* on EvalError and replays the command
            # through the slow symbolic path, so a concrete rejection
            # imposes no agreement obligation — the symbolic route may
            # error (TypeError) or keep a residual expression; either
            # way the slow path's answer is the one that ships.
            return
        # A concrete success is the dangerous direction: the fast lane
        # commits to this value without consulting logic/, so the
        # symbolic route must produce the same literal — never an error,
        # never a residual, and with the exact runtime type (Lit
        # equality coerces, Lit(1) == Lit(1.0)).
        assert sym is not TypeError, (
            f"{label}: fast lane returns {concrete!r}, symbolic raises"
        )
        assert sym == Lit(concrete), (
            f"{label}: concrete={concrete!r} symbolic={sym!r}"
        )
        assert type(sym.value) is type(concrete), label


def edge_prog(expr: Expr) -> Prog:
    """``main`` binds the literal store, computes ``expr``, returns it."""
    body = tuple(
        Assignment(name, lit) for name, lit in STORE.items()
    ) + (Assignment("out", expr), Return(PVar("out")))
    prog = Prog()
    prog.add(Proc("main", (), body))
    return prog


def run(prog: Prog, config: EngineConfig):
    return Explorer(
        prog, SymbolicStateModel(WhileSymbolicMemory()), config
    ).run("main")


class TestFastLaneEndToEnd:
    """Whole-program level: compiled (fast lane firing) vs interpreter."""

    @pytest.mark.parametrize(
        "label,expr", EDGE_CASES, ids=[c[0] for c in EDGE_CASES]
    )
    def test_compiled_matches_interpreted(self, label, expr):
        prog = edge_prog(expr)
        compiled = run(prog, COMPILED)
        interp = run(prog, INTERP)
        assert sorted(final_sort_key(x) for x in compiled.finals) == sorted(
            final_sort_key(x) for x in interp.finals
        ), f"{label}: compiled finals differ"
        assert compiled.stats.commands_executed == interp.stats.commands_executed
        assert interp.stats.fast_lane_steps == 0

    def test_fast_lane_actually_fires(self):
        # The store is all literals, so the compiled run must take the
        # fast lane for the assignments feeding it (erroring expressions
        # bail to the slow path, which is the designed behaviour).
        prog = edge_prog(n.leq(Lit(10.0)))
        compiled = run(prog, COMPILED)
        assert compiled.stats.fast_lane_steps > 0
