"""Tests for GIL values and concrete operator semantics."""

import math

import pytest

from repro.gil.ops import EvalError, apply_binop, apply_unop, evaluate
from repro.gil.values import (
    NULL,
    GilType,
    Symbol,
    is_value,
    pp_value,
    type_of,
    values_equal,
)
from repro.logic.expr import BinOp, Lit, LVar, PVar, UnOp, lst


class TestValues:
    def test_type_of_bool_is_not_number(self):
        assert type_of(True) is GilType.BOOLEAN
        assert type_of(1) is GilType.NUMBER

    def test_type_of_all_kinds(self):
        assert type_of(1.5) is GilType.NUMBER
        assert type_of("s") is GilType.STRING
        assert type_of(Symbol("l")) is GilType.SYMBOL
        assert type_of(GilType.NUMBER) is GilType.TYPE
        assert type_of((1, 2)) is GilType.LIST
        assert type_of(NULL) is GilType.NONE

    def test_values_equal_distinguishes_bool_and_number(self):
        assert not values_equal(True, 1)
        assert not values_equal(0, False)

    def test_values_equal_identifies_int_and_float(self):
        assert values_equal(1, 1.0)

    def test_values_equal_lists_recursive(self):
        assert values_equal((1, (2, "a")), (1.0, (2.0, "a")))
        assert not values_equal((1, 2), (1, 2, 3))

    def test_is_value(self):
        assert is_value((1, "a", Symbol("x"), (True,)))
        assert not is_value(object())

    def test_pp_value(self):
        assert pp_value(True) == "true"
        assert pp_value(3.0) == "3"
        assert pp_value((1, 2)) == "[1, 2]"


class TestUnaryOps:
    def test_not(self):
        assert apply_unop(UnOp.NOT, True) is False

    def test_not_requires_bool(self):
        with pytest.raises(EvalError):
            apply_unop(UnOp.NOT, 1)

    def test_neg(self):
        assert apply_unop(UnOp.NEG, 5) == -5

    def test_typeof(self):
        assert apply_unop(UnOp.TYPEOF, "s") is GilType.STRING

    def test_strlen_and_lstlen(self):
        assert apply_unop(UnOp.STRLEN, "abc") == 3
        assert apply_unop(UnOp.LSTLEN, (1, 2)) == 2

    def test_head_tail(self):
        assert apply_unop(UnOp.HEAD, (1, 2, 3)) == 1
        assert apply_unop(UnOp.TAIL, (1, 2, 3)) == (2, 3)

    def test_head_empty_errors(self):
        with pytest.raises(EvalError):
            apply_unop(UnOp.HEAD, ())

    def test_tostring_tonumber_roundtrip(self):
        assert apply_unop(UnOp.TOSTRING, 42) == "42"
        assert apply_unop(UnOp.TONUMBER, "42") == 42

    def test_tonumber_bad_string(self):
        with pytest.raises(EvalError):
            apply_unop(UnOp.TONUMBER, "xyz")

    def test_floor(self):
        assert apply_unop(UnOp.FLOOR, 3.7) == 3


class TestBinaryOps:
    def test_arith(self):
        assert apply_binop(BinOp.ADD, 2, 3) == 5
        assert apply_binop(BinOp.SUB, 2, 3) == -1
        assert apply_binop(BinOp.MUL, 2, 3) == 6

    def test_div_exact_stays_int(self):
        assert apply_binop(BinOp.DIV, 6, 3) == 2
        assert isinstance(apply_binop(BinOp.DIV, 6, 3), int)

    def test_div_by_zero_errors(self):
        with pytest.raises(EvalError):
            apply_binop(BinOp.DIV, 1, 0)

    def test_mod(self):
        assert apply_binop(BinOp.MOD, 7, 3) == 1

    def test_eq_uses_gil_equality(self):
        assert apply_binop(BinOp.EQ, 1, 1.0) is True
        assert apply_binop(BinOp.EQ, True, 1) is False

    def test_comparisons_numbers(self):
        assert apply_binop(BinOp.LT, 1, 2) is True
        assert apply_binop(BinOp.LEQ, 2, 2) is True

    def test_comparisons_strings(self):
        assert apply_binop(BinOp.LT, "a", "b") is True

    def test_comparisons_mixed_types_error(self):
        with pytest.raises(EvalError):
            apply_binop(BinOp.LT, "a", 1)

    def test_string_ops(self):
        assert apply_binop(BinOp.SCONCAT, "ab", "cd") == "abcd"
        assert apply_binop(BinOp.SNTH, "abc", 1) == "b"

    def test_snth_out_of_range(self):
        with pytest.raises(EvalError):
            apply_binop(BinOp.SNTH, "abc", 3)

    def test_list_ops(self):
        assert apply_binop(BinOp.LCONCAT, (1,), (2,)) == (1, 2)
        assert apply_binop(BinOp.LNTH, (1, 2), 1) == 2
        assert apply_binop(BinOp.LCONS, 0, (1,)) == (0, 1)

    def test_lnth_out_of_range(self):
        with pytest.raises(EvalError):
            apply_binop(BinOp.LNTH, (1,), 5)

    def test_min_max(self):
        assert apply_binop(BinOp.MIN, 1, 2) == 1
        assert apply_binop(BinOp.MAX, 1, 2) == 2


class TestEvaluate:
    def test_pvar_lookup(self):
        assert evaluate(PVar("x") + 1, pvar_env={"x": 2}) == 3

    def test_lvar_lookup(self):
        assert evaluate(LVar("x") + 1, lvar_env={"x": 2}) == 3

    def test_unbound_raises(self):
        with pytest.raises(EvalError):
            evaluate(PVar("x"), pvar_env={})

    def test_elist(self):
        assert evaluate(lst(1, PVar("x")), pvar_env={"x": 2}) == (1, 2)

    def test_and_short_circuits(self):
        # Right operand would error, but left is false.
        e = Lit(False).and_(Lit(1).lt(Lit("a")))
        assert evaluate(e) is False

    def test_or_short_circuits(self):
        e = Lit(True).or_(Lit(1).lt(Lit("a")))
        assert evaluate(e) is True
