"""Property tests: value_key must agree with GIL value equality."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gil.values import NULL, GilType, Symbol, value_key, values_equal

_scalars = st.one_of(
    st.integers(-100, 100),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    st.text(max_size=5),
    st.sampled_from([Symbol("a"), Symbol("b"), GilType.NUMBER, NULL]),
)
_values = st.recursive(
    _scalars, lambda inner: st.lists(inner, max_size=3).map(tuple), max_leaves=8
)


@given(v1=_values, v2=_values)
@settings(max_examples=400, deadline=None)
def test_value_key_iff_values_equal(v1, v2):
    assert (value_key(v1) == value_key(v2)) == values_equal(v1, v2)


@given(v=_values)
@settings(max_examples=200, deadline=None)
def test_value_key_reflexive_and_hashable(v):
    key = value_key(v)
    assert key == value_key(v)
    hash(key)  # must be usable in sets/dicts


def test_bool_int_distinction():
    assert value_key(0) != value_key(False)
    assert value_key(1) != value_key(True)


def test_int_float_identified():
    assert value_key(1) == value_key(1.0)
