"""Round-trip tests for the GIL text format (repro.gil.text)."""

import pytest

from repro.gil.syntax import (
    ActionCall,
    Assignment,
    Call,
    Fail,
    Goto,
    IfGoto,
    ISym,
    Proc,
    Prog,
    Return,
    USym,
    Vanish,
)
from repro.gil.text import parse_prog, print_expr, print_prog, print_value
from repro.gil.values import NULL, GilType, Symbol
from repro.logic.expr import BinOp, BinOpExpr, Lit, LVar, PVar, UnOp, UnOpExpr, lst


def roundtrip(prog: Prog) -> None:
    """Print → parse → print must be stable (the format normalises
    negated numeric literals, so textual stability is the invariant)."""
    text = print_prog(prog)
    parsed = parse_prog(text)
    assert print_prog(parsed) == text, text


class TestValues:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (True, "true"),
            (False, "false"),
            (3, "3"),
            (3.0, "3"),
            (3.5, "3.5"),
            ("hi", '"hi"'),
            ('say "x"', '"say \\"x\\""'),
            (Symbol("loc_0_0"), "$loc_0_0"),
            (GilType.NUMBER, "@NUMBER"),
            (NULL, "null"),
            ((1, "a", (True,)), '{{1, "a", {{true}}}}'),
        ],
    )
    def test_print(self, value, expected):
        assert print_value(value) == expected


class TestExprPrinting:
    def test_binary(self):
        assert print_expr(PVar("x") + 1) == "(x + 1)"

    def test_string_ops_identifier_safe(self):
        e = BinOpExpr(BinOp.SCONCAT, Lit("a"), PVar("s"))
        assert print_expr(e) == '("a" s_concat s)'

    def test_lvar(self):
        assert print_expr(LVar("v")) == "#v"

    def test_list_constructor(self):
        assert print_expr(lst(PVar("x"), 1)) == "[x, 1]"


class TestRoundTrip:
    def test_minimal_proc(self):
        prog = Prog()
        prog.add(Proc("main", (), (Return(Lit(0)),)))
        roundtrip(prog)

    def test_all_command_forms(self):
        prog = Prog()
        prog.add(
            Proc(
                "main",
                ("a", "b"),
                (
                    Assignment("x", PVar("a") + PVar("b")),
                    IfGoto(PVar("x").lt(Lit(10)), 4),
                    Goto(5),
                    Vanish(),
                    ActionCall("y", "lookup", lst(PVar("x"), "prop")),
                    Call("r", Lit("helper"), (PVar("x"), Lit(1))),
                    USym("loc", 3),
                    ISym("val", 7),
                    Fail(lst("assertion-failure", PVar("r"))),
                    Return(PVar("r")),
                ),
            )
        )
        prog.add(Proc("helper", ("n", "m"), (Return(PVar("n") * PVar("m")),)))
        roundtrip(prog)

    def test_operator_zoo(self):
        exprs = (
            UnOpExpr(UnOp.NOT, PVar("b")),
            UnOpExpr(UnOp.NEG, PVar("n")),
            UnOpExpr(UnOp.TYPEOF, PVar("v")),
            UnOpExpr(UnOp.STRLEN, Lit("s")),
            UnOpExpr(UnOp.LSTLEN, lst(1, 2)),
            UnOpExpr(UnOp.HEAD, PVar("l")),
            UnOpExpr(UnOp.TAIL, PVar("l")),
            UnOpExpr(UnOp.FLOOR, PVar("n")),
            BinOpExpr(BinOp.SCONCAT, Lit("a"), Lit("b")),
            BinOpExpr(BinOp.SNTH, Lit("abc"), Lit(1)),
            BinOpExpr(BinOp.LCONCAT, PVar("l"), lst(1)),
            BinOpExpr(BinOp.LNTH, PVar("l"), Lit(0)),
            BinOpExpr(BinOp.LCONS, Lit(0), PVar("l")),
            BinOpExpr(BinOp.MIN, PVar("a"), PVar("b")),
            BinOpExpr(BinOp.MAX, PVar("a"), PVar("b")),
            BinOpExpr(BinOp.AND, PVar("p"), PVar("q")),
            BinOpExpr(BinOp.OR, PVar("p"), PVar("q")),
            BinOpExpr(BinOp.MOD, PVar("a"), Lit(3)),
            PVar("x").eq(Lit(Symbol("sym"))),
            PVar("x").leq(Lit(-5)),
        )
        prog = Prog()
        body = tuple(Assignment(f"t{i}", e) for i, e in enumerate(exprs))
        prog.add(Proc("main", ("b", "n", "v", "l", "a", "p", "q", "x"), body + (Return(Lit(0)),)))
        roundtrip(prog)

    def test_negative_literal_in_binary(self):
        prog = Prog()
        prog.add(Proc("main", (), (Assignment("x", Lit(-5) + PVar("x")), Return(PVar("x")))))
        roundtrip(prog)

    def test_compiled_while_program_roundtrips(self):
        from repro.targets.while_lang import WhileLanguage

        prog = WhileLanguage().compile(
            """
            proc main() {
              n := symb_int();
              assume(0 <= n and n <= 3);
              o := { count: n };
              i := 0;
              while (i < n) { i := i + 1; }
              c := o.count;
              assert(c = n);
              return c;
            }"""
        )
        roundtrip(prog)

    def test_compiled_minijs_program_roundtrips(self):
        from repro.targets.js_like import MiniJSLanguage

        prog = MiniJSLanguage().compile(
            """
            function main() {
              var o = { a: 1 };
              var k = symb_string();
              o[k] = "x" + "y";
              return o[k];
            }"""
        )
        roundtrip(prog)

    def test_compiled_minic_program_roundtrips(self):
        from repro.targets.c_like import MiniCLanguage

        prog = MiniCLanguage().compile(
            """
            struct P { int v; };
            int main() {
              struct P *p = (struct P *) malloc(sizeof(struct P));
              p->v = symb_int();
              int r = p->v;
              free(p);
              return r;
            }"""
        )
        roundtrip(prog)

    def test_parsed_program_executes(self):
        from repro.engine.explorer import Explorer
        from repro.state.concrete import ConcreteStateModel
        from repro.targets.while_lang import WhileLanguage
        from repro.targets.while_lang.memory import WhileConcreteMemory

        source_prog = WhileLanguage().compile(
            "proc main() { x := 2 + 3; return x * 2; }"
        )
        reloaded = parse_prog(print_prog(source_prog))
        sm = ConcreteStateModel(WhileConcreteMemory())
        out = Explorer(reloaded, sm).run("main").sole_outcome
        assert out.value == 10
