"""Property-based round-trip for the GIL text format."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gil.syntax import (
    ActionCall,
    Assignment,
    Call,
    Fail,
    Goto,
    IfGoto,
    ISym,
    Proc,
    Prog,
    Return,
    USym,
    Vanish,
)
from repro.gil.text import parse_prog, print_prog
from repro.gil.values import NULL, GilType, Symbol
from repro.logic.expr import BinOp, BinOpExpr, EList, Lit, LVar, PVar, UnOp, UnOpExpr

_values = st.one_of(
    st.integers(-50, 50),
    st.booleans(),
    st.text(alphabet="abc \\\"\n", max_size=4),
    st.sampled_from([Symbol("loc_0_1"), GilType.NUMBER, GilType.LIST, NULL]),
    st.lists(st.integers(-3, 3), max_size=2).map(tuple),
)

_leaves = st.one_of(
    _values.map(Lit),
    st.sampled_from(["x", "y", "ret1"]).map(PVar),
    st.sampled_from(["v", "val_0_0"]).map(LVar),
)

# NEG of a numeric literal normalises in the format; exclude that single
# shape so structural round-trip equality can be asserted exactly.
_safe_unops = st.sampled_from(
    [UnOp.NOT, UnOp.TYPEOF, UnOp.STRLEN, UnOp.LSTLEN, UnOp.HEAD, UnOp.TAIL, UnOp.FLOOR]
)


def _exprs(depth: int):
    if depth == 0:
        return _leaves
    sub = _exprs(depth - 1)
    return st.one_of(
        _leaves,
        st.tuples(_safe_unops, sub).map(lambda t: UnOpExpr(*t)),
        st.tuples(st.sampled_from(list(BinOp)), sub, sub).map(
            lambda t: BinOpExpr(*t)
        ),
        st.lists(sub, max_size=2).map(lambda items: EList(tuple(items))),
    )


@st.composite
def _commands(draw):
    kind = draw(
        st.sampled_from(
            ["assign", "ifgoto", "goto", "call", "return", "fail", "vanish",
             "action", "usym", "isym"]
        )
    )
    e = _exprs(2)
    if kind == "assign":
        return Assignment(draw(st.sampled_from(["x", "y"])), draw(e))
    if kind == "ifgoto":
        return IfGoto(draw(e), draw(st.integers(0, 9)))
    if kind == "goto":
        return Goto(draw(st.integers(0, 9)))
    if kind == "call":
        args = tuple(draw(st.lists(e, max_size=2)))
        return Call("r", draw(e), args)
    if kind == "return":
        return Return(draw(e))
    if kind == "fail":
        return Fail(draw(e))
    if kind == "vanish":
        return Vanish()
    if kind == "action":
        return ActionCall("t", draw(st.sampled_from(["lookup", "store"])), draw(e))
    if kind == "usym":
        return USym("u", draw(st.integers(0, 20)))
    return ISym("i", draw(st.integers(0, 20)))


@st.composite
def _programs(draw):
    prog = Prog()
    n_procs = draw(st.integers(1, 3))
    for p in range(n_procs):
        body = tuple(draw(st.lists(_commands(), min_size=1, max_size=6)))
        params = tuple(draw(st.lists(st.sampled_from(["x", "y", "z"]), max_size=3, unique=True)))
        prog.add(Proc(f"proc{p}", params, body))
    return prog


@given(prog=_programs())
@settings(max_examples=150, deadline=None)
def test_print_parse_roundtrip(prog):
    text = print_prog(prog)
    parsed = parse_prog(text)
    assert parsed.procs == prog.procs, text
