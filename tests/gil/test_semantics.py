"""Tests for the parametric GIL semantics (paper §2.1, Figure 1).

Programs here are built directly in GIL (no TL front end) over the While
memory model, exercising every command form under both the concrete and
the symbolic state constructors.
"""

import pytest

from repro.engine.explorer import Explorer
from repro.gil.semantics import GilRuntimeError, OutcomeKind
from repro.gil.syntax import (
    ActionCall,
    Assignment,
    Call,
    Fail,
    Goto,
    IfGoto,
    ISym,
    Proc,
    Prog,
    Return,
    USym,
    Vanish,
)
from repro.gil.values import NULL, GilType, Symbol
from repro.logic.expr import Lit, PVar, lst
from repro.state.concrete import ConcreteStateModel
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import WhileConcreteMemory, WhileSymbolicMemory


def run_concrete(prog, entry, args=()):
    sm = ConcreteStateModel(WhileConcreteMemory())
    return Explorer(prog, sm).run(entry, [Lit(a) if not isinstance(a, Lit) else a for a in args])


def run_symbolic(prog, entry, args=()):
    sm = SymbolicStateModel(WhileSymbolicMemory())
    return Explorer(prog, sm).run(entry, list(args))


def prog_of(*procs):
    p = Prog()
    for proc in procs:
        p.add(proc)
    return p


class TestStraightLine:
    def test_assignment_and_return(self):
        prog = prog_of(
            Proc("main", (), (Assignment("x", Lit(2) + Lit(3)), Return(PVar("x"))))
        )
        out = run_concrete(prog, "main").sole_outcome
        assert out.kind is OutcomeKind.NORMAL and out.value == 5

    def test_goto_skips(self):
        prog = prog_of(
            Proc(
                "main",
                (),
                (Goto(2), Return(Lit("skipped")), Return(Lit("reached"))),
            )
        )
        assert run_concrete(prog, "main").sole_outcome.value == "reached"

    def test_fail_produces_error(self):
        prog = prog_of(Proc("main", (), (Fail(Lit("boom")),)))
        out = run_concrete(prog, "main").sole_outcome
        assert out.kind is OutcomeKind.ERROR and out.value == "boom"

    def test_vanish_produces_no_outcome(self):
        prog = prog_of(Proc("main", (), (Vanish(),)))
        result = run_concrete(prog, "main")
        assert result.finals == [] and result.stats.paths_vanished == 1

    def test_eval_error_becomes_error_outcome(self):
        prog = prog_of(Proc("main", (), (Assignment("x", Lit(1) + Lit("s")), Return(PVar("x")))))
        out = run_concrete(prog, "main").sole_outcome
        assert out.kind is OutcomeKind.ERROR
        assert "eval-error" in str(out.value)


class TestIfGoto:
    def _branch_prog(self, cond):
        return prog_of(
            Proc(
                "main",
                ("b",),
                (IfGoto(cond, 2), Return(Lit("else")), Return(Lit("then"))),
            )
        )

    def test_concrete_true_branch(self):
        prog = self._branch_prog(PVar("b"))
        assert run_concrete(prog, "main", [True]).sole_outcome.value == "then"

    def test_concrete_false_branch(self):
        prog = self._branch_prog(PVar("b"))
        assert run_concrete(prog, "main", [False]).sole_outcome.value == "else"

    def test_concrete_nonbool_condition_errors(self):
        prog = self._branch_prog(PVar("b"))
        out = run_concrete(prog, "main", [7]).sole_outcome
        assert out.kind is OutcomeKind.ERROR

    def test_symbolic_branches_both_ways(self):
        from repro.logic.expr import LVar

        prog = self._branch_prog(PVar("b"))
        result = run_symbolic(prog, "main", [LVar("c")])
        values = sorted(f.value.value for f in result.normal)
        assert values == ["else", "then"]

    def test_symbolic_determined_condition_takes_one_branch(self):
        prog = self._branch_prog(Lit(True))
        result = run_symbolic(prog, "main", [Lit(True)])
        assert [f.value.value for f in result.normal] == ["then"]


class TestCalls:
    def test_static_call_and_return(self):
        double = Proc("double", ("n",), (Return(PVar("n") * 2),))
        main = Proc(
            "main",
            (),
            (
                Assignment("x", Lit(21)),
                Call("y", Lit("double"), (PVar("x"),)),
                Return(PVar("y")),
            ),
        )
        assert run_concrete(prog_of(double, main), "main").sole_outcome.value == 42

    def test_caller_store_restored(self):
        clobber = Proc("clobber", ("x",), (Assignment("x", Lit(0)), Return(PVar("x"))))
        main = Proc(
            "main",
            (),
            (
                Assignment("x", Lit(9)),
                Call("r", Lit("clobber"), (Lit(1),)),
                Return(PVar("x")),
            ),
        )
        assert run_concrete(prog_of(clobber, main), "main").sole_outcome.value == 9

    def test_dynamic_call_through_variable(self):
        f = Proc("f", (), (Return(Lit("from-f")),))
        main = Proc(
            "main",
            (),
            (Assignment("g", Lit("f")), Call("r", PVar("g"), ()), Return(PVar("r"))),
        )
        assert run_concrete(prog_of(f, main), "main").sole_outcome.value == "from-f"

    def test_unknown_procedure_errors(self):
        main = Proc("main", (), (Call("r", Lit("nope"), ()), Return(PVar("r"))))
        out = run_concrete(prog_of(main), "main").sole_outcome
        assert out.kind is OutcomeKind.ERROR

    def test_arity_mismatch_errors(self):
        f = Proc("f", ("a", "b"), (Return(PVar("a")),))
        main = Proc("main", (), (Call("r", Lit("f"), (Lit(1),)), Return(PVar("r"))))
        out = run_concrete(prog_of(f, main), "main").sole_outcome
        assert out.kind is OutcomeKind.ERROR

    def test_recursion(self):
        # fact(n) = n <= 0 ? 1 : n * fact(n-1)
        fact = Proc(
            "fact",
            ("n",),
            (
                IfGoto(PVar("n").leq(Lit(0)), 3),
                Call("r", Lit("fact"), (PVar("n") - 1,)),
                Return(PVar("n") * PVar("r")),
                Return(Lit(1)),
            ),
        )
        main = Proc("main", (), (Call("r", Lit("fact"), (Lit(5),)), Return(PVar("r"))))
        assert run_concrete(prog_of(fact, main), "main").sole_outcome.value == 120


class TestSymbols:
    def test_usym_allocates_distinct_symbols(self):
        prog = prog_of(
            Proc(
                "main",
                (),
                (
                    USym("a", 0),
                    USym("b", 1),
                    Return(PVar("a").eq(PVar("b"))),
                ),
            )
        )
        assert run_concrete(prog, "main").sole_outcome.value is False

    def test_isym_concrete_default(self):
        prog = prog_of(Proc("main", (), (ISym("x", 0), Return(PVar("x")))))
        assert run_concrete(prog, "main").sole_outcome.value == 0

    def test_isym_symbolic_is_lvar(self):
        from repro.logic.expr import LVar

        prog = prog_of(Proc("main", (), (ISym("x", 0), Return(PVar("x")))))
        out = run_symbolic(prog, "main").sole_outcome
        assert isinstance(out.value, LVar)


class TestActions:
    def test_action_roundtrip_concrete(self):
        prog = prog_of(
            Proc(
                "main",
                (),
                (
                    USym("o", 0),
                    ActionCall("w", "mutate", lst(PVar("o"), "p", Lit(7))),
                    ActionCall("v", "lookup", lst(PVar("o"), "p")),
                    Return(PVar("v")),
                ),
            )
        )
        assert run_concrete(prog, "main").sole_outcome.value == 7

    def test_action_error_branch(self):
        prog = prog_of(
            Proc(
                "main",
                (),
                (
                    USym("o", 0),
                    ActionCall("v", "lookup", lst(PVar("o"), "missing")),
                    Return(PVar("v")),
                ),
            )
        )
        out = run_concrete(prog, "main").sole_outcome
        assert out.kind is OutcomeKind.ERROR

    def test_malformed_program_raises(self):
        prog = prog_of(Proc("main", (), ()))
        with pytest.raises(GilRuntimeError):
            run_concrete(prog, "main")
