"""Tests for the shared lexer and label-resolving emitter."""

import pytest

from repro.frontend.emitter import Emitter, Label
from repro.frontend.lexer import LexError, ParseError, TokenStream, tokenize
from repro.gil.syntax import Assignment, Goto, IfGoto, Return
from repro.logic.expr import Lit, PVar


class TestLexer:
    def test_identifiers_numbers_strings(self):
        tokens = tokenize('abc 42 3.5 "hi"')
        assert [t.kind for t in tokens] == ["ident", "number", "number", "string", "eof"]

    def test_number_values(self):
        tokens = tokenize("42 3.5 1e3")
        assert tokens[0].number_value == 42
        assert tokens[1].number_value == 3.5
        assert tokens[2].number_value == 1000.0

    def test_multichar_operators_longest_match(self):
        tokens = tokenize("a === b !== c <= >= && || :=")
        texts = [t.text for t in tokens if t.kind == "punct"]
        assert texts == ["===", "!==", "<=", ">=", "&&", "||", ":="]

    def test_comments_skipped(self):
        tokens = tokenize("a // line\n /* block\n over lines */ b")
        assert [t.text for t in tokens[:-1]] == ["a", "b"]

    def test_string_escapes(self):
        tokens = tokenize(r'"a\nb\t\"q\""')
        assert tokens[0].text == 'a\nb\t"q"'

    def test_char_literal_mode(self):
        tokens = tokenize("'a' \"s\"", char_literals=True)
        assert tokens[0].kind == "char"
        assert tokens[1].kind == "string"

    def test_char_literal_mode_off(self):
        tokens = tokenize("'a'")
        assert tokens[0].kind == "string"

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].col) == (1, 1)
        assert (tokens[1].line, tokens[1].col) == (2, 3)

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* abc")

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a @ b")


class TestTokenStream:
    def test_accept_expect(self):
        ts = TokenStream(tokenize("a := 1;"))
        assert ts.expect_kind("ident").text == "a"
        assert ts.accept(":=") is not None
        assert ts.expect_kind("number").text == "1"
        ts.expect(";")
        assert ts.current.kind == "eof"

    def test_expect_failure(self):
        ts = TokenStream(tokenize("a"))
        with pytest.raises(ParseError):
            ts.expect("(")

    def test_peek_does_not_advance(self):
        ts = TokenStream(tokenize("a b"))
        assert ts.peek(1).text == "b"
        assert ts.current.text == "a"

    def test_eof_is_sticky(self):
        ts = TokenStream(tokenize(""))
        ts.advance()
        ts.advance()
        assert ts.current.kind == "eof"


class TestEmitter:
    def test_forward_label(self):
        em = Emitter()
        end = Label("end")
        em.emit(IfGoto(Lit(True), end))
        em.emit(Assignment("x", Lit(1)))
        em.mark(end)
        em.emit(Return(PVar("x")))
        cmds = em.finish()
        assert cmds[0] == IfGoto(Lit(True), 2)

    def test_backward_label(self):
        em = Emitter()
        start = Label("start")
        em.mark(start)
        em.emit(Assignment("x", Lit(1)))
        em.emit(Goto(start))
        cmds = em.finish()
        assert cmds[1] == Goto(0)

    def test_unmarked_label_rejected(self):
        em = Emitter()
        em.emit(Goto(Label("never")))
        with pytest.raises(ValueError):
            em.finish()

    def test_double_mark_rejected(self):
        em = Emitter()
        label = Label("l")
        em.mark(label)
        with pytest.raises(ValueError):
            em.mark(label)

    def test_fresh_temps_unique(self):
        em = Emitter()
        names = {em.fresh_temp() for _ in range(10)}
        assert len(names) == 10
