"""The documented public API is importable and wired correctly."""

import pytest


def test_top_level_exports():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None

    assert repro.__version__


def test_subpackage_exports():
    import importlib

    for package in (
        "repro.gil",
        "repro.logic",
        "repro.state",
        "repro.engine",
        "repro.testing",
        "repro.soundness",
        "repro.frontend",
        "repro.targets",
    ):
        module = importlib.import_module(package)
        for name in module.__all__:
            assert getattr(module, name) is not None, f"{package}.{name}"


def test_unknown_attribute_raises():
    import repro

    with pytest.raises(AttributeError):
        repro.NotAThing
    import repro.gil

    with pytest.raises(AttributeError):
        repro.gil.NotAThing


def test_readme_quickstart_runs():
    from repro import SymbolicTester, WhileLanguage

    source = """
    proc main() {
      n := symb_int();
      assume(0 <= n and n <= 100);
      assert(n * n < 10000);
    }
    """
    result = SymbolicTester(WhileLanguage()).run_source(source, "main")
    assert result.verdict == "bug"
    assert result.bugs[0].model == {"val_0_0": 100}
    assert result.bugs[0].confirmed


def test_readme_minic_example_runs():
    from repro import MiniCLanguage, SymbolicTester

    source = """
    int main() {
      int *a = (int *) malloc(3 * sizeof(int));
      int i = symb_int();
      assume(0 <= i && i <= 3);
      a[i] = 1;
      free(a);
      return 0;
    }
    """
    result = SymbolicTester(MiniCLanguage()).run_source(source, "main")
    assert result.verdict == "bug"
    assert result.bugs[0].model == {"val_1_0": 3}
