"""Tests for allocators and allocation records (paper Def. 2.2, §3.2)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gil.values import Symbol
from repro.logic.expr import LVar
from repro.state.allocator import (
    AllocRecord,
    ConcreteAllocator,
    SymbolicAllocator,
    interpret_record,
    isym_name,
    usym_name,
)


class TestAllocRecord:
    def test_fresh_record_counts_zero(self):
        assert AllocRecord().count(0) == 0

    def test_bump_increments(self):
        r, idx = AllocRecord().bump(3)
        assert idx == 0 and r.count(3) == 1

    def test_bump_is_per_site(self):
        r, _ = AllocRecord().bump(0)
        r, _ = r.bump(1)
        r, idx = r.bump(0)
        assert idx == 1 and r.count(1) == 1

    def test_records_are_immutable_values(self):
        r0 = AllocRecord()
        r1, _ = r0.bump(0)
        assert r0.count(0) == 0 and r1.count(0) == 1
        assert r0 != r1

    def test_restrict_takes_max(self):
        r1, _ = AllocRecord().bump(0)
        r2 = AllocRecord()
        for _ in range(3):
            r2, _ = r2.bump(0)
        assert r1.restrict(r2).count(0) == 3
        assert r2.restrict(r1).count(0) == 3

    def test_monotonicity_of_alloc(self):
        # Def. 3.3: allocation only moves down the ⊑ pre-order.
        r = AllocRecord()
        r2, _ = r.bump(5)
        assert r2.precedes(r)
        assert not r.precedes(r2)


class TestSymbolicAllocator:
    def test_usym_names_are_deterministic(self):
        al = SymbolicAllocator()
        r, s1 = al.alloc_usym(AllocRecord(), 2)
        _, s2 = al.alloc_usym(r, 2)
        assert s1 == Symbol(usym_name(2, 0))
        assert s2 == Symbol(usym_name(2, 1))

    def test_isym_yields_lvars(self):
        al = SymbolicAllocator()
        _, v = al.alloc_isym(AllocRecord(), 7)
        assert v == LVar(isym_name(7, 0))

    def test_different_sites_never_collide(self):
        al = SymbolicAllocator()
        _, a = al.alloc_usym(AllocRecord(), 1)
        _, b = al.alloc_usym(AllocRecord(), 2)
        assert a != b


class TestConcreteAllocator:
    def test_usym_matches_symbolic_names(self):
        conc = ConcreteAllocator()
        sym = SymbolicAllocator()
        _, a = conc.alloc_usym(AllocRecord(), 4)
        _, b = sym.alloc_usym(AllocRecord(), 4)
        assert a == b  # replay yields identical locations

    def test_isym_default(self):
        conc = ConcreteAllocator()
        _, v = conc.alloc_isym(AllocRecord(), 0)
        assert v == 0

    def test_isym_scripted(self):
        conc = ConcreteAllocator(script={isym_name(0, 0): 42})
        _, v = conc.alloc_isym(AllocRecord(), 0)
        assert v == 42

    def test_interpret_record_is_identity(self):
        r, _ = AllocRecord().bump(0)
        assert interpret_record(r) == r


# -- restriction laws on records (Def. 3.1), property-based -------------------

_records = st.lists(
    st.tuples(st.integers(0, 3), st.integers(1, 4)), max_size=4
).map(lambda items: AllocRecord(tuple(sorted(dict(items).items()))))


@given(r=_records)
@settings(deadline=None)
def test_restriction_idempotent(r):
    assert r.restrict(r) == r


@given(r1=_records, r2=_records, r3=_records)
@settings(deadline=None)
def test_restriction_right_commutative(r1, r2, r3):
    assert r1.restrict(r2).restrict(r3) == r1.restrict(r3).restrict(r2)


@given(r1=_records, r2=_records, r3=_records)
@settings(deadline=None)
def test_restriction_weakening(r1, r2, r3):
    if r1.restrict(r2.restrict(r3)) == r1:
        assert r1.restrict(r2) == r1
        assert r1.restrict(r3) == r1


class TestNamespaceSplit:
    """Namespace splitting partitions the allocation range |AL| (Def. 2.2)
    so runs fanned out of one shared root state cannot collide on fresh
    names.  (Frontier sharding in the parallel explorer deliberately does
    NOT namespace: records are threaded per-path, and sequential/parallel
    outcome equality needs the namespace-free names.)"""

    def test_default_names_are_namespace_free(self):
        assert usym_name(3, 1) == "loc_3_1"
        assert isym_name(3, 1) == "val_3_1"

    def test_namespaced_names_are_distinct_per_shard(self):
        names = {
            kind(site, idx, ns)
            for kind in (usym_name, isym_name)
            for ns in ("", "w0", "w1")
            for site in (0, 1)
            for idx in (0, 1)
        }
        assert len(names) == 2 * 3 * 2 * 2  # no collisions anywhere

    def test_split_symbolic_allocators_draw_disjoint_names(self):
        root = SymbolicAllocator()
        a, b = root.split(0), root.split(1)
        record = AllocRecord()
        _, sym_a = a.alloc_usym(record, 0)
        _, sym_b = b.alloc_usym(record, 0)
        _, sym_root = root.alloc_usym(record, 0)
        assert len({sym_a.name, sym_b.name, sym_root.name}) == 3

    def test_nested_split_keeps_partitioning(self):
        inner = SymbolicAllocator().split(1).split(2)
        assert inner.namespace == "w1.w2"
        _, lv = inner.alloc_isym(AllocRecord(), 0)
        assert lv.name == "val_w1.w2_0_0"

    def test_scripted_replay_with_matching_namespace(self):
        # A counter-model produced by a namespaced symbolic run keys its
        # script with namespaced names; the concrete replay allocator must
        # split identically for the script to line up.
        sym = SymbolicAllocator().split(4)
        _, lvar = sym.alloc_isym(AllocRecord(), 7)
        conc = ConcreteAllocator(script={lvar.name: 99}).split(4)
        _, value = conc.alloc_isym(AllocRecord(), 7)
        assert value == 99

    def test_mismatched_namespace_misses_the_script(self):
        conc = ConcreteAllocator(script={"val_7_0": 99}, default_value=-1).split(4)
        _, value = conc.alloc_isym(AllocRecord(), 7)
        assert value == -1  # namespaced name does not match the bare key

    def test_concrete_split_preserves_script_and_default(self):
        conc = ConcreteAllocator(script={"k": 1}, default_value=5).split(2)
        assert conc.script == {"k": 1}
        assert conc.default_value == 5
        assert conc.namespace == "w2"
