"""Tests for the concrete/symbolic state constructors (Defs. 2.5/2.6)."""

import pytest

from repro.gil.ops import EvalError
from repro.gil.values import GilType, Symbol
from repro.logic.expr import FALSE, TRUE, Lit, LVar, PVar, lst
from repro.logic.pathcond import PathCondition
from repro.logic.solver import Solver
from repro.state.concrete import ConcreteStateModel
from repro.state.interface import StateErr, StateOk
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import WhileConcreteMemory, WhileSymbolicMemory


@pytest.fixture
def conc():
    return ConcreteStateModel(WhileConcreteMemory())


@pytest.fixture
def sym():
    return SymbolicStateModel(WhileSymbolicMemory())


class TestConcreteStateModel:
    def test_store_roundtrip(self, conc):
        state = conc.initial_state()
        state = conc.set_var(state, "x", 5)
        assert conc.get_store(state) == {"x": 5}

    def test_set_store_replaces(self, conc):
        state = conc.set_var(conc.initial_state(), "x", 1)
        state = conc.set_store(state, {"y": 2})
        assert conc.get_store(state) == {"y": 2}

    def test_states_immutable(self, conc):
        s1 = conc.initial_state()
        s2 = conc.set_var(s1, "x", 1)
        assert conc.get_store(s1) == {}
        assert conc.get_store(s2) == {"x": 1}

    def test_eval_expr_uses_store(self, conc):
        state = conc.set_var(conc.initial_state(), "x", 4)
        assert conc.eval_expr(state, PVar("x") * 2) == 8

    def test_eval_unbound_raises(self, conc):
        with pytest.raises(EvalError):
            conc.eval_expr(conc.initial_state(), PVar("nope"))

    def test_assume_filters(self, conc):
        state = conc.initial_state()
        assert conc.assume(state, True) == [state]
        assert conc.assume(state, False) == []

    def test_branch_on_requires_boolean(self, conc):
        state = conc.initial_state()
        with pytest.raises(EvalError):
            conc.branch_on(state, 5)

    def test_fresh_usym_advances_allocator(self, conc):
        state = conc.initial_state()
        state, s1 = conc.fresh_usym(state, 0)
        state, s2 = conc.fresh_usym(state, 0)
        assert isinstance(s1, Symbol) and s1 != s2

    def test_action_error_branch(self, conc):
        state = conc.initial_state()
        (branch,) = conc.execute_action(state, "lookup", (Symbol("l"), "p"))
        assert isinstance(branch, StateErr)


class TestSymbolicStateModel:
    def test_eval_substitutes_and_simplifies(self, sym):
        state = sym.set_var(sym.initial_state(), "x", LVar("a"))
        out = sym.eval_expr(state, (PVar("x") + 0) * 1)
        assert out == LVar("a")

    def test_assume_strengthens_pc(self, sym):
        state = sym.initial_state()
        (after,) = sym.assume(state, LVar("a").lt(Lit(3)))
        assert LVar("a").lt(Lit(3)) in after.pc.conjuncts

    def test_assume_unsat_drops(self, sym):
        state = sym.initial_state()
        (s1,) = sym.assume(state, LVar("a").lt(Lit(3)))
        assert sym.assume(s1, Lit(5).lt(LVar("a"))) == []

    def test_assume_false_literal_drops(self, sym):
        assert sym.assume(sym.initial_state(), FALSE) == []

    def test_branch_on_undetermined_gives_both(self, sym):
        state = sym.initial_state()
        branches = sym.branch_on(state, LVar("a").lt(Lit(0)))
        assert sorted(taken for _, taken in branches) == [False, True]

    def test_branch_on_determined_gives_one(self, sym):
        state = sym.initial_state()
        (s1,) = sym.assume(state, LVar("a").lt(Lit(0)))
        branches = sym.branch_on(s1, LVar("a").lt(Lit(1)))
        assert [taken for _, taken in branches] == [True]

    def test_action_learned_conditions_conjoined(self, sym):
        loc = LVar("l")
        state = sym.initial_state()
        branches = sym.execute_action(
            state, "mutate", lst(Lit(Symbol("k")), Lit("p"), Lit(1))
        )
        assert len(branches) == 1
        state2 = branches[0].state
        branches2 = sym.execute_action(state2, "lookup", lst(loc, Lit("p")))
        ok = [b for b in branches2 if isinstance(b, StateOk)]
        assert ok and loc.eq(Lit(Symbol("k"))) in ok[0].state.pc.conjuncts

    def test_fresh_isym_is_lvar(self, sym):
        state, v = sym.fresh_isym(sym.initial_state(), 2)
        assert isinstance(v, LVar)

    def test_fresh_usym_is_symbol_literal(self, sym):
        state, v = sym.fresh_usym(sym.initial_state(), 2)
        assert isinstance(v, Lit) and isinstance(v.value, Symbol)

    def test_restrict_merges(self, sym):
        s1 = sym.initial_state()
        (s1,) = sym.assume(s1, LVar("a").lt(Lit(3)))
        s2 = sym.initial_state()
        (s2,) = sym.assume(s2, Lit(0).leq(LVar("a")))
        merged = s1.restrict(s2)
        assert set(merged.pc.conjuncts) == {
            LVar("a").lt(Lit(3)),
            Lit(0).leq(LVar("a")),
        }
