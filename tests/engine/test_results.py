"""Tests for ExecutionStats / ExecutionResult (repro.engine.results)."""

import dataclasses

import pytest

from repro.engine.results import (
    STOP_REASON_PRECEDENCE,
    ExecutionResult,
    ExecutionStats,
    final_sort_key,
    merge_results,
    merge_stop_reasons,
)
from repro.gil.semantics import Final, OutcomeKind
from repro.logic.solver import SolverSnapshot, SolverStats


def final(kind, value=None):
    return Final(state=None, kind=kind, value=value)


class TestStatsMerge:
    def test_merges_every_numeric_field(self):
        a = ExecutionStats(
            commands_executed=2,
            paths_finished=1,
            paths_vanished=3,
            paths_dropped=4,
            solver_queries=5,
            solver_cache_hits=6,
            solver_prefix_hits=7,
            solver_model_reuse=8,
            solver_time=0.5,
            wall_time=1.0,
        )
        b = ExecutionStats(
            commands_executed=10,
            paths_finished=20,
            paths_vanished=30,
            paths_dropped=40,
            solver_queries=50,
            solver_cache_hits=60,
            solver_prefix_hits=70,
            solver_model_reuse=80,
            solver_time=0.25,
            wall_time=2.0,
        )
        a.merge(b)
        assert a.commands_executed == 12
        assert a.paths_finished == 21
        assert a.paths_vanished == 33
        assert a.paths_dropped == 44
        assert a.solver_queries == 55
        assert a.solver_cache_hits == 66
        assert a.solver_prefix_hits == 77
        assert a.solver_model_reuse == 88
        assert a.solver_time == 0.75
        assert a.wall_time == 3.0

    def test_no_field_left_behind(self):
        """Every numeric counter must change under merge with ones."""
        numeric = {
            f.name
            for f in dataclasses.fields(ExecutionStats)
            if f.type in ("int", "float")
        }
        a = ExecutionStats()
        b = ExecutionStats(**{name: 1 for name in numeric})
        a.merge(b)
        for name in numeric:
            assert getattr(a, name) == 1, f"merge dropped {name}"

    def test_merge_exhausted_reasons(self):
        a = ExecutionStats(stop_reason="exhausted")
        a.merge(ExecutionStats(stop_reason="exhausted"))
        assert a.stop_reason == "exhausted"

    def test_merge_prefers_non_exhaustive_reason(self):
        a = ExecutionStats(stop_reason="exhausted")
        a.merge(ExecutionStats(stop_reason="deadline"))
        assert a.stop_reason == "deadline"
        b = ExecutionStats(stop_reason="max-paths")
        b.merge(ExecutionStats(stop_reason="exhausted"))
        assert b.stop_reason == "max-paths"

    def test_merge_with_unset_reason(self):
        a = ExecutionStats()
        a.merge(ExecutionStats(stop_reason="exhausted"))
        assert a.stop_reason == "exhausted"
        b = ExecutionStats()
        b.merge(ExecutionStats())
        assert b.stop_reason == ""


class TestSolverDelta:
    def test_add_solver_delta(self):
        stats = ExecutionStats(solver_queries=1, solver_time=0.5)
        stats.add_solver_delta(
            SolverSnapshot(
                queries=2, cache_hits=3, prefix_hits=4,
                model_reuse_hits=5, solve_time=0.25,
            )
        )
        assert stats.solver_queries == 3
        assert stats.solver_cache_hits == 3
        assert stats.solver_prefix_hits == 4
        assert stats.solver_model_reuse == 5
        assert stats.solver_time == 0.75

    def test_snapshot_delta_roundtrip(self):
        live = SolverStats()
        snap = live.snapshot()
        live.queries += 3
        live.cache_hits += 1
        live.solve_time += 0.5
        delta = live.delta(snap)
        assert delta.queries == 3
        assert delta.cache_hits == 1
        assert delta.prefix_hits == 0
        assert delta.solve_time == 0.5

    def test_interleaved_attribution(self):
        """Two runs sharing one solver each see only their own work."""
        live = SolverStats()
        run_a = ExecutionStats()
        run_b = ExecutionStats()
        # Run A steps, issuing 2 queries...
        snap = live.snapshot()
        live.queries += 2
        run_a.add_solver_delta(live.delta(snap))
        # ...then run B steps, issuing 5.
        snap = live.snapshot()
        live.queries += 5
        run_b.add_solver_delta(live.delta(snap))
        # ...then run A again, issuing 1.
        snap = live.snapshot()
        live.queries += 1
        run_a.add_solver_delta(live.delta(snap))
        assert run_a.solver_queries == 3
        assert run_b.solver_queries == 5


class TestExecutionResult:
    def test_partitions(self):
        finals = [
            final(OutcomeKind.NORMAL, 1),
            final(OutcomeKind.ERROR, "boom"),
            final(OutcomeKind.VANISH),
            final(OutcomeKind.NORMAL, 2),
        ]
        result = ExecutionResult(finals, ExecutionStats())
        assert [f.value for f in result.normal] == [1, 2]
        assert [f.value for f in result.errors] == ["boom"]

    def test_sole_outcome_happy_path(self):
        result = ExecutionResult(
            [final(OutcomeKind.NORMAL, 42)], ExecutionStats()
        )
        assert result.sole_outcome.value == 42

    def test_sole_outcome_ignores_vanished(self):
        result = ExecutionResult(
            [final(OutcomeKind.VANISH), final(OutcomeKind.ERROR, "e")],
            ExecutionStats(),
        )
        assert result.sole_outcome.kind is OutcomeKind.ERROR

    def test_sole_outcome_zero_finals(self):
        with pytest.raises(ValueError, match="got 0"):
            ExecutionResult([], ExecutionStats()).sole_outcome

    def test_sole_outcome_only_vanished(self):
        result = ExecutionResult([final(OutcomeKind.VANISH)], ExecutionStats())
        with pytest.raises(ValueError, match="got 0"):
            result.sole_outcome

    def test_sole_outcome_multiple_finals(self):
        result = ExecutionResult(
            [final(OutcomeKind.NORMAL, 1), final(OutcomeKind.NORMAL, 2)],
            ExecutionStats(),
        )
        with pytest.raises(ValueError, match="got 2"):
            result.sole_outcome

    def test_empty_result_partitions_empty(self):
        result = ExecutionResult([], ExecutionStats())
        assert result.normal == [] and result.errors == []


class TestStopReasonPrecedence:
    def test_precedence_is_total_over_known_reasons(self):
        assert set(STOP_REASON_PRECEDENCE) == {
            "incomplete", "unknown-abort", "deadline", "max-total-steps",
            "max-paths", "exhausted",
        }
        # The degraded reasons are the most restrictive: a shard that
        # lost frontier (or a run aborted on UNKNOWN) caps every other
        # constituent's claim about coverage.
        assert STOP_REASON_PRECEDENCE.index("incomplete") == 0
        assert STOP_REASON_PRECEDENCE.index("unknown-abort") == 1

    def test_most_restrictive_wins_pairwise(self):
        # Every earlier reason beats every later one, in both arg orders.
        for i, stronger in enumerate(STOP_REASON_PRECEDENCE):
            for weaker in STOP_REASON_PRECEDENCE[i + 1:]:
                assert merge_stop_reasons(stronger, weaker) == stronger
                assert merge_stop_reasons(weaker, stronger) == stronger

    def test_empty_reasons_are_ignored(self):
        assert merge_stop_reasons("", "max-paths", "") == "max-paths"
        assert merge_stop_reasons("", "") == ""
        assert merge_stop_reasons() == ""

    def test_unknown_reason_is_most_restrictive(self):
        assert merge_stop_reasons("solver-meltdown", "deadline") == "solver-meltdown"

    def test_merge_order_independent(self):
        # Conflicting stop reasons resolve the same whichever side merges.
        a = ExecutionStats(stop_reason="max-paths")
        a.merge(ExecutionStats(stop_reason="max-total-steps"))
        b = ExecutionStats(stop_reason="max-total-steps")
        b.merge(ExecutionStats(stop_reason="max-paths"))
        assert a.stop_reason == b.stop_reason == "max-total-steps"


class TestMergeResults:
    def parts(self):
        return [
            ExecutionResult(
                [final(OutcomeKind.NORMAL, 2), final(OutcomeKind.ERROR, "z")],
                ExecutionStats(commands_executed=3, stop_reason="exhausted"),
            ),
            ExecutionResult(
                [final(OutcomeKind.NORMAL, 1)],
                ExecutionStats(commands_executed=4, stop_reason="exhausted"),
            ),
        ]

    def test_finals_sorted_canonically(self):
        merged = merge_results(self.parts())
        assert [final_sort_key(f) for f in merged.finals] == sorted(
            final_sort_key(f) for f in merged.finals
        )
        assert len(merged.finals) == 3

    def test_shard_order_invariant(self):
        parts = self.parts()
        forward = merge_results(parts)
        backward = merge_results(list(reversed(parts)))
        assert [final_sort_key(f) for f in forward.finals] == [
            final_sort_key(f) for f in backward.finals
        ]
        assert forward.stats.commands_executed == backward.stats.commands_executed

    def test_stats_and_reason_aggregate(self):
        parts = self.parts()
        parts[1].stats.stop_reason = "deadline"
        merged = merge_results(parts)
        assert merged.stats.commands_executed == 7
        assert merged.stats.stop_reason == "deadline"

    def test_merge_of_nothing(self):
        merged = merge_results([])
        assert merged.finals == []
        assert merged.stats.stop_reason == ""
