"""Tests for the fault-tolerance machinery: the deterministic fault
harness (repro.testing.faults), solver step budgets and the UNKNOWN
verdict policies, worker crash recovery in the parallel explorer, and
the incompleteness accounting that ties them together."""

import pickle

import pytest

from repro.engine.config import EngineConfig
from repro.engine.explorer import Explorer
from repro.engine.parallel import ParallelExplorer
from repro.engine.results import final_sort_key
from repro.gil.syntax import (
    ActionCall,
    Fail,
    IfGoto,
    ISym,
    Proc,
    Prog,
    Return,
    USym,
)
from repro.logic.expr import Lit, PVar, lst
from repro.logic.solver import SatResult, Solver, UnknownAbort
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import WhileSymbolicMemory
from repro.testing.faults import (
    ActionFault,
    FaultPlan,
    InjectedActionError,
    InjectedCrash,
    SolverTimeout,
    WorkerKill,
)


def prog_of(*procs):
    p = Prog()
    for proc in procs:
        p.add(proc)
    return p


def branching_prog(levels=3):
    """A binary tree of iSym branches, 2**levels leaves plus error paths."""
    body = ()
    for i in range(levels):
        body += (ISym(f"b{i}", i),)
    for i in range(levels):
        body += (IfGoto(PVar(f"b{i}").lt(Lit(0)), 2 * levels + 1),)
    body += (Return(Lit("ok")), Fail(Lit("neg")))
    return prog_of(Proc("main", (), body))


def action_prog(levels=2):
    """Like branching_prog, but every surviving path runs memory actions
    after the branches — so worker shards execute ActionCalls."""
    body = ()
    for i in range(levels):
        body += (ISym(f"b{i}", i),)
    fail_idx = 2 * levels + 4
    for i in range(levels):
        body += (IfGoto(PVar(f"b{i}").lt(Lit(0)), fail_idx),)
    body += (
        USym("o", 99),
        ActionCall("w", "mutate", lst(PVar("o"), "p", Lit(7))),
        ActionCall("v", "lookup", lst(PVar("o"), "p")),
        Return(PVar("v")),
        Fail(Lit("neg")),
    )
    return prog_of(Proc("main", (), body))


def sym_model(**kwargs):
    return SymbolicStateModel(WhileSymbolicMemory(), **kwargs)


def keys(result):
    return sorted(final_sort_key(f) for f in result.finals)


def fingerprint(result):
    """Bit-for-bit comparison key: kind, value, and path condition of
    every final, in canonical order."""
    return sorted(
        (f.kind.name, repr(f.value), repr(tuple(f.state.pc.conjuncts)))
        for f in result.finals
    )


# -- the plan itself ----------------------------------------------------------


class TestFaultPlan:
    def test_random_plans_are_deterministic(self):
        for seed in range(20):
            assert FaultPlan.random(seed) == FaultPlan.random(seed)

    def test_plans_pickle(self):
        plan = FaultPlan(
            kills=(WorkerKill(0, 3, mode="exit"),),
            solver_timeouts=(SolverTimeout(2, worker=1),),
            action_faults=(ActionFault(5, action="lookup"),),
        )
        assert pickle.loads(pickle.dumps(plan)) == plan

    def test_empty_plan_resolves_to_no_injector(self):
        plan = FaultPlan.none()
        assert plan.empty
        assert plan.injector(None) is None
        assert plan.injector(0) is None
        assert plan.injector(3, attempt=1) is None

    def test_injector_matches_worker_and_attempt(self):
        plan = FaultPlan(kills=(WorkerKill(worker=1, at_step=2),))
        assert plan.injector(0) is None          # wrong worker
        assert plan.injector(1) is not None      # first attempt: armed
        assert plan.injector(1, attempt=1) is None  # transient: quiet on retry
        permanent = FaultPlan(kills=(WorkerKill(1, 2, attempts=3),))
        assert permanent.injector(1, attempt=2) is not None
        assert permanent.injector(1, attempt=3) is None

    def test_worker_scoped_faults_skip_the_parent(self):
        plan = FaultPlan(
            solver_timeouts=(SolverTimeout(0, worker=2),),
            action_faults=(ActionFault(0, worker=2),),
        )
        assert plan.injector(None) is None
        assert plan.injector(2) is not None

    def test_kill_modes_validated(self):
        with pytest.raises(ValueError):
            WorkerKill(0, 1, mode="segfault")

    def test_injector_fires_at_exact_step(self):
        injector = FaultPlan(kills=(WorkerKill(0, at_step=2),)).injector(0)
        injector.on_step()
        injector.on_step()
        with pytest.raises(InjectedCrash):
            injector.on_step()

    def test_action_fault_filters_by_name(self):
        injector = FaultPlan(
            action_faults=(ActionFault(0, action="store"),)
        ).injector(None)
        injector.on_action("lookup")  # call 0, wrong action: quiet
        injector.on_action("store")   # call 1, right action, wrong call
        injector = FaultPlan(
            action_faults=(ActionFault(1, action="store"),)
        ).injector(None)
        injector.on_action("lookup")
        with pytest.raises(InjectedActionError):
            injector.on_action("store")


# -- solver step budget and UNKNOWN ------------------------------------------


class TestSolverStepBudget:
    def hard_pc(self):
        from repro.logic.expr import LVar, disj

        conjuncts = []
        for i in range(6):
            v = LVar(f"x{i}")
            conjuncts.append(disj(v.eq(Lit(i)), v.eq(Lit(i + 1))))
            conjuncts.append(v.lt(Lit(100)))
        return conjuncts

    def test_tiny_budget_yields_unknown_and_counts_timeout(self):
        solver = Solver(step_budget=1)
        verdict = solver.check(self.hard_pc())
        assert verdict is SatResult.UNKNOWN
        assert solver.stats.timeouts >= 1

    def test_unbudgeted_solver_decides_the_same_query(self):
        assert Solver().check(self.hard_pc()) is SatResult.SAT

    def test_budget_verdicts_are_deterministic(self):
        for budget in (1, 5, 20, 1000):
            a = Solver(step_budget=budget).check(self.hard_pc())
            b = Solver(step_budget=budget).check(self.hard_pc())
            assert a is b

    def test_is_sat_treats_unknown_as_sat(self):
        # The documented over-approximation: UNKNOWN keeps a path alive.
        solver = Solver(step_budget=1)
        assert solver.is_sat(self.hard_pc()) is True


class TestUnknownPolicies:
    def run_with_forced_timeout(self, policy, levels=2):
        config = EngineConfig(
            fault_plan=FaultPlan(solver_timeouts=(SolverTimeout(0),)),
            unknown_policy=policy,
        )
        sm = sym_model(unknown_policy=policy)
        return Explorer(branching_prog(levels), sm, config).run("main")

    def test_assume_sat_keeps_branches_and_counts(self):
        result = self.run_with_forced_timeout("assume-sat")
        baseline = Explorer(branching_prog(2), sym_model()).run("main")
        assert keys(result) == keys(baseline)
        inc = result.stats.incompleteness
        assert inc.unknown_assumed >= 1
        assert inc.solver_timeouts >= 1
        assert not result.report.complete
        assert result.stats.stop_reason == "exhausted"

    def test_prune_drops_branches_and_counts(self):
        result = self.run_with_forced_timeout("prune")
        baseline = Explorer(branching_prog(2), sym_model()).run("main")
        assert len(result.finals) < len(baseline.finals)
        assert set(keys(result)) <= set(keys(baseline))
        assert result.stats.incompleteness.unknown_pruned >= 1
        assert not result.report.complete

    def test_abort_stops_the_run(self):
        result = self.run_with_forced_timeout("abort")
        assert result.stats.stop_reason == "unknown-abort"
        assert not result.report.complete

    def test_bad_policy_rejected(self):
        with pytest.raises(ValueError):
            sym_model(unknown_policy="flip-a-coin")
        with pytest.raises(ValueError):
            EngineConfig(unknown_policy="flip-a-coin")

    def test_abort_raises_from_state_model(self):
        from repro.logic.expr import LVar

        sm = sym_model(unknown_policy="abort")
        sm.solver.step_budget = 1
        state = sm.initial_state()
        hard = TestSolverStepBudget().hard_pc()
        with pytest.raises(UnknownAbort):
            for conjunct in hard:
                (state,) = sm.assume(state, conjunct) or (None,)


# -- worker crash recovery ----------------------------------------------------


class TestWorkerRecovery:
    def fault_free(self, prog=None, workers=2):
        config = EngineConfig(shard_retry_backoff=0.0)
        return ParallelExplorer(
            prog if prog is not None else branching_prog(), sym_model(),
            config, workers=workers, seed_factor=1,
        ).run("main")

    def run_with_plan(self, plan, prog=None, workers=2, **overrides):
        config = EngineConfig(
            fault_plan=plan, shard_retry_backoff=0.0, **overrides
        )
        return ParallelExplorer(
            prog if prog is not None else branching_prog(), sym_model(),
            config, workers=workers, seed_factor=1,
        ).run("main")

    @pytest.mark.parametrize("mode", ["raise", "exit"])
    def test_transient_kill_recovers_exactly(self, mode):
        plan = FaultPlan(kills=(WorkerKill(worker=0, at_step=0, mode=mode),))
        recovered = self.run_with_plan(plan)
        baseline = self.fault_free()
        assert fingerprint(recovered) == fingerprint(baseline)
        assert recovered.stats.stop_reason == "exhausted"
        inc = recovered.stats.incompleteness
        assert inc.shards_retried >= 1
        assert inc.shards_lost == 0 and inc.frontier_lost == 0

    def test_transient_action_fault_recovers_exactly(self):
        # worker=None arms every process, but action_prog only executes
        # actions after the seeding cut, so the faults fire inside
        # workers (each worker's first action call) and recovery re-runs
        # their shards cleanly.
        plan = FaultPlan(action_faults=(ActionFault(0),))
        recovered = self.run_with_plan(plan, prog=action_prog())
        baseline = self.fault_free(prog=action_prog())
        assert fingerprint(recovered) == fingerprint(baseline)
        assert recovered.stats.stop_reason == "exhausted"
        assert recovered.stats.incompleteness.shards_retried >= 1

    def test_permanent_kill_downgrades_to_incomplete(self):
        plan = FaultPlan(kills=(WorkerKill(worker=0, at_step=0, attempts=99),))
        result = self.run_with_plan(plan, max_shard_retries=1)
        assert result.stats.stop_reason == "incomplete"
        inc = result.stats.incompleteness
        assert inc.shards_lost >= 1
        assert inc.frontier_lost == len(result.lost_frontier) > 0
        assert result.stats.paths_dropped >= len(result.lost_frontier)

    def test_lost_frontier_resumes_to_the_exact_multiset(self):
        # Healthy-shard results are salvaged; sequentially re-exploring
        # exactly the lost items recovers the fault-free multiset.
        plan = FaultPlan(kills=(WorkerKill(worker=0, at_step=0, attempts=99),))
        partial = self.run_with_plan(plan, max_shard_retries=0)
        assert partial.lost_frontier
        configs = [cfg for cfg, _ in partial.lost_frontier]
        depths = [depth for _, depth in partial.lost_frontier]
        rest = Explorer(
            branching_prog(), sym_model(), EngineConfig()
        ).explore(configs, depths=depths)
        combined = sorted(fingerprint(partial) + fingerprint(rest))
        assert combined == sorted(fingerprint(self.fault_free()))

    def test_hung_worker_is_terminated_and_degraded(self):
        config = EngineConfig(
            worker_timeout=1.0, max_shard_retries=0, shard_retry_backoff=0.0
        )
        result = ParallelExplorer(
            branching_prog(), sym_model(), config,
            workers=2, seed_factor=1, factory=_HangingFactory(),
        ).run("main")
        assert result.stats.stop_reason == "incomplete"
        assert result.stats.incompleteness.shards_lost >= 1

    def test_zero_fault_plan_is_bit_for_bit_identical(self):
        for workers in (1, 2, 4):
            plain = ParallelExplorer(
                branching_prog(), sym_model(), EngineConfig(),
                workers=workers, seed_factor=1,
            ).run("main")
            with_plan = ParallelExplorer(
                branching_prog(), sym_model(),
                EngineConfig(fault_plan=FaultPlan.none()),
                workers=workers, seed_factor=1,
            ).run("main")
            assert fingerprint(plain) == fingerprint(with_plan)
            assert with_plan.stats.incompleteness.clean

    def test_sequential_injected_crash_propagates(self):
        # With no parallel recovery layer, an injected crash surfaces.
        config = EngineConfig(
            fault_plan=FaultPlan(kills=(WorkerKill(worker=None, at_step=0),))
        )
        plan = config.fault_plan
        # worker=None kills never match a real worker id, but do match
        # the sequential explorer (fault_worker=None).
        assert plan.injector(None) is not None
        with pytest.raises(InjectedCrash):
            Explorer(branching_prog(), sym_model(), config).run("main")


class _HangingFactory:
    """A worker factory that never returns: exercises worker_timeout."""

    def __call__(self):
        import time

        time.sleep(3600)


# -- report plumbing ----------------------------------------------------------


class TestReportPlumbing:
    def test_run_report_summary_names_degradations(self):
        from repro.engine.results import Incompleteness, RunReport

        report = RunReport(
            "incomplete",
            Incompleteness(solver_timeouts=2, shards_lost=1, frontier_lost=3),
        )
        assert not report.complete
        text = report.summary()
        assert "stop=incomplete" in text
        assert "solver-timeouts=2" in text
        assert "shards-lost=1" in text

    def test_clean_exhausted_run_reports_complete(self):
        result = Explorer(branching_prog(), sym_model(), EngineConfig()).run(
            "main"
        )
        assert result.report.complete
        assert result.report.summary() == "stop=exhausted"

    def test_harness_verdict_degrades_without_bugs(self):
        from repro.targets.while_lang import WhileLanguage
        from repro.testing.harness import SymbolicTester

        source = """
        proc main() {
          n := symb_int();
          assume(0 <= n and n <= 1);
          assert(n < 5);
        }"""
        clean = SymbolicTester(WhileLanguage()).run_source(source, "main")
        assert clean.verdict == "bounded-verified"
        assert clean.report is not None and clean.report.complete
        config = EngineConfig(
            fault_plan=FaultPlan(solver_timeouts=(SolverTimeout(0),)),
            unknown_policy="prune",
        )
        degraded = SymbolicTester(WhileLanguage(), config=config).run_source(
            source, "main"
        )
        assert degraded.passed
        assert degraded.verdict == "bounded-verified-incomplete"
