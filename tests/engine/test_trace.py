"""Tests for execution tracing and bug explanation (repro.testing.trace)."""

import pytest

from repro.state.concrete import ConcreteStateModel
from repro.targets.while_lang import WhileLanguage
from repro.targets.while_lang.memory import WhileConcreteMemory
from repro.testing.harness import SymbolicTester
from repro.testing.trace import TraceRecorder, explain_bug

LANG = WhileLanguage()


def record(source: str, entry: str = "main"):
    prog = LANG.compile(source)
    sm = ConcreteStateModel(LANG.concrete_memory())
    return TraceRecorder(prog, sm).run(entry)


class TestTraceRecorder:
    def test_records_every_command(self):
        trace = record("proc main() { x := 1; y := x + 1; return y; }")
        assert len(trace.steps) == 3
        assert trace.outcome.value == 2

    def test_store_deltas(self):
        trace = record("proc main() { x := 41; x := x + 1; return x; }")
        assert trace.steps[0].store_delta == {"x": 41}
        assert trace.steps[1].store_delta == {"x": 42}

    def test_calls_tracked_across_procs(self):
        trace = record(
            """
            proc double(n) { return n * 2; }
            proc main() { r := double(21); return r; }"""
        )
        procs = {s.proc for s in trace.steps}
        assert procs == {"main", "double"}

    def test_error_outcome_recorded(self):
        trace = record("proc main() { o := {}; x := o.missing; return x; }")
        assert trace.outcome.kind.name == "ERROR"
        assert trace.steps[-1].command.startswith("x := action lookup")

    def test_format_elides_long_traces(self):
        trace = record(
            """
            proc main() {
              i := 0;
              while (i < 20) { i := i + 1; }
              return i;
            }"""
        )
        text = trace.format(last=5)
        assert "earlier steps elided" in text
        assert "outcome: NORMAL" in text

    def test_format_shows_effects(self):
        trace = record("proc main() { x := 7; return x; }")
        assert "⇒ x = 7" in trace.steps[0].format()


class TestExplainBug:
    def test_explains_confirmed_bug(self):
        source = """
        proc main() {
          n := symb_int();
          assume(0 <= n and n <= 5);
          assert(n * n != 16);
        }"""
        prog = LANG.compile(source)
        result = SymbolicTester(LANG).run_test(prog, "main")
        assert result.verdict == "bug"
        report = explain_bug(LANG, prog, "main", result.bugs[0])
        assert "val_0_0 = 4" in report
        assert "assertion-failure" in report
        assert "trace (last" in report

    def test_explains_potential_bug_without_model(self):
        from repro.testing.harness import Bug

        bug = Bug(value="mystery", path_condition="pc", model=None, confirmed=False)
        report = explain_bug(LANG, LANG.compile("proc main() { skip; }"), "main", bug)
        assert "potential bug" in report

    def test_memory_bug_trace_ends_at_fault(self):
        source = """
        proc main() {
          o := { a: 1 };
          dispose(o);
          x := o.a;
          return x;
        }"""
        prog = LANG.compile(source)
        result = SymbolicTester(LANG).run_test(prog, "main")
        report = explain_bug(LANG, prog, "main", result.bugs[0])
        assert "missing-property" in report
