"""Cross-target differential fuzzing (the four-instantiation oracle).

One seeded, target-agnostic program shape per seed is lowered to
MiniWhile, MiniJS, MiniC and MiniRust sources with equivalent semantics
(:mod:`repro.testing.genprog`), then cross-checked three ways:

* **across targets** — the concrete outcome class (returned value,
  assertion failure, memory fault, or vanish) must be identical for all
  four lowerings on *every* input tuple of the bounded grid.  Each
  target runs the shape through its own parser, compiler and memory
  model, so agreement here exercises the full front-end stack of every
  instantiation against the other three;
* **across worker counts** — for every target, the symbolic finals at
  ``workers=2`` and ``workers=4`` must equal the sequential run's;
* **across execution arms** — compiled step closures vs the
  tree-walking interpreter, and a seeded transient fault plan
  (worker kills + injected action errors) that must recover to the
  fault-free finals, per target.

Every failure message carries the seed and a one-liner that reprints
the offending lowering, so failures reproduce from the terminal.
"""

import dataclasses

import pytest

from repro.engine.explorer import Explorer
from repro.engine.parallel import ParallelExplorer
from repro.engine.results import final_sort_key
from repro.state.symbolic import SymbolicStateModel
from repro.testing.faults import FaultPlan
from repro.testing.genprog import (
    CONFIG,
    CROSS_QUICK_SEEDS,
    CROSS_TARGETS,
    concrete_outcome,
    cross_languages,
    generate_cross_program,
    input_grid,
)

LANGS = cross_languages()

INTERP_CONFIG = dataclasses.replace(CONFIG, compiled=False)

#: fault shapes whose recovery must be exact (no solver timeouts)
EXACT_FAULT_KINDS = ("kill-raise", "kill-exit", "action")


def _compiled(seed):
    cp = generate_cross_program(seed)
    return cp, {t: LANGS[t].compile(cp.sources[t]) for t in CROSS_TARGETS}


def _finals(result):
    return sorted(final_sort_key(f) for f in result.finals)


def _sequential(target, prog, config=CONFIG):
    model = SymbolicStateModel(LANGS[target].symbolic_memory())
    return Explorer(prog, model, config).run("main")


def _parallel(target, prog, workers, config=CONFIG):
    model = SymbolicStateModel(LANGS[target].symbolic_memory())
    return ParallelExplorer(
        prog, model, config, workers=workers, seed_factor=1
    ).run("main")


class TestCrossGenerator:
    def test_same_seed_same_sources(self):
        assert generate_cross_program(11).sources == generate_cross_program(11).sources

    def test_seeds_vary(self):
        assert len({generate_cross_program(s).sources["rust"] for s in range(10)}) > 1

    def test_all_targets_compile_every_quick_seed(self):
        for seed in CROSS_QUICK_SEEDS:
            cp = generate_cross_program(seed)
            for target in CROSS_TARGETS:
                LANGS[target].compile(cp.sources[target])


class TestCrossTargetAgreement:
    @pytest.mark.parametrize("seed", CROSS_QUICK_SEEDS)
    def test_concrete_grid_agrees(self, seed):
        cp, progs = _compiled(seed)
        for values in input_grid(cp.num_inputs):
            outcomes = {
                t: concrete_outcome(LANGS[t], progs[t], values)
                for t in CROSS_TARGETS
            }
            assert len(set(outcomes.values())) == 1, (
                f"seed {seed}: targets disagree on inputs {values}: "
                f"{outcomes}\nreproduce each lowering with e.g.\n  "
                + "\n  ".join(cp.repro(t) for t in CROSS_TARGETS)
            )


class TestPerTargetEngineArms:
    @pytest.mark.parametrize("seed", CROSS_QUICK_SEEDS)
    @pytest.mark.parametrize("target", CROSS_TARGETS)
    def test_workers_parity(self, seed, target):
        cp, progs = _compiled(seed)
        reference = _finals(_sequential(target, progs[target]))
        for workers in (2, 4):
            par = _parallel(target, progs[target], workers)
            assert _finals(par) == reference, (
                f"seed {seed} [{target}]: workers={workers} finals differ "
                f"from sequential\nreproduce: {cp.repro(target)}"
            )

    @pytest.mark.parametrize("seed", CROSS_QUICK_SEEDS)
    @pytest.mark.parametrize("target", CROSS_TARGETS)
    def test_compiled_vs_interpreted(self, seed, target):
        cp, progs = _compiled(seed)
        compiled = _sequential(target, progs[target], CONFIG)
        interp = _sequential(target, progs[target], INTERP_CONFIG)
        assert interp.stats.fast_lane_steps == 0
        assert _finals(compiled) == _finals(interp), (
            f"seed {seed} [{target}]: compiled finals differ from "
            f"interpreted\nreproduce: {cp.repro(target)}"
        )

    @pytest.mark.parametrize("seed", CROSS_QUICK_SEEDS)
    @pytest.mark.parametrize("target", CROSS_TARGETS)
    def test_transient_fault_recovers(self, seed, target):
        cp, progs = _compiled(seed)
        reference = _finals(_parallel(target, progs[target], 2))
        plan = FaultPlan.random(
            seed, workers=2, max_step=12, kinds=EXACT_FAULT_KINDS
        )
        faulted = dataclasses.replace(
            CONFIG, fault_plan=plan, shard_retry_backoff=0.0
        )
        recovered = _parallel(target, progs[target], 2, faulted)
        assert recovered.report.complete, (
            f"seed {seed} [{target}]: transient fault not recovered "
            f"({recovered.report.summary()})\nplan: {plan!r}\n"
            f"reproduce: {cp.repro(target)}"
        )
        assert _finals(recovered) == reference, (
            f"seed {seed} [{target}]: recovered finals differ from "
            f"fault-free run\nplan: {plan!r}\nreproduce: {cp.repro(target)}"
        )
