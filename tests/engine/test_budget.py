"""Tests for the unified execution budget (repro.engine.budget)."""

from repro.engine.budget import Budget, StopReason
from repro.engine.config import EngineConfig
from repro.engine.explorer import Explorer
from repro.engine.results import ExecutionStats
from repro.gil.syntax import (
    Assignment,
    Goto,
    IfGoto,
    ISym,
    Proc,
    Prog,
    Return,
)
from repro.logic.expr import Lit, PVar
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import WhileSymbolicMemory


def prog_of(*procs):
    p = Prog()
    for proc in procs:
        p.add(proc)
    return p


def infinite_loop():
    return prog_of(
        Proc("main", (), (Assignment("x", Lit(0)), Goto(0), Return(PVar("x"))))
    )


def wide_branching(n=4):
    body = tuple(ISym(f"b{i}", i) for i in range(n))
    for i in range(n):
        body += (IfGoto(PVar(f"b{i}").eq(Lit(True)), len(body) + 1),)
    body += (Return(Lit("done")),)
    return prog_of(Proc("main", (), body))


def explore(prog, config):
    sm = SymbolicStateModel(WhileSymbolicMemory())
    return Explorer(prog, sm, config).run("main")


class TestFromConfig:
    def test_copies_every_bound(self):
        config = EngineConfig(
            max_steps_per_path=11, max_paths=22, max_total_steps=33, deadline=4.5
        )
        budget = Budget.from_config(config)
        assert budget.max_steps_per_path == 11
        assert budget.max_paths == 22
        assert budget.max_total_steps == 33
        assert budget.deadline == 4.5

    def test_deadline_defaults_off(self):
        assert Budget.from_config(EngineConfig()).deadline is None


class TestDecide:
    def test_continue_inside_all_bounds(self):
        decision = Budget().decide(ExecutionStats(), depth=0, pending=3, elapsed=0.0)
        assert decision.stop is None
        assert not decision.drop_path
        assert decision.evict == 0

    def test_total_steps_stops(self):
        budget = Budget(max_total_steps=10)
        stats = ExecutionStats(commands_executed=10)
        decision = budget.decide(stats, depth=0, pending=5, elapsed=0.0)
        assert decision.stop is StopReason.MAX_TOTAL_STEPS

    def test_deadline_stops(self):
        budget = Budget(deadline=1.0)
        decision = budget.decide(ExecutionStats(), depth=0, pending=0, elapsed=1.5)
        assert decision.stop is StopReason.DEADLINE

    def test_depth_bound_drops_path_only(self):
        budget = Budget(max_steps_per_path=4)
        decision = budget.decide(ExecutionStats(), depth=4, pending=2, elapsed=0.0)
        assert decision.stop is None
        assert decision.drop_path
        assert not decision.cap_hit

    def test_path_cap_evicts_overshoot(self):
        budget = Budget(max_paths=5)
        stats = ExecutionStats(paths_finished=3)
        # 3 finished + 1 popped + 4 pending = 8 prospective > 5: evict 3.
        decision = budget.decide(stats, depth=0, pending=4, elapsed=0.0)
        assert decision.stop is None
        assert not decision.drop_path
        assert decision.evict == 3

    def test_path_cap_drops_current_when_cap_reached(self):
        budget = Budget(max_paths=3)
        stats = ExecutionStats(paths_finished=3)
        decision = budget.decide(stats, depth=0, pending=2, elapsed=0.0)
        assert decision.drop_path and decision.cap_hit
        assert decision.evict == 2


class TestSchedulerIntegration:
    def test_exhausted_run_reports_exhausted(self):
        result = explore(wide_branching(), EngineConfig())
        assert result.stats.stop_reason == "exhausted"
        assert result.stats.paths_dropped == 0

    def test_total_step_stop_reason(self):
        result = explore(infinite_loop(), EngineConfig(max_total_steps=30))
        assert result.stats.commands_executed <= 30
        assert result.stats.stop_reason == "max-total-steps"

    def test_depth_drop_is_still_exhaustive(self):
        result = explore(infinite_loop(), EngineConfig(max_steps_per_path=50))
        assert result.stats.paths_dropped == 1
        assert result.stats.stop_reason == "exhausted"

    def test_deadline_stop_reason(self):
        result = explore(infinite_loop(), EngineConfig(deadline=0.0))
        assert result.stats.stop_reason == "deadline"
        # The popped item and any pending work count as dropped.
        assert result.stats.paths_dropped >= 1

    def test_max_paths_cap_counts_drops(self):
        result = explore(wide_branching(), EngineConfig(max_paths=3))
        assert result.stats.paths_finished <= 3
        assert result.stats.paths_dropped > 0

    def test_budget_object_overrides_config(self):
        sm = SymbolicStateModel(WhileSymbolicMemory())
        explorer = Explorer(
            infinite_loop(), sm, EngineConfig(), budget=Budget(max_total_steps=7)
        )
        result = explorer.run("main")
        assert result.stats.commands_executed <= 7
        assert result.stats.stop_reason == "max-total-steps"

    def test_eviction_is_strategy_deterministic(self):
        # Same strategy + same cap → same surviving finals, every run.
        outcomes = []
        for _ in range(2):
            result = explore(
                wide_branching(), EngineConfig(max_paths=3, strategy="bfs")
            )
            outcomes.append(sorted(repr(f.value) for f in result.finals))
        assert outcomes[0] == outcomes[1]


class _FakeTime:
    """A scripted stand-in for the explorer's ``time`` module."""

    def __init__(self, times):
        self._times = list(times)
        self._last = self._times[0]

    def perf_counter(self):
        if self._times:
            self._last = self._times.pop(0)
        return self._last


class TestDeadlineBetweenBranchAndPush:
    """The deadline can pass in the window after a branch's successors
    are pushed but before any of them is popped: the next pop's budget
    check must stop the run and count every pushed child as dropped."""

    def branching_once(self):
        # ISym (1 step) then IfGoto (branches in two), arms return.
        return prog_of(
            Proc(
                "main",
                (),
                (
                    ISym("b", 0),
                    IfGoto(PVar("b").lt(Lit(0)), 3),
                    Return(Lit("pos")),
                    Return(Lit("neg")),
                ),
            )
        )

    def run_with_clock(self, times, deadline):
        import repro.engine.explorer as explorer_mod

        sm = SymbolicStateModel(WhileSymbolicMemory())
        explorer = Explorer(
            self.branching_once(), sm, EngineConfig(deadline=deadline)
        )
        real_time = explorer_mod.time
        explorer_mod.time = _FakeTime(times)
        try:
            return explorer.run("main")
        finally:
            explorer_mod.time = real_time

    def test_deadline_after_branch_drops_all_children(self):
        # Clock script: start, decide(ISym), decide(IfGoto — the branch),
        # decide(first child) where the deadline has passed, final wall.
        result = self.run_with_clock([0.0, 0.2, 0.4, 1.5, 2.0], deadline=1.0)
        assert result.stats.stop_reason == "deadline"
        # Both branch children were pushed, then dropped unexplored.
        assert result.stats.commands_executed == 2
        assert result.stats.paths_dropped == 2
        assert result.finals == []

    def test_deadline_between_children_keeps_first_final(self):
        # One child gets explored before the clock passes the deadline;
        # the sibling is dropped.
        result = self.run_with_clock([0.0, 0.2, 0.4, 0.6, 1.5, 2.0], deadline=1.0)
        assert result.stats.stop_reason == "deadline"
        assert result.stats.commands_executed == 3
        assert result.stats.paths_finished == 1
        assert result.stats.paths_dropped == 1

    def test_generous_clock_exhausts(self):
        result = self.run_with_clock([0.0] * 12, deadline=1.0)
        assert result.stats.stop_reason == "exhausted"
        assert result.stats.paths_finished == 2
