"""Tests for the execution event bus (repro.engine.events)."""

import json

from repro.engine.events import (
    BranchEvent,
    EventBus,
    PathEndEvent,
    SolverQueryEvent,
    StepEvent,
    event_payload,
)
from repro.engine.explorer import Explorer
from repro.gil.syntax import IfGoto, ISym, Proc, Prog, Return
from repro.logic.expr import Lit, PVar
from repro.state.concrete import ConcreteStateModel
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import (
    WhileConcreteMemory,
    WhileSymbolicMemory,
)
from repro.testing.trace import JsonlEventSink


def branching_prog():
    body = (
        ISym("a", 0),
        IfGoto(PVar("a").eq(Lit(True)), 3),
        Return(Lit("a-false")),
        Return(Lit("a-true")),
    )
    prog = Prog()
    prog.add(Proc("main", (), body))
    return prog


class TestEventBus:
    def test_unsubscribed_bus_is_falsy(self):
        bus = EventBus()
        assert not bus
        bus.subscribe(lambda e: None)
        assert bus

    def test_unsubscribe_restores_falsy(self):
        bus = EventBus()
        cb = bus.subscribe(lambda e: None)
        bus.unsubscribe(cb)
        assert not bus

    def test_kind_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=[PathEndEvent])
        bus.emit(StepEvent("p", 0, 0, 1, 0))
        bus.emit(PathEndEvent("NORMAL", 3, 1))
        assert [type(e) for e in seen] == [PathEndEvent]

    def test_payload_shape(self):
        payload = event_payload(StepEvent("p", 2, 5, 1, 0))
        assert payload == {
            "event": "StepEvent",
            "proc": "p",
            "idx": 2,
            "depth": 5,
            "successors": 1,
            "finals": 0,
        }


class TestSchedulerEmission:
    def collect(self, prog, state_model):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        result = Explorer(prog, state_model, events=bus).run("main")
        return result, seen

    def test_step_events_match_commands(self):
        result, seen = self.collect(
            branching_prog(), SymbolicStateModel(WhileSymbolicMemory())
        )
        steps = [e for e in seen if isinstance(e, StepEvent)]
        assert len(steps) == result.stats.commands_executed

    def test_branch_and_path_end_events(self):
        result, seen = self.collect(
            branching_prog(), SymbolicStateModel(WhileSymbolicMemory())
        )
        branches = [e for e in seen if isinstance(e, BranchEvent)]
        ends = [e for e in seen if isinstance(e, PathEndEvent)]
        assert len(branches) == 1 and branches[0].arms == 2
        assert len(ends) == result.stats.paths_finished == 2
        assert {e.kind for e in ends} == {"NORMAL"}

    def test_solver_query_events_emitted(self):
        _, seen = self.collect(
            branching_prog(), SymbolicStateModel(WhileSymbolicMemory())
        )
        queries = [e for e in seen if isinstance(e, SolverQueryEvent)]
        assert queries
        assert all(q.result in ("SAT", "UNSAT", "UNKNOWN") for q in queries)

    def test_solver_wiring_restored_after_run(self):
        sm = SymbolicStateModel(WhileSymbolicMemory())
        bus = EventBus()
        bus.subscribe(lambda e: None)
        assert sm.solver.events is None
        Explorer(branching_prog(), sm, events=bus).run("main")
        assert sm.solver.events is None

    def test_concrete_run_emits_too(self):
        prog = Prog()
        prog.add(Proc("main", (), (Return(Lit(7)),)))
        result, seen = self.collect(prog, ConcreteStateModel(WhileConcreteMemory()))
        assert result.sole_outcome.value == 7
        assert any(isinstance(e, StepEvent) for e in seen)
        assert any(isinstance(e, PathEndEvent) for e in seen)


class TestJsonlSink:
    def test_writes_one_json_object_per_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        sm = SymbolicStateModel(WhileSymbolicMemory())
        with JsonlEventSink(str(path), bus) as sink:
            result = Explorer(branching_prog(), sm, events=bus).run("main")
            written = sink.events_written
        assert written > 0
        lines = path.read_text().strip().splitlines()
        assert len(lines) == written
        records = [json.loads(line) for line in lines]
        kinds = {r["event"] for r in records}
        assert "StepEvent" in kinds and "PathEndEvent" in kinds
        steps = [r for r in records if r["event"] == "StepEvent"]
        assert len(steps) == result.stats.commands_executed

    def test_close_unsubscribes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        sink = JsonlEventSink(str(path), bus)
        assert bus
        sink.close()
        assert not bus

    def test_kind_filtered_sink(self, tmp_path):
        path = tmp_path / "ends.jsonl"
        bus = EventBus()
        sm = SymbolicStateModel(WhileSymbolicMemory())
        with JsonlEventSink(str(path), bus, kinds=[PathEndEvent]):
            Explorer(branching_prog(), sm, events=bus).run("main")
        records = [json.loads(l) for l in path.read_text().strip().splitlines()]
        assert records and all(r["event"] == "PathEndEvent" for r in records)
