"""Tests for the execution event bus (repro.engine.events)."""

import json

from repro.engine.events import (
    BranchEvent,
    EventBus,
    PathEndEvent,
    ShardLostEvent,
    ShardRetryEvent,
    SolverQueryEvent,
    SolverUnknownEvent,
    StepEvent,
    event_payload,
)
from repro.engine.explorer import Explorer
from repro.gil.syntax import IfGoto, ISym, Proc, Prog, Return
from repro.logic.expr import Lit, PVar
from repro.state.concrete import ConcreteStateModel
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import (
    WhileConcreteMemory,
    WhileSymbolicMemory,
)
from repro.testing.trace import JsonlEventSink


def branching_prog():
    body = (
        ISym("a", 0),
        IfGoto(PVar("a").eq(Lit(True)), 3),
        Return(Lit("a-false")),
        Return(Lit("a-true")),
    )
    prog = Prog()
    prog.add(Proc("main", (), body))
    return prog


class TestEventBus:
    def test_unsubscribed_bus_is_falsy(self):
        bus = EventBus()
        assert not bus
        bus.subscribe(lambda e: None)
        assert bus

    def test_unsubscribe_restores_falsy(self):
        bus = EventBus()
        cb = bus.subscribe(lambda e: None)
        bus.unsubscribe(cb)
        assert not bus

    def test_kind_filter(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=[PathEndEvent])
        bus.emit(StepEvent("p", 0, 0, 1, 0))
        bus.emit(PathEndEvent("NORMAL", 3, 1))
        assert [type(e) for e in seen] == [PathEndEvent]

    def test_payload_shape(self):
        payload = event_payload(StepEvent("p", 2, 5, 1, 0))
        assert payload == {
            "event": "StepEvent",
            "proc": "p",
            "idx": 2,
            "depth": 5,
            "successors": 1,
            "finals": 0,
        }


class TestSchedulerEmission:
    def collect(self, prog, state_model):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append)
        result = Explorer(prog, state_model, events=bus).run("main")
        return result, seen

    def test_step_events_match_commands(self):
        result, seen = self.collect(
            branching_prog(), SymbolicStateModel(WhileSymbolicMemory())
        )
        steps = [e for e in seen if isinstance(e, StepEvent)]
        assert len(steps) == result.stats.commands_executed

    def test_branch_and_path_end_events(self):
        result, seen = self.collect(
            branching_prog(), SymbolicStateModel(WhileSymbolicMemory())
        )
        branches = [e for e in seen if isinstance(e, BranchEvent)]
        ends = [e for e in seen if isinstance(e, PathEndEvent)]
        assert len(branches) == 1 and branches[0].arms == 2
        assert len(ends) == result.stats.paths_finished == 2
        assert {e.kind for e in ends} == {"NORMAL"}

    def test_solver_query_events_emitted(self):
        _, seen = self.collect(
            branching_prog(), SymbolicStateModel(WhileSymbolicMemory())
        )
        queries = [e for e in seen if isinstance(e, SolverQueryEvent)]
        assert queries
        assert all(q.result in ("SAT", "UNSAT", "UNKNOWN") for q in queries)

    def test_solver_wiring_restored_after_run(self):
        sm = SymbolicStateModel(WhileSymbolicMemory())
        bus = EventBus()
        bus.subscribe(lambda e: None)
        assert sm.solver.events is None
        Explorer(branching_prog(), sm, events=bus).run("main")
        assert sm.solver.events is None

    def test_concrete_run_emits_too(self):
        prog = Prog()
        prog.add(Proc("main", (), (Return(Lit(7)),)))
        result, seen = self.collect(prog, ConcreteStateModel(WhileConcreteMemory()))
        assert result.sole_outcome.value == 7
        assert any(isinstance(e, StepEvent) for e in seen)
        assert any(isinstance(e, PathEndEvent) for e in seen)


class TestFaultToleranceEvents:
    def test_solver_unknown_payload_shape(self):
        payload = event_payload(
            SolverUnknownEvent(reason="timeout", conjuncts=4, timed_out=True)
        )
        assert payload == {
            "event": "SolverUnknownEvent",
            "reason": "timeout",
            "conjuncts": 4,
            "timed_out": True,
        }

    def test_shard_retry_payload_shape(self):
        payload = event_payload(
            ShardRetryEvent(worker_id=1, attempt=0, items=3, detail="boom")
        )
        assert payload == {
            "event": "ShardRetryEvent",
            "worker_id": 1,
            "attempt": 0,
            "items": 3,
            "detail": "boom",
        }

    def test_shard_lost_payload_shape(self):
        payload = event_payload(ShardLostEvent(worker_id=0, attempt=2, items=5))
        assert payload == {
            "event": "ShardLostEvent",
            "worker_id": 0,
            "attempt": 2,
            "items": 5,
        }

    def test_forced_solver_timeout_emits_unknown_event(self):
        from repro.engine.config import EngineConfig
        from repro.testing.faults import FaultPlan, SolverTimeout

        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=[SolverUnknownEvent])
        sm = SymbolicStateModel(WhileSymbolicMemory())
        config = EngineConfig(
            fault_plan=FaultPlan(solver_timeouts=(SolverTimeout(0),))
        )
        Explorer(branching_prog(), sm, config, events=bus).run("main")
        assert seen
        assert seen[0].reason == "timeout" and seen[0].timed_out

    def test_shard_retry_event_on_transient_worker_kill(self):
        from repro.engine.config import EngineConfig
        from repro.engine.parallel import ParallelExplorer
        from repro.testing.faults import FaultPlan, WorkerKill

        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=[ShardRetryEvent, ShardLostEvent])
        plan = FaultPlan(kills=(WorkerKill(worker=0, at_step=0),))
        config = EngineConfig(fault_plan=plan, shard_retry_backoff=0.0)
        sm = SymbolicStateModel(WhileSymbolicMemory())
        result = ParallelExplorer(
            branching_prog(), sm, config, events=bus, workers=2, seed_factor=1
        ).run("main")
        retries = [e for e in seen if isinstance(e, ShardRetryEvent)]
        assert retries and retries[0].worker_id == 0
        assert not [e for e in seen if isinstance(e, ShardLostEvent)]
        assert result.stats.stop_reason == "exhausted"

    def test_shard_lost_event_on_permanent_worker_kill(self):
        from repro.engine.config import EngineConfig
        from repro.engine.parallel import ParallelExplorer
        from repro.testing.faults import FaultPlan, WorkerKill

        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=[ShardLostEvent])
        plan = FaultPlan(kills=(WorkerKill(worker=0, at_step=0, attempts=99),))
        config = EngineConfig(
            fault_plan=plan, max_shard_retries=1, shard_retry_backoff=0.0
        )
        sm = SymbolicStateModel(WhileSymbolicMemory())
        result = ParallelExplorer(
            branching_prog(), sm, config, events=bus, workers=2, seed_factor=1
        ).run("main")
        assert seen and seen[0].items > 0
        assert result.stats.stop_reason == "incomplete"


class TestJsonlSink:
    def test_writes_one_json_object_per_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        sm = SymbolicStateModel(WhileSymbolicMemory())
        with JsonlEventSink(str(path), bus) as sink:
            result = Explorer(branching_prog(), sm, events=bus).run("main")
            written = sink.events_written
        assert written > 0
        lines = path.read_text().strip().splitlines()
        assert len(lines) == written
        records = [json.loads(line) for line in lines]
        kinds = {r["event"] for r in records}
        assert "StepEvent" in kinds and "PathEndEvent" in kinds
        steps = [r for r in records if r["event"] == "StepEvent"]
        assert len(steps) == result.stats.commands_executed

    def test_close_unsubscribes(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        bus = EventBus()
        sink = JsonlEventSink(str(path), bus)
        assert bus
        sink.close()
        assert not bus

    def test_kind_filtered_sink(self, tmp_path):
        path = tmp_path / "ends.jsonl"
        bus = EventBus()
        sm = SymbolicStateModel(WhileSymbolicMemory())
        with JsonlEventSink(str(path), bus, kinds=[PathEndEvent]):
            Explorer(branching_prog(), sm, events=bus).run("main")
        records = [json.loads(l) for l in path.read_text().strip().splitlines()]
        assert records and all(r["event"] == "PathEndEvent" for r in records)
