"""Differential fuzzing of compositional execution (repro.specs).

A seeded call-heavy generator (:func:`repro.testing.genprog.
generate_call_program`) builds multi-procedure GIL programs — pure
helpers with branching arithmetic and nested static calls, impure
helpers that allocate and mutate objects, a ``main`` mixing repeated
calls between ordinary statements — and every seed is cross-checked:

* **summaries-on vs -off** — the multiset of finals must be identical
  with ``summaries=True`` under both execution arms (compiled and
  interpreted) and under ``workers=2``: replaying a recorded summary at
  a call site must be observationally equal to inline descent
  (``docs/summaries.md`` §replay soundness);
* **engagement** — across the corpus, summaries must actually fire
  (cached-call replays, not silent inline fallback), so the equality
  above tests the replay path rather than an idle engine;
* **incorrectness mode** — error finals found with under-approximate
  summaries must be a submultiset of the fault-free finals (drop paths
  freely, never widen).

Every comparison is restricted to exhaustive runs: a budget-cut run's
final set depends on exploration order, which summaries legitimately
change.  The generator is sized so all seeds explore exhaustively; the
assertion below enforces it rather than assuming it.

Seeds are fixed; reproduce any failure with the seed in its message.
"""

import dataclasses

import pytest

from repro.engine.explorer import Explorer
from repro.engine.parallel import ParallelExplorer
from repro.engine.results import final_sort_key
from repro.specs.cache import clear_summary_cache
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import WhileSymbolicMemory
from repro.testing.genprog import (
    CONFIG,
    LONG_SEEDS,
    QUICK_SEEDS,
    generate_call_program,
)

SUMMARY_CONFIG = dataclasses.replace(CONFIG, summaries=True)


def _finals_multiset(result):
    return sorted(final_sort_key(f) for f in result.finals)


def _run(prog, config, workers=1):
    """One cold-cache exploration of ``prog`` under ``config``."""
    clear_summary_cache()
    sm = SymbolicStateModel(WhileSymbolicMemory())
    if workers == 1:
        return Explorer(prog, sm, config).run("main")
    return ParallelExplorer(
        prog, sm, config, workers=workers, seed_factor=1
    ).run("main")


def assert_summaries_match(seed: int) -> int:
    """On/off equality across both arms; returns the replay count."""
    prog = generate_call_program(seed)
    base = _run(prog, CONFIG)
    assert base.stats.stop_reason == "exhausted", (
        f"seed {seed}: baseline not exhaustive "
        f"({base.stats.stop_reason}); shrink the generator"
    )
    expected = _finals_multiset(base)
    replays = 0
    for compiled in (True, False):
        config = dataclasses.replace(SUMMARY_CONFIG, compiled=compiled)
        result = _run(prog, config)
        arm = "compiled" if compiled else "interpreted"
        assert result.stats.stop_reason == "exhausted", (
            f"seed {seed}: summaries-on ({arm}) not exhaustive"
        )
        assert _finals_multiset(result) == expected, (
            f"seed {seed}: summaries-on finals differ ({arm} arm)\n"
            f"program:\n{prog!r}"
        )
        replays += result.stats.summary_replays
    return replays


def assert_parallel_matches(seed: int) -> None:
    prog = generate_call_program(seed)
    base = _run(prog, CONFIG)
    par = _run(prog, SUMMARY_CONFIG, workers=2)
    assert _finals_multiset(par) == _finals_multiset(base), (
        f"seed {seed}: workers=2 summaries-on finals differ\n"
        f"program:\n{prog!r}"
    )
    assert par.stats.stop_reason == base.stats.stop_reason


def assert_incorrectness_narrows(seed: int) -> None:
    """Under-approximate runs drop paths but never invent them."""
    prog = generate_call_program(seed)
    base = _run(prog, CONFIG)
    assert base.stats.stop_reason == "exhausted", f"seed {seed}"
    partial_config = dataclasses.replace(
        SUMMARY_CONFIG, summary_mode="incorrectness", summary_max_paths=2
    )
    partial = _run(prog, partial_config)
    remaining = _finals_multiset(base)
    for entry in _finals_multiset(partial):
        assert entry in remaining, (
            f"seed {seed}: incorrectness mode widened the path set "
            f"(extra final {entry!r})\nprogram:\n{prog!r}"
        )
        remaining.remove(entry)


class TestSummariesFuzz:
    def test_on_off_equality_and_engagement(self):
        total_replays = 0
        for seed in QUICK_SEEDS:
            total_replays += assert_summaries_match(seed)
        # The corpus as a whole must exercise replay, or the equality
        # checks above were vacuous.
        assert total_replays > len(list(QUICK_SEEDS)), (
            f"only {total_replays} replays across the corpus — "
            f"the generator stopped producing summarisable calls"
        )

    @pytest.mark.parametrize("seed", list(QUICK_SEEDS)[::10])
    def test_parallel_matches(self, seed):
        assert_parallel_matches(seed)

    @pytest.mark.parametrize("seed", list(QUICK_SEEDS)[::5])
    def test_incorrectness_never_widens(self, seed):
        assert_incorrectness_narrows(seed)


@pytest.mark.slow
class TestSummariesFuzzLong:
    """The soak ranges (``make fuzz-summaries`` / ``pytest -m slow``)."""

    @pytest.mark.parametrize("seed", LONG_SEEDS)
    def test_on_off_equality(self, seed):
        assert_summaries_match(seed)

    @pytest.mark.parametrize("seed", list(LONG_SEEDS)[::16])
    def test_parallel_matches(self, seed):
        assert_parallel_matches(seed)

    @pytest.mark.parametrize("seed", list(LONG_SEEDS)[::8])
    def test_incorrectness_never_widens(self, seed):
        assert_incorrectness_narrows(seed)
