"""Tests for parallel exploration (repro.engine.parallel) and the
pickle-safety layer underneath it: expression re-interning, path-condition
delta re-linking, state serialization, and the deterministic merge."""

import pickle

import pytest

from repro.engine.budget import Budget
from repro.engine.config import EngineConfig
from repro.engine.events import EventBus, WorkerEvent, event_payload
from repro.engine.explorer import Explorer
from repro.engine.parallel import (
    ParallelExplorer,
    SymbolicModelFactory,
    WorkerError,
    model_factory_for,
    resolve_workers,
)
from repro.engine.results import (
    ExecutionResult,
    ExecutionStats,
    final_sort_key,
    merge_results,
)
from repro.gil.syntax import (
    Assignment,
    Fail,
    Goto,
    IfGoto,
    ISym,
    Proc,
    Prog,
    Return,
)
from repro.logic.expr import BinOpExpr, Lit, LVar, PVar, intern_table_sizes
from repro.logic.pathcond import PathCondition
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import WhileSymbolicMemory


def prog_of(*procs):
    p = Prog()
    for proc in procs:
        p.add(proc)
    return p


def branching_prog(levels=3):
    """A binary tree of iSym branches, 2**levels leaves plus error paths."""
    body = ()
    for i in range(levels):
        body += (ISym(f"b{i}", i),)
    for i in range(levels):
        body += (IfGoto(PVar(f"b{i}").lt(Lit(0)), 2 * levels + 1),)
    body += (Return(Lit("ok")), Fail(Lit("neg")))
    return prog_of(Proc("main", (), body))


def sym_model():
    return SymbolicStateModel(WhileSymbolicMemory())


def keys(result):
    """The finals multiset in canonical order (sequential runs report
    discovery order; the parallel merge reports sorted order)."""
    return sorted(final_sort_key(f) for f in result.finals)


class TestResolveWorkers:
    def test_defaults_and_ints(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1
        assert resolve_workers(4) == 4
        assert resolve_workers("3") == 3

    def test_auto_is_cpu_count(self):
        import os

        assert resolve_workers("auto") == max(1, os.cpu_count() or 1)
        assert resolve_workers(" AUTO ") == resolve_workers("auto")

    @pytest.mark.parametrize("bad", [0, -2, "zero", "1.5", 2.5, True])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValueError):
            resolve_workers(bad)


class TestExprPickling:
    def test_round_trip_re_interns_to_same_object(self):
        e = (LVar("x") + Lit(1)).lt(PVar("y"))
        clone = pickle.loads(pickle.dumps(e))
        assert clone is e  # hash-consing: same process, same node

    def test_round_trip_does_not_grow_intern_tables(self):
        e = BinOpExpr.__mro__ and (LVar("p") * Lit(7)).eq(Lit(0))
        pickle.loads(pickle.dumps(e))  # populate once
        before = intern_table_sizes()
        for _ in range(3):
            pickle.loads(pickle.dumps(e))
        assert intern_table_sizes() == before


class TestPathConditionPickling:
    def chain(self):
        pc = PathCondition.true()
        pc = pc.conjoin(LVar("a").lt(Lit(10)))
        pc = pc.conjoin_all([LVar("b").eq(Lit(2)), LVar("c").neq(Lit(3))])
        pc = pc.conjoin(LVar("a").lt(Lit(10)))  # dedup: no new node
        return pc.conjoin(LVar("d").lt(LVar("a")))

    def test_round_trip_equal_same_order(self):
        pc = self.chain()
        clone = pickle.loads(pickle.dumps(pc))
        assert clone == pc
        assert clone.conjuncts == pc.conjuncts

    def test_round_trip_preserves_delta_structure(self):
        pc = self.chain()
        clone = pickle.loads(pickle.dumps(pc))
        def deltas(node):
            out = []
            while node is not None:
                out.append(node.added)
                node = node.parent
            return out
        assert deltas(clone) == deltas(pc)

    def test_true_round_trips_to_the_shared_root(self):
        clone = pickle.loads(pickle.dumps(PathCondition.true()))
        assert clone is PathCondition.true()

    def test_deep_chain_round_trips_without_recursion_error(self):
        pc = PathCondition.true()
        for i in range(3000):
            pc = pc.conjoin(LVar("n").neq(Lit(i)))
        clone = pickle.loads(pickle.dumps(pc))
        assert clone == pc


class TestStatePickling:
    def final_states(self):
        result = Explorer(branching_prog(), sym_model(), EngineConfig()).run("main")
        assert result.finals
        return [fin.state for fin in result.finals]

    def test_symbolic_state_round_trips(self):
        for state in self.final_states():
            clone = pickle.loads(pickle.dumps(state))
            assert dict(clone.store) == dict(state.store)
            assert clone.alloc == state.alloc
            assert clone.pc == state.pc
            assert clone.memory == state.memory

    def test_concrete_state_round_trips(self):
        from repro.state.concrete import ConcreteStateModel
        from repro.targets.while_lang.memory import WhileConcreteMemory

        sm = ConcreteStateModel(WhileConcreteMemory())
        prog = prog_of(
            Proc("main", (), (Assignment("x", Lit(41)), Return(PVar("x") + Lit(1))))
        )
        result = Explorer(prog, sm).run("main")
        state = result.sole_outcome.state
        clone = pickle.loads(pickle.dumps(state))
        assert dict(clone.store) == dict(state.store)
        assert clone.alloc == state.alloc


class TestDeterministicMerge:
    def test_any_partition_merges_to_the_same_result(self):
        result = Explorer(branching_prog(), sym_model(), EngineConfig()).run("main")
        finals = result.finals
        whole = merge_results([ExecutionResult(list(finals), ExecutionStats())])
        # Split the finals across fake "shards" in two different ways.
        for split in (2, 3):
            parts = [
                ExecutionResult(finals[i::split], ExecutionStats())
                for i in range(split)
            ]
            merged = merge_results(parts)
            assert keys(merged) == keys(whole)

    def test_merge_aggregates_stats(self):
        a = ExecutionResult([], ExecutionStats(commands_executed=3, stop_reason="exhausted"))
        b = ExecutionResult([], ExecutionStats(commands_executed=4, stop_reason="deadline"))
        merged = merge_results([a, b])
        assert merged.stats.commands_executed == 7
        assert merged.stats.stop_reason == "deadline"


class _ExplodingFactory:
    """A picklable factory that fails inside the worker process."""

    def __call__(self):
        raise RuntimeError("boom in worker")


class TestParallelExplorer:
    def run_at(self, workers, seed_factor=1, levels=3, **config_kw):
        prog = branching_prog(levels)
        config = EngineConfig(**config_kw)
        if workers == 1:
            return Explorer(prog, sym_model(), config).run("main")
        return ParallelExplorer(
            prog, sym_model(), config, workers=workers, seed_factor=seed_factor
        ).run("main")

    def test_worker_counts_agree_with_sequential(self):
        reference = self.run_at(1)
        for workers in (2, 3, 4):
            result = self.run_at(workers)
            assert keys(result) == keys(reference), f"workers={workers}"
            assert result.stats.stop_reason == "exhausted"

    def test_stats_commands_match_sequential(self):
        # Every GIL command is stepped exactly once no matter the sharding.
        reference = self.run_at(1)
        result = self.run_at(2)
        assert result.stats.commands_executed == reference.stats.commands_executed
        assert result.stats.paths_finished == reference.stats.paths_finished

    def test_workers_one_is_plain_sequential(self):
        prog = branching_prog()
        result = ParallelExplorer(prog, sym_model(), EngineConfig(), workers=1).run(
            "main"
        )
        assert keys(result) == keys(self.run_at(1))

    def test_program_finishing_during_seeding(self):
        # A straight-line program never builds a frontier: the parallel
        # explorer must fall back to the seed result (no workers spawned).
        prog = prog_of(Proc("main", (), (Assignment("x", Lit(1)), Return(PVar("x")))))
        result = ParallelExplorer(prog, sym_model(), EngineConfig(), workers=4).run(
            "main"
        )
        assert [f.value for f in result.finals] == [Lit(1)]
        assert result.stats.stop_reason == "exhausted"

    def test_config_workers_field_is_honoured(self):
        prog = branching_prog()
        explorer = ParallelExplorer(prog, sym_model(), EngineConfig(workers=2))
        assert explorer.workers == 2

    def test_malformed_strategy_fails_in_parent(self):
        with pytest.raises(ValueError):
            ParallelExplorer(
                branching_prog(), sym_model(), EngineConfig(), workers=2,
                strategy="random:notanint",
            )

    def test_events_are_forwarded_with_worker_ids(self):
        bus = EventBus()
        seen = []
        bus.subscribe(lambda ev: seen.append(ev))
        prog = branching_prog()
        ParallelExplorer(
            prog, sym_model(), EngineConfig(), events=bus, workers=2, seed_factor=1
        ).run("main")
        worker_events = [e for e in seen if isinstance(e, WorkerEvent)]
        assert worker_events
        assert {e.worker_id for e in worker_events} <= {0, 1}
        payload = event_payload(worker_events[0])
        assert "worker_id" in payload and payload["event"] != "WorkerEvent"

    def test_worker_failure_raises_under_shard_failure_raise(self):
        prog = branching_prog()
        explorer = ParallelExplorer(
            prog, sym_model(), EngineConfig(shard_failure="raise"),
            workers=2, seed_factor=1, factory=_ExplodingFactory(),
        )
        with pytest.raises(WorkerError, match="boom in worker"):
            explorer.run("main")

    def test_worker_failure_degrades_to_incomplete_by_default(self):
        # Every worker explodes on every attempt, so retries exhaust and
        # the run downgrades: "incomplete" stop reason, the abandoned
        # frontier reported, and the ledger counting retries and losses.
        prog = branching_prog()
        config = EngineConfig(max_shard_retries=1, shard_retry_backoff=0.0)
        explorer = ParallelExplorer(
            prog, sym_model(), config, workers=2, seed_factor=1,
            factory=_ExplodingFactory(),
        )
        result = explorer.run("main")
        assert result.stats.stop_reason == "incomplete"
        inc = result.stats.incompleteness
        assert inc.shards_retried >= 1
        assert inc.shards_lost >= 1
        assert inc.frontier_lost == len(result.lost_frontier) > 0
        assert not result.report.complete

    def test_model_factory_for_symbolic(self):
        factory = model_factory_for(sym_model(), EngineConfig())
        assert isinstance(factory, SymbolicModelFactory)
        rebuilt = pickle.loads(pickle.dumps(factory))()
        assert isinstance(rebuilt, SymbolicStateModel)

    def test_model_factory_rejects_unknown_models(self):
        with pytest.raises(TypeError):
            model_factory_for(object(), EngineConfig())


class TestBudgetSlicing:
    def test_shard_slice_divides_remaining_bounds(self):
        budget = Budget(max_paths=10, max_total_steps=100, deadline=9.0,
                        max_steps_per_path=7)
        sliced = budget.shard_slice(3, steps_spent=10, paths_found=1, elapsed=1.0)
        assert sliced.max_total_steps == 30  # ceil(90 / 3)
        assert sliced.max_paths == 3         # ceil(9 / 3)
        assert sliced.deadline == 8.0
        assert sliced.max_steps_per_path == 7  # path-local: passes through

    def test_shard_sum_covers_the_remainder(self):
        budget = Budget(max_total_steps=10)
        sliced = budget.shard_slice(3)
        assert sliced.max_total_steps * 3 >= 10

    def test_bounded_parallel_run_reports_restrictive_reason(self):
        prog = prog_of(
            Proc(
                "main",
                (),
                (
                    ISym("b", 0),
                    IfGoto(PVar("b").lt(Lit(0)), 3),
                    Goto(1),  # both arms loop forever
                    Goto(1),
                ),
            )
        )
        result = ParallelExplorer(
            prog, sym_model(), EngineConfig(max_total_steps=200),
            workers=2, seed_factor=1,
        ).run("main")
        assert result.stats.stop_reason == "max-total-steps"


class TestHarnessIntegration:
    def test_tester_verdicts_match_across_worker_counts(self):
        from repro.targets.while_lang import WhileLanguage
        from repro.testing.harness import SymbolicTester

        src = """
        proc main() {
          x := symb_int();
          assume(0 <= x and x <= 20);
          if (x < 10) { r := 1; } else { r := 2; }
          assert(not (x = 13));
          return r;
        }
        """
        lang = WhileLanguage()
        seq = SymbolicTester(lang).run_source(src, "main")
        par = SymbolicTester(lang, workers=2).run_source(src, "main")
        assert seq.verdict == par.verdict == "bug"
        assert len(seq.bugs) == len(par.bugs) == 1
        assert par.bugs[0].confirmed  # counter-model replay across pickling
