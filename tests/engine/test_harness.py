"""Tests for the symbolic testing harness (repro.testing.harness)."""

import pytest

from repro.engine.config import EngineConfig
from repro.targets.while_lang import WhileLanguage
from repro.testing.harness import Bug, SuiteResult, SymbolicTester, TestResult

LANG = WhileLanguage()


class TestVerdicts:
    def test_passing_test(self):
        result = SymbolicTester(LANG).run_source(
            "proc main() { assert(1 < 2); }", "main"
        )
        assert result.passed
        assert result.verdict == "bounded-verified"
        assert result.bugs == []

    def test_confirmed_bug(self):
        result = SymbolicTester(LANG).run_source(
            """
            proc main() {
              n := symb_int();
              assume(0 <= n and n <= 2);
              assert(n != 2);
            }""",
            "main",
        )
        assert result.verdict == "bug"
        bug = result.bugs[0]
        assert bug.model == {"val_0_0": 2}
        assert bug.confirmed
        assert bug.concrete_value is not None

    def test_replay_disabled(self):
        tester = SymbolicTester(LANG, replay=False)
        result = tester.run_source(
            "proc main() { n := symb_int(); assert(n != 0); }", "main"
        )
        assert not result.passed
        assert result.bugs[0].model is not None
        assert not result.bugs[0].confirmed  # replay was skipped

    def test_potential_bug_verdict_without_model(self):
        bug = Bug(value="x", path_condition=None, model=None, confirmed=False)
        result = TestResult("t", [bug], stats=None, paths=1)
        assert result.verdict == "potential-bug"


class TestReplayScripting:
    def test_replay_model_reproduces_error(self):
        tester = SymbolicTester(LANG)
        prog = LANG.compile(
            """
            proc main() {
              a := symb_int();
              b := symb_int();
              assume(0 <= a and a <= 3 and 0 <= b and b <= 3);
              assert(a + b != 5);
            }"""
        )
        result = tester.run_test(prog, "main")
        assert result.verdict == "bug"
        for bug in result.bugs:
            assert bug.confirmed
            assert bug.model["val_0_0"] + bug.model["val_1_0"] == 5

    def test_replay_with_wrong_model_no_error(self):
        tester = SymbolicTester(LANG)
        prog = LANG.compile(
            """
            proc main() {
              n := symb_int();
              assert(n != 7);
            }"""
        )
        # A model avoiding the bug must not reproduce it.
        assert tester.replay_model(prog, "main", {"val_0_0": 3}) is None
        assert tester.replay_model(prog, "main", {"val_0_0": 7}) is not None


class TestSuiteResult:
    def _result(self, name, passed):
        from repro.engine.results import ExecutionStats

        bugs = [] if passed else [Bug("v", None, None, False)]
        stats = ExecutionStats(commands_executed=10, wall_time=0.1)
        return TestResult(name, bugs, stats, paths=1)

    def test_aggregation(self):
        suite = SuiteResult("demo")
        suite.results.append(self._result("t1", True))
        suite.results.append(self._result("t2", False))
        assert suite.tests == 2
        assert suite.commands == 20
        assert suite.time == pytest.approx(0.2)
        assert [r.name for r in suite.failures] == ["t2"]


class TestEngineConfigPropagation:
    def test_solver_cache_disabled_in_baseline(self):
        from repro.engine.config import javert2_baseline

        tester = SymbolicTester(LANG, config=javert2_baseline())
        solver = tester.make_solver()
        assert not solver.cache_enabled
        assert not solver.simplifier.memoise

    def test_default_config_caches(self):
        tester = SymbolicTester(LANG)
        solver = tester.make_solver()
        assert solver.cache_enabled


class TestEnumerateModels:
    def test_multiple_witnesses(self):
        tester = SymbolicTester(LANG)
        result = tester.run_source(
            """
            proc main() {
              n := symb_int();
              assume(0 <= n and n <= 20);
              assert(n < 10);
            }""",
            "main",
        )
        assert result.verdict == "bug"
        models = tester.enumerate_models(result.bugs[0], count=4)
        assert len(models) == 4
        values = {m["val_0_0"] for m in models}
        assert len(values) == 4
        assert all(10 <= v <= 20 for v in values)

    def test_unique_witness_stops_early(self):
        tester = SymbolicTester(LANG)
        result = tester.run_source(
            """
            proc main() {
              n := symb_int();
              assume(0 <= n and n <= 20);
              assert(n != 13);
            }""",
            "main",
        )
        models = tester.enumerate_models(result.bugs[0], count=5)
        assert [m["val_0_0"] for m in models] == [13]
