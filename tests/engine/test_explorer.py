"""Tests for the symbolic execution driver (repro.engine.explorer)."""

import pytest

from repro.engine.config import EngineConfig, gillian, javert2_baseline
from repro.engine.explorer import Explorer
from repro.engine.results import ExecutionResult, ExecutionStats
from repro.gil.semantics import OutcomeKind
from repro.gil.syntax import (
    Assignment,
    Goto,
    IfGoto,
    ISym,
    Proc,
    Prog,
    Return,
    Vanish,
)
from repro.logic.expr import Lit, PVar
from repro.state.concrete import ConcreteStateModel
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import WhileConcreteMemory, WhileSymbolicMemory


def prog_of(*procs):
    p = Prog()
    for proc in procs:
        p.add(proc)
    return p


def symbolic_explorer(prog, config=None):
    return Explorer(prog, SymbolicStateModel(WhileSymbolicMemory()), config)


class TestBounds:
    def _infinite_loop(self):
        return prog_of(
            Proc("main", (), (Assignment("x", Lit(0)), Goto(0), Return(PVar("x"))))
        )

    def test_step_bound_drops_path(self):
        config = EngineConfig(max_steps_per_path=50)
        result = symbolic_explorer(self._infinite_loop(), config).run("main")
        assert result.finals == []
        assert result.stats.paths_dropped == 1

    def test_total_step_bound(self):
        config = EngineConfig(max_total_steps=30)
        result = symbolic_explorer(self._infinite_loop(), config).run("main")
        assert result.stats.commands_executed <= 30

    def _wide_branching(self, n=4):
        # n symbolic booleans → 2^n normal paths.
        body = tuple(ISym(f"b{i}", i) for i in range(n))
        for i in range(n):
            body += (IfGoto(PVar(f"b{i}").eq(Lit(True)), len(body) + 1),)
        body += (Return(Lit("done")),)
        return prog_of(Proc("main", (), body))

    def test_max_paths_caps_and_counts_drops(self):
        config = EngineConfig(max_paths=3)
        result = symbolic_explorer(self._wide_branching(), config).run("main")
        assert result.stats.paths_finished <= 3
        assert result.stats.paths_dropped > 0

    def test_max_paths_not_hit_drops_nothing(self):
        config = EngineConfig(max_paths=100_000)
        result = symbolic_explorer(self._wide_branching(), config).run("main")
        assert result.stats.paths_dropped == 0
        assert result.stats.paths_finished == 16

    def test_branching_explores_all_paths(self):
        # Two symbolic booleans → up to 4 normal paths.
        body = (
            ISym("a", 0),
            ISym("b", 1),
            IfGoto(PVar("a").eq(Lit(True)), 4),
            Return(Lit("a-false")),
            IfGoto(PVar("b").eq(Lit(True)), 6),
            Return(Lit("b-false")),
            Return(Lit("both-true")),
        )
        prog = prog_of(Proc("main", (), body))
        result = symbolic_explorer(prog).run("main")
        values = sorted(f.value.value for f in result.normal)
        assert values == ["a-false", "b-false", "both-true"]


class TestStats:
    def test_command_count(self):
        prog = prog_of(Proc("main", (), (Assignment("x", Lit(1)), Return(PVar("x")))))
        result = symbolic_explorer(prog).run("main")
        assert result.stats.commands_executed == 2

    def test_vanish_counted(self):
        prog = prog_of(Proc("main", (), (Vanish(),)))
        result = symbolic_explorer(prog).run("main")
        assert result.stats.paths_vanished == 1
        assert result.stats.paths_finished == 0

    def test_solver_stats_tracked(self):
        body = (
            ISym("a", 0),
            IfGoto(PVar("a").eq(Lit(1)), 3),
            Return(Lit(0)),
            Return(Lit(1)),
        )
        prog = prog_of(Proc("main", (), body))
        result = symbolic_explorer(prog).run("main")
        assert result.stats.solver_queries > 0

    def test_stats_merge(self):
        a = ExecutionStats(commands_executed=2, paths_finished=1, wall_time=0.5)
        b = ExecutionStats(commands_executed=3, paths_finished=2, wall_time=0.25)
        a.merge(b)
        assert a.commands_executed == 5
        assert a.paths_finished == 3
        assert a.wall_time == 0.75


class TestResults:
    def test_normal_and_error_partition(self):
        from repro.gil.syntax import Fail

        body = (
            ISym("a", 0),
            IfGoto(PVar("a").eq(Lit(True)), 3),
            Fail(Lit("nope")),
            Return(Lit("ok")),
        )
        prog = prog_of(Proc("main", (), body))
        result = symbolic_explorer(prog).run("main")
        assert len(result.normal) == 1
        assert len(result.errors) == 1

    def test_sole_outcome_requires_determinism(self):
        prog = prog_of(Proc("main", (), (Return(Lit(1)),)))
        sm = ConcreteStateModel(WhileConcreteMemory())
        result = Explorer(prog, sm).run("main")
        assert result.sole_outcome.value == 1

    def test_sole_outcome_rejects_multiple(self):
        body = (
            ISym("a", 0),
            IfGoto(PVar("a").eq(Lit(True)), 3),
            Return(Lit(0)),
            Return(Lit(1)),
        )
        prog = prog_of(Proc("main", (), body))
        result = symbolic_explorer(prog).run("main")
        with pytest.raises(ValueError):
            result.sole_outcome


class TestConfigs:
    def test_gillian_config(self):
        config = gillian()
        assert config.simplifier_memoisation and config.solver_cache

    def test_baseline_config(self):
        config = javert2_baseline()
        assert not config.simplifier_memoisation and not config.solver_cache

    def test_configs_explore_identically(self):
        source_body = (
            ISym("a", 0),
            IfGoto(PVar("a").lt(Lit(0)), 3),
            Return(Lit("nonneg")),
            Return(Lit("neg")),
        )
        prog = prog_of(Proc("main", (), source_body))
        fast = symbolic_explorer(prog, gillian()).run("main")
        # Fresh state model so solver/simplifier settings apply.
        from repro.logic.simplify import Simplifier
        from repro.logic.solver import Solver

        slow_solver = Solver(
            simplifier=Simplifier(memoise=False), cache_enabled=False
        )
        slow_sm = SymbolicStateModel(WhileSymbolicMemory(), solver=slow_solver)
        slow = Explorer(prog, slow_sm, javert2_baseline()).run("main")
        assert fast.stats.commands_executed == slow.stats.commands_executed
        assert len(fast.finals) == len(slow.finals)
