"""Tests for REPRO_FUZZ_SEEDS parsing (repro.testing.genprog): valid
shapes are honoured and malformed values fail with one clear error
naming the bad token."""

import pytest

from repro.testing.genprog import _seed_counts


def counts(monkeypatch, value):
    monkeypatch.setenv("REPRO_FUZZ_SEEDS", value)
    return _seed_counts()


class TestValidShapes:
    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_FUZZ_SEEDS", raising=False)
        assert _seed_counts() == (50, 200)

    def test_default_when_blank(self, monkeypatch):
        assert counts(monkeypatch, "   ") == (50, 200)

    def test_single_count_scales_long(self, monkeypatch):
        assert counts(monkeypatch, "20") == (20, 80)

    def test_both_pinned(self, monkeypatch):
        assert counts(monkeypatch, "20:100") == (20, 100)

    def test_long_floored_at_quick(self, monkeypatch):
        assert counts(monkeypatch, "30:10") == (30, 30)

    def test_empty_positions_keep_defaults(self, monkeypatch):
        assert counts(monkeypatch, ":100") == (50, 100)
        assert counts(monkeypatch, "20:") == (20, 80)

    def test_zero_allowed(self, monkeypatch):
        assert counts(monkeypatch, "0") == (0, 0)


class TestMalformed:
    @pytest.mark.parametrize(
        "value, bad_token",
        [
            ("abc", "'abc'"),
            ("20:xyz", "'xyz'"),
            ("1.5", "'1.5'"),
            ("20:100:7", "':'"),
            ("0x10", "'0x10'"),
            (" 20 : 1 0 ", "' 1 0'"),
        ],
    )
    def test_error_names_the_bad_token(self, monkeypatch, value, bad_token):
        monkeypatch.setenv("REPRO_FUZZ_SEEDS", value)
        with pytest.raises(ValueError) as exc:
            _seed_counts()
        message = str(exc.value)
        assert "REPRO_FUZZ_SEEDS" in message
        assert repr(value.strip()) in message
        if bad_token != "':'":
            assert bad_token in message

    def test_negative_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FUZZ_SEEDS", "-5")
        with pytest.raises(ValueError, match=">= 0"):
            _seed_counts()
