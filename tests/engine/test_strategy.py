"""Tests for search strategies (repro.engine.strategy)."""

import pytest

from repro.engine.config import EngineConfig
from repro.engine.explorer import Explorer
from repro.engine.strategy import (
    BFSStrategy,
    CoverageGuidedStrategy,
    DFSStrategy,
    RandomStrategy,
    SearchStrategy,
    make_strategy,
    strategy_names,
)
from repro.gil.semantics import Config, TopFrame
from repro.gil.syntax import IfGoto, ISym, Proc, Prog, Return
from repro.logic.expr import Lit, PVar
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import WhileSymbolicMemory


def item(proc: str, idx: int, depth: int = 0):
    """A WorkItem with a distinguishable configuration."""
    return (Config(None, (TopFrame(proc),), idx), depth)


class TestFactory:
    def test_names(self):
        assert strategy_names() == ["bfs", "coverage", "dfs", "random"]

    def test_default_is_dfs(self):
        assert isinstance(make_strategy(None), DFSStrategy)
        assert isinstance(make_strategy("dfs"), DFSStrategy)

    def test_each_name_builds(self):
        for name in strategy_names():
            strat = make_strategy(name)
            assert isinstance(strat, SearchStrategy)
            assert strat.name == name

    def test_random_seed_spec(self):
        assert make_strategy("random:99").seed == 99
        assert make_strategy("random", seed=7).seed == 7

    def test_instance_passthrough(self):
        strat = BFSStrategy()
        assert make_strategy(strat) is strat

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("astar")

    def test_argument_on_argless_strategy_rejected(self):
        with pytest.raises(ValueError):
            make_strategy("dfs:3")


class TestOrdering:
    def test_dfs_is_lifo(self):
        strat = DFSStrategy()
        for i in range(3):
            strat.push(item("p", i))
        assert [strat.pop()[0].idx for _ in range(3)] == [2, 1, 0]

    def test_bfs_is_fifo(self):
        strat = BFSStrategy()
        for i in range(3):
            strat.push(item("p", i))
        assert [strat.pop()[0].idx for _ in range(3)] == [0, 1, 2]

    def test_random_is_seed_deterministic(self):
        orders = []
        for _ in range(2):
            strat = RandomStrategy(seed=5)
            for i in range(8):
                strat.push(item("p", i))
            orders.append([strat.pop()[0].idx for _ in range(8)])
        assert orders[0] == orders[1]
        assert sorted(orders[0]) == list(range(8))

    def test_random_seeds_differ(self):
        def order(seed):
            strat = RandomStrategy(seed=seed)
            for i in range(16):
                strat.push(item("p", i))
            return [strat.pop()[0].idx for _ in range(16)]

        assert order(1) != order(2)

    def test_coverage_prefers_least_visited_site(self):
        strat = CoverageGuidedStrategy()
        # Two items at site (p, 0), one at (p, 1).  After popping one
        # (p, 0) item, the (p, 1) site is less visited and must win even
        # though the second (p, 0) item was queued earlier.
        strat.push(item("p", 0))
        strat.push(item("p", 0))
        strat.push(item("p", 1))
        assert strat.pop()[0].idx == 0
        assert strat.pop()[0].idx == 1
        assert strat.pop()[0].idx == 0

    def test_coverage_fifo_tiebreak(self):
        strat = CoverageGuidedStrategy()
        strat.push(item("a", 0))
        strat.push(item("b", 0))
        assert strat.pop()[0].proc == "a"
        assert strat.pop()[0].proc == "b"


class TestEviction:
    def test_dfs_evicts_oldest(self):
        strat = DFSStrategy()
        for i in range(5):
            strat.push(item("p", i))
        evicted = strat.evict(2)
        # Bottom of the stack: what DFS would have explored last.
        assert [it[0].idx for it in evicted] == [0, 1]
        assert strat.pop()[0].idx == 4

    def test_bfs_evicts_newest(self):
        strat = BFSStrategy()
        for i in range(5):
            strat.push(item("p", i))
        evicted = strat.evict(2)
        assert [it[0].idx for it in evicted] == [3, 4]
        assert strat.pop()[0].idx == 0

    def test_random_eviction_deterministic(self):
        def evicted(seed):
            strat = RandomStrategy(seed=seed)
            for i in range(6):
                strat.push(item("p", i))
            return [it[0].idx for it in strat.evict(3)]

        assert evicted(3) == evicted(3)
        assert len(evicted(3)) == 3

    def test_coverage_evicts_most_visited(self):
        strat = CoverageGuidedStrategy()
        strat.push(item("p", 0))
        strat.push(item("p", 1))
        strat.pop()  # visits (p, 0)
        strat.push(item("p", 0))
        strat.push(item("p", 2))
        # Pending: (p,1) unvisited, (p,0) visited once, (p,2) unvisited.
        evicted = strat.evict(1)
        assert [it[0].idx for it in evicted] == [0]

    def test_evict_caps_at_length(self):
        for spec in strategy_names():
            strat = make_strategy(spec)
            strat.push(item("p", 0))
            assert len(strat.evict(10)) == 1
            assert len(strat) == 0


class TestExplorationInvariance:
    """All strategies find the same multiset of finals on exhaustive runs."""

    def _branching_prog(self, n=4):
        body = tuple(ISym(f"b{i}", i) for i in range(n))
        for i in range(n):
            body += (IfGoto(PVar(f"b{i}").eq(Lit(True)), len(body) + 1),)
        body += (Return(Lit("done")),)
        prog = Prog()
        prog.add(Proc("main", (), body))
        return prog

    def _finals_multiset(self, strategy):
        sm = SymbolicStateModel(WhileSymbolicMemory())
        result = Explorer(self._branching_prog(), sm, strategy=strategy).run("main")
        assert result.stats.stop_reason == "exhausted"
        finals = sorted((f.kind.name, repr(f.value)) for f in result.finals)
        return finals, result.stats.paths_finished

    def test_identical_finals_across_strategies(self):
        reference = self._finals_multiset("dfs")
        for spec in ("bfs", "random:17", "coverage"):
            assert self._finals_multiset(spec) == reference

    def test_config_strategy_field_selects_policy(self):
        config = EngineConfig(strategy="bfs")
        sm = SymbolicStateModel(WhileSymbolicMemory())
        explorer = Explorer(self._branching_prog(), sm, config)
        assert isinstance(explorer._make_strategy(), BFSStrategy)

    def test_explicit_strategy_overrides_config(self):
        config = EngineConfig(strategy="bfs")
        sm = SymbolicStateModel(WhileSymbolicMemory())
        explorer = Explorer(self._branching_prog(), sm, config, strategy="coverage")
        assert isinstance(explorer._make_strategy(), CoverageGuidedStrategy)


class TestMalformedSpecs:
    """make_strategy must reject malformed specs with a clear ValueError,
    not silently fall back to a default policy."""

    def test_random_with_empty_seed(self):
        with pytest.raises(ValueError, match="integer seed"):
            make_strategy("random:")

    def test_random_with_non_integer_seed(self):
        with pytest.raises(ValueError, match="notanint"):
            make_strategy("random:notanint")

    def test_random_with_float_seed(self):
        with pytest.raises(ValueError, match="integer seed"):
            make_strategy("random:1.5")

    def test_random_with_whitespace_seed_accepted(self):
        assert make_strategy("random: 42 ").seed == 42

    def test_unknown_name_lists_known_ones(self):
        with pytest.raises(ValueError, match="bfs.*coverage.*dfs.*random"):
            make_strategy("montecarlo")

    def test_unknown_name_with_argument(self):
        with pytest.raises(ValueError, match="unknown search strategy"):
            make_strategy("astar:4")

    def test_non_string_non_strategy_rejected(self):
        for bad in (7, 1.5, ["dfs"], {"name": "dfs"}):
            with pytest.raises(ValueError, match="name string or a SearchStrategy"):
                make_strategy(bad)

    def test_case_and_whitespace_normalised(self):
        assert isinstance(make_strategy("  BFS "), BFSStrategy)


class TestCoverageEvictionTies:
    def test_tied_sites_evict_most_recent_first(self):
        # Four pending items at two never-visited sites: all priorities
        # tie at 0, so eviction must fall back to recency — the most
        # recently queued goes first, deterministically.
        strat = CoverageGuidedStrategy()
        strat.push(item("p", 0, depth=0))
        strat.push(item("q", 0, depth=1))
        strat.push(item("p", 0, depth=2))
        strat.push(item("q", 0, depth=3))
        evicted = strat.evict(2)
        assert [it[1] for it in evicted] == [3, 2]
        assert len(strat) == 2

    def test_tie_break_is_reproducible(self):
        def run():
            strat = CoverageGuidedStrategy()
            for i in range(6):
                strat.push(item("p" if i % 2 else "q", 0, depth=i))
            return [it[1] for it in strat.evict(4)]

        assert run() == run()

    def test_visited_site_beats_tied_fresh_sites(self):
        strat = CoverageGuidedStrategy()
        strat.push(item("p", 0, depth=0))
        strat.pop()  # (p, 0) now visited once
        strat.push(item("p", 0, depth=1))  # same site: priority 1
        strat.push(item("q", 0, depth=2))  # fresh: priority 0
        strat.push(item("r", 0, depth=3))  # fresh: priority 0
        # The single eviction victim must be the visited site's item even
        # though the fresh items were queued later.
        assert [it[1] for it in strat.evict(1)] == [1]
