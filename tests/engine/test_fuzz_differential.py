"""Differential fuzzing of the whole engine (paper Thm. 3.6, E6).

A seeded random generator builds small GIL programs over the While memory
model — interpreted-symbol inputs, bounded integer arithmetic, forward
branches, bounded loops, object allocation/mutation/lookup/dispose — and
every generated program is cross-checked two ways:

* **concrete vs symbolic** — :func:`check_trace_soundness` symbolically
  executes the program, asks the solver for a model ε of every final's
  path condition, replays ε concretely through the scripted allocator,
  and demands the concrete outcome match (the operational reading of
  Theorem 3.6's no-false-positive guarantee);
* **parallel vs sequential** — the multiset of finals from a
  ``workers=2`` :class:`ParallelExplorer` run must equal the sequential
  run's, exercising the pickle layer (expression re-interning,
  path-condition re-linking, state serialization) on arbitrary program
  shapes rather than hand-picked ones;
* **compiled vs interpreted** — the pre-compiled step closures
  (:mod:`repro.gil.compile`) must produce the same multiset of finals
  *and* the same non-timing stats (command counts, path tallies, solver
  queries by cache tier, degradation ledger) as the tree-walking
  interpreter, with and without fault injection: compilation may change
  how fast a command runs, never what it does or what the solver sees;
* **faulted vs fault-free** — the same programs run again under a
  seeded random :class:`FaultPlan` (worker kills by raise and by
  ``os._exit``, injected action errors).  A *transient* fault must be
  recovered by re-sharding to the bit-exact fault-free multiset; a
  *permanent* kill must downgrade to an ``incomplete`` run whose
  salvaged finals plus re-explored ``lost_frontier`` reconstitute the
  fault-free multiset, with :class:`Incompleteness` accounting for
  every item lost.  Solver timeouts are excluded from these exactness
  arms: an assumed-SAT branch may legitimately add finals.

Seeds are fixed, so every failure is reproducible: re-run with the seed
from the failure message.  The default run covers ``QUICK_SEEDS``; the
``slow``-marked long mode widens to ``LONG_SEEDS`` for soak runs
(``make fuzz`` / ``pytest -m slow``).
"""

import dataclasses
import random

import pytest

from repro.engine.explorer import Explorer
from repro.engine.parallel import ParallelExplorer
from repro.engine.results import final_sort_key
from repro.soundness.differential import check_trace_soundness
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang import WhileLanguage
from repro.targets.while_lang.memory import WhileSymbolicMemory
from repro.testing.faults import FaultPlan, WorkerKill

# The generator lives in repro.testing.genprog (promoted from this
# module); these re-exports keep the historical import surface —
# tools/fingerprint.py and other tests import from here.
from repro.testing.genprog import (  # noqa: F401  (re-exported API)
    CONFIG,
    LONG_SEEDS,
    MAX_INPUTS,
    MAX_LOOP_ITERS,
    MAX_STMTS,
    QUICK_SEEDS,
    ProgramBuilder,
    generate_program,
)

LANG = WhileLanguage()

#: historical alias from before the generator was promoted to src
_ProgramBuilder = ProgramBuilder


# -- the checks ---------------------------------------------------------------


def assert_differential(seed: int) -> None:
    prog = generate_program(seed)
    report = check_trace_soundness(LANG, prog, "main", CONFIG)
    bad = [c for c in report.checks if not c.ok]
    assert not bad, (
        f"seed {seed}: {len(bad)} final(s) failed concrete replay; "
        f"first: {bad[0].detail!r}\nprogram:\n{prog!r}"
    )
    assert report.replayed > 0, f"seed {seed}: nothing was replayable"


def assert_parallel_matches(seed: int) -> None:
    prog = generate_program(seed)
    seq = Explorer(
        prog, SymbolicStateModel(WhileSymbolicMemory()), CONFIG
    ).run("main")
    par = ParallelExplorer(
        prog, SymbolicStateModel(WhileSymbolicMemory()), CONFIG,
        workers=2, seed_factor=1,
    ).run("main")
    assert sorted(final_sort_key(f) for f in par.finals) == sorted(
        final_sort_key(f) for f in seq.finals
    ), f"seed {seed}: parallel finals differ from sequential\nprogram:\n{prog!r}"
    assert par.stats.stop_reason == seq.stats.stop_reason


def _finals_multiset(result):
    return sorted(final_sort_key(f) for f in result.finals)


def _stats_key(stats):
    """Every run counter except timing and the compiled-only fast-lane
    tally — the fields the compiled pipeline must reproduce exactly."""
    return (
        stats.commands_executed,
        stats.paths_finished,
        stats.paths_vanished,
        stats.paths_dropped,
        stats.solver_queries,
        stats.solver_cache_hits,
        stats.solver_prefix_hits,
        stats.solver_model_reuse,
        stats.stop_reason,
        stats.incompleteness,
    )


INTERP_CONFIG = dataclasses.replace(CONFIG, compiled=False)


def assert_compiled_matches(seed: int) -> None:
    """Compiled closures vs the tree-walking interpreter, bit for bit.

    Both the multiset of finals *and* every non-timing stat (command
    counts, path tallies, solver queries by cache tier, degradation
    ledger) must be identical: the compiled pipeline may change how fast
    a command executes, never what it does or what the solver is asked.
    """
    prog = generate_program(seed)
    compiled = Explorer(
        prog, SymbolicStateModel(WhileSymbolicMemory()), CONFIG
    ).run("main")
    interp = Explorer(
        prog, SymbolicStateModel(WhileSymbolicMemory()), INTERP_CONFIG
    ).run("main")
    assert interp.stats.fast_lane_steps == 0, f"seed {seed}"
    assert _finals_multiset(compiled) == _finals_multiset(interp), (
        f"seed {seed}: compiled finals differ from interpreted\n"
        f"program:\n{prog!r}"
    )
    assert _stats_key(compiled.stats) == _stats_key(interp.stats), (
        f"seed {seed}: compiled stats diverge from interpreted\n"
        f"compiled: {_stats_key(compiled.stats)}\n"
        f"interp:   {_stats_key(interp.stats)}\nprogram:\n{prog!r}"
    )


def assert_compiled_matches_under_faults(seed: int) -> None:
    """The compiled/interpreted identity must survive fault injection.

    The same seeded fault plan is run through both pipelines: injected
    action errors and worker kills trigger at the same steps either way
    (the compiled path executes the same command sequence), so recovery
    must land on the same finals and the same merged counters.
    """
    prog = generate_program(seed)
    plan = FaultPlan.random(seed, workers=2, max_step=12, kinds=EXACT_FAULT_KINDS)
    runs = {}
    for label, base in (("compiled", CONFIG), (" interp ", INTERP_CONFIG)):
        cfg = dataclasses.replace(base, fault_plan=plan, shard_retry_backoff=0.0)
        runs[label] = _parallel_run(prog, cfg)
    compiled, interp = runs["compiled"], runs[" interp "]
    assert _finals_multiset(compiled) == _finals_multiset(interp), (
        f"seed {seed}: compiled finals differ from interpreted under "
        f"faults\nplan: {plan!r}\nprogram:\n{prog!r}"
    )
    assert _stats_key(compiled.stats) == _stats_key(interp.stats), (
        f"seed {seed}: compiled stats diverge under faults\n"
        f"compiled: {_stats_key(compiled.stats)}\n"
        f"interp:   {_stats_key(interp.stats)}\n"
        f"plan: {plan!r}\nprogram:\n{prog!r}"
    )


def _parallel_run(prog, config):
    return ParallelExplorer(
        prog, SymbolicStateModel(WhileSymbolicMemory()), config,
        workers=2, seed_factor=1,
    ).run("main")


#: fault shapes whose recovery must be *exact*; solver timeouts are
#: excluded because an assumed-SAT branch may legitimately add finals
EXACT_FAULT_KINDS = ("kill-raise", "kill-exit", "action")


def assert_fault_recovery(seed: int) -> None:
    """A transient random fault must be retried away to the exact result.

    The plan is seeded alongside the program, so a failing seed pins
    down both the program *and* the fault that broke recovery.  Faults
    whose trigger never fires (e.g. a kill step beyond the shard's run)
    degrade to the zero-fault case, which must also be exact.
    """
    prog = generate_program(seed)
    reference = _parallel_run(prog, CONFIG)
    plan = FaultPlan.random(seed, workers=2, max_step=12, kinds=EXACT_FAULT_KINDS)
    faulted_config = dataclasses.replace(
        CONFIG, fault_plan=plan, shard_retry_backoff=0.0
    )
    recovered = _parallel_run(prog, faulted_config)
    assert recovered.report.complete, (
        f"seed {seed}: transient fault not recovered "
        f"({recovered.report.summary()})\nplan: {plan!r}\nprogram:\n{prog!r}"
    )
    assert _finals_multiset(recovered) == _finals_multiset(reference), (
        f"seed {seed}: recovered finals differ from fault-free run\n"
        f"plan: {plan!r}\nprogram:\n{prog!r}"
    )


def assert_incompleteness_accounts_exactly(seed: int) -> None:
    """A permanent kill must lose *exactly* the frontier it reports.

    Salvaged finals from healthy shards plus a sequential re-exploration
    of ``lost_frontier`` must reconstitute the fault-free multiset — the
    ``incomplete`` downgrade may not silently drop or duplicate paths.
    """
    prog = generate_program(seed)
    reference = _parallel_run(prog, CONFIG)
    doomed = random.Random(seed).randrange(2)
    plan = FaultPlan(kills=(WorkerKill(doomed, at_step=0, attempts=99),))
    partial_config = dataclasses.replace(
        CONFIG, fault_plan=plan, max_shard_retries=0, shard_retry_backoff=0.0
    )
    partial = _parallel_run(prog, partial_config)
    inc = partial.stats.incompleteness
    if not partial.lost_frontier:
        # The doomed worker drew an empty shard: nothing fired, so the
        # run must be clean and already exact.
        assert partial.report.complete, f"seed {seed}: {partial.report.summary()}"
        assert _finals_multiset(partial) == _finals_multiset(reference)
        return
    assert partial.stats.stop_reason == "incomplete", f"seed {seed}"
    assert inc.shards_lost >= 1, f"seed {seed}"
    assert inc.frontier_lost == len(partial.lost_frontier), f"seed {seed}"
    configs = [cfg for cfg, _ in partial.lost_frontier]
    depths = [depth for _, depth in partial.lost_frontier]
    rest = Explorer(
        prog, SymbolicStateModel(WhileSymbolicMemory()), CONFIG
    ).explore(configs, depths=depths)
    combined = sorted(_finals_multiset(partial) + _finals_multiset(rest))
    assert combined == _finals_multiset(reference), (
        f"seed {seed}: salvaged + re-explored finals differ from the "
        f"fault-free run\nprogram:\n{prog!r}"
    )


class TestGenerator:
    def test_same_seed_same_program(self):
        assert repr(generate_program(7)) == repr(generate_program(7))

    def test_seeds_vary(self):
        assert len({repr(generate_program(s)) for s in range(10)}) > 1

    def test_generated_programs_terminate(self):
        for seed in range(10):
            result = Explorer(
                generate_program(seed),
                SymbolicStateModel(WhileSymbolicMemory()),
                CONFIG,
            ).run("main")
            assert result.stats.stop_reason == "exhausted", f"seed {seed}"


class TestDifferentialFuzz:
    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_concrete_vs_symbolic(self, seed):
        assert_differential(seed)

    @pytest.mark.parametrize("seed", list(QUICK_SEEDS)[::4])
    def test_parallel_vs_sequential(self, seed):
        assert_parallel_matches(seed)

    @pytest.mark.parametrize("seed", QUICK_SEEDS)
    def test_compiled_vs_interpreted(self, seed):
        assert_compiled_matches(seed)


class TestFaultInjectionFuzz:
    """The fault-injecting arm (``make fuzz-faults`` runs just this)."""

    @pytest.mark.parametrize("seed", list(QUICK_SEEDS)[::6])
    def test_transient_fault_recovers_exactly(self, seed):
        assert_fault_recovery(seed)

    @pytest.mark.parametrize("seed", list(QUICK_SEEDS)[3::12])
    def test_permanent_fault_accounts_exactly(self, seed):
        assert_incompleteness_accounts_exactly(seed)

    @pytest.mark.parametrize("seed", list(QUICK_SEEDS)[1::6])
    def test_compiled_vs_interpreted_under_faults(self, seed):
        assert_compiled_matches_under_faults(seed)


@pytest.mark.slow
class TestDifferentialFuzzLong:
    """Soak mode: the full seed range (run via ``make fuzz``)."""

    @pytest.mark.parametrize("seed", LONG_SEEDS)
    def test_concrete_vs_symbolic_long(self, seed):
        assert_differential(seed)

    @pytest.mark.parametrize("seed", list(LONG_SEEDS)[::8])
    def test_parallel_vs_sequential_long(self, seed):
        assert_parallel_matches(seed)

    @pytest.mark.parametrize("seed", list(LONG_SEEDS)[::10])
    def test_transient_fault_recovers_exactly_long(self, seed):
        assert_fault_recovery(seed)

    @pytest.mark.parametrize("seed", list(LONG_SEEDS)[5::20])
    def test_permanent_fault_accounts_exactly_long(self, seed):
        assert_incompleteness_accounts_exactly(seed)

    @pytest.mark.parametrize("seed", LONG_SEEDS)
    def test_compiled_vs_interpreted_long(self, seed):
        assert_compiled_matches(seed)

    @pytest.mark.parametrize("seed", list(LONG_SEEDS)[7::16])
    def test_compiled_vs_interpreted_under_faults_long(self, seed):
        assert_compiled_matches_under_faults(seed)
