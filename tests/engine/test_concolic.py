"""Tests for the concolic (DART-style) engine extension (paper §6)."""

import pytest

from repro.engine.concolic import ConcolicTester
from repro.targets.c_like import MiniCLanguage
from repro.targets.while_lang import WhileLanguage

WHILE = WhileLanguage()


def run_while(source: str, **kw):
    prog = WHILE.compile(source)
    return ConcolicTester(WHILE, **kw).run(prog, "main")


class TestDirectedSearch:
    def test_dart_classic(self):
        # The canonical DART example: reaching the bug needs the solver to
        # invert x == 2*y composed with x - y > 10.
        report = run_while(
            """
            proc main() {
              x := symb_int();
              y := symb_int();
              if (x = 2 * y) {
                if (10 < x - y) {
                  assert(false);
                }
              }
              return 0;
            }"""
        )
        assert report.found_bug
        bug = report.bugs[0]
        x, y = bug.inputs["val_0_0"], bug.inputs["val_1_0"]
        assert x == 2 * y and x - y > 10

    def test_no_bug_terminates(self):
        report = run_while(
            """
            proc main() {
              n := symb_int();
              if (n < 0) { m := -n; } else { m := n; }
              assert(0 <= m);
              return m;
            }"""
        )
        assert not report.found_bug
        assert report.paths_explored >= 2

    def test_nested_equalities(self):
        report = run_while(
            """
            proc main() {
              a := symb_int();
              b := symb_int();
              if (a + b = 10) {
                if (a - b = 4) {
                  assert(false);
                }
              }
              return 0;
            }"""
        )
        assert report.found_bug
        a, b = report.bugs[0].inputs["val_0_0"], report.bugs[0].inputs["val_1_0"]
        assert a + b == 10 and a - b == 4

    def test_iteration_budget_respected(self):
        report = run_while(
            """
            proc main() {
              a := symb_int();
              b := symb_int();
              c := symb_int();
              if (a = 1) { x := 1; }
              if (b = 2) { x := 2; }
              if (c = 3) { x := 3; }
              return 0;
            }""",
            max_iterations=4,
        )
        assert report.iterations <= 4

    def test_memory_error_found_concolically(self):
        language = MiniCLanguage()
        prog = language.compile(
            """
            int main() {
              int *a = (int *) malloc(3 * sizeof(int));
              int i = symb_int();
              if (0 <= i) {
                if (i <= 3) {
                  a[i] = 1;   // i == 3 overflows
                }
              }
              free(a);
              return 0;
            }"""
        )
        report = ConcolicTester(language).run(prog, "main")
        assert report.found_bug
        assert any(
            "buffer-overflow" in str(b.value) for b in report.bugs
        )

    def test_every_bug_input_is_concrete_witness(self):
        # Concolic bugs are found by *concrete* runs — confirmed by
        # construction (no false positives possible).
        report = run_while(
            """
            proc main() {
              n := symb_int();
              if (n = 41) { assert(false); }
              return 0;
            }"""
        )
        assert report.found_bug
        assert report.bugs[0].inputs["val_0_0"] == 41
