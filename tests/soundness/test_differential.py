"""Trace-level differential soundness (Theorem 3.6, empirically — E6).

Every final configuration of a symbolic run is replayed concretely under a
model of its path condition; outcomes must agree.  This exercises the
whole stack at once: compiler, GIL semantics, state constructors,
allocators, memory models, solver.
"""

import pytest

from repro.soundness.differential import check_trace_soundness
from repro.targets.while_lang import WhileLanguage

LANG = WhileLanguage()

PROGRAMS = {
    "branching": """
        proc main() {
          n := symb_int();
          assume(-3 <= n and n <= 3);
          if (n < 0) { r := -n; } else { r := n; }
          return r;
        }""",
    "loops": """
        proc main() {
          n := symb_int();
          assume(0 <= n and n <= 3);
          i := 0; acc := 0;
          while (i < n) { acc := acc + i; i := i + 1; }
          return acc;
        }""",
    "objects": """
        proc main() {
          v := symb_int();
          o := { x: v, y: 0 };
          o.y := v + 1;
          a := o.x; b := o.y;
          return a + b;
        }""",
    "errors": """
        proc main() {
          b := symb_bool();
          o := { p: 1 };
          if (b) { dispose(o); }
          v := o.p;
          return v;
        }""",
    "asserts": """
        proc main() {
          n := symb_int();
          assume(0 <= n and n <= 4);
          assert(n != 2);
          return n;
        }""",
    "calls": """
        proc square(x) { return x * x; }
        proc main() {
          n := symb_int();
          assume(-2 <= n and n <= 2);
          s := square(n);
          assert(0 <= s);
          return s;
        }""",
    "strings": """
        proc main() {
          s := symb_string();
          assume(slen(s) < 2);
          t := s ++ "!";
          return slen(t);
        }""",
    "multiple_objects": """
        proc main() {
          a := { v: 1 }; b := { v: 2 };
          x := a.v; y := b.v;
          assert(x != y);
          return x + y;
        }""",
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_trace_soundness(name):
    prog = LANG.compile(PROGRAMS[name])
    report = check_trace_soundness(LANG, prog, "main")
    assert report.checks, "no finals to check"
    assert report.ok, [c.detail for c in report.checks if not c.ok]
    # At least one final must actually replay (models exist).
    assert report.replayed >= 1
