"""Allocator interpretation checks (paper Def. 3.8, AL-RS / AL-RC).

The built-in allocators share their record representation between the
symbolic and concrete worlds (I_AL is the identity on records, paper
§3.2); these tests pin the two restricted properties:

* AL-RS: when the symbolic allocator draws a value at site j, the
  concrete allocator under any ε (the counter-model script) draws the
  interpreted value from the corresponding record;
* AL-RC: the concrete draw always exists.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gil.values import Symbol
from repro.logic.expr import LVar
from repro.state.allocator import (
    AllocRecord,
    ConcreteAllocator,
    SymbolicAllocator,
    interpret_record,
    isym_name,
)

_records = st.lists(
    st.tuples(st.integers(0, 3), st.integers(1, 3)), max_size=3
).map(lambda items: AllocRecord(tuple(sorted(dict(items).items()))))


@given(record=_records, site=st.integers(0, 4))
@settings(deadline=None)
def test_usym_al_rs(record, site):
    """uSym draws the *same* symbol symbolically and concretely."""
    sym_record, sym_value = SymbolicAllocator().alloc_usym(record, site)
    conc_record, conc_value = ConcreteAllocator().alloc_usym(
        interpret_record(record), site
    )
    assert isinstance(sym_value, Symbol) and sym_value == conc_value
    assert interpret_record(sym_record) == conc_record


@given(record=_records, site=st.integers(0, 4), value=st.integers(-5, 5))
@settings(deadline=None)
def test_isym_al_rs(record, site, value):
    """iSym symbolically yields the logical variable the scripted concrete
    allocator maps to ε's value — the replay alignment Thm. 3.6 needs."""
    sym_record, lvar = SymbolicAllocator().alloc_isym(record, site)
    assert isinstance(lvar, LVar)
    env = {lvar.name: value}

    script = ConcreteAllocator(script=env)
    conc_record, conc_value = script.alloc_isym(interpret_record(record), site)
    assert conc_value == value  # ⟦x̂⟧ε
    assert interpret_record(sym_record) == conc_record


@given(record=_records, site=st.integers(0, 4))
@settings(deadline=None)
def test_al_rc_concrete_draw_always_exists(record, site):
    """AL-RC: allocation is total — both draws always succeed."""
    r1, _ = SymbolicAllocator().alloc_usym(record, site)
    r2, _ = ConcreteAllocator().alloc_usym(record, site)
    assert r1.count(site) == r2.count(site) == record.count(site) + 1


def test_records_shared_representation():
    """I_AL is the identity: symbolic and concrete records coincide."""
    record = AllocRecord(((0, 2), (3, 1)))
    assert interpret_record(record) == record


@given(record=_records, sites=st.lists(st.integers(0, 4), max_size=6))
@settings(deadline=None)
def test_deterministic_names_across_worlds(record, sites):
    """Replaying the same site sequence yields identical names, so ε keys
    always line up between the symbolic trace and its concrete replay."""
    sym_record, conc_record = record, record
    sym_alloc, conc_alloc = SymbolicAllocator(), ConcreteAllocator()
    for site in sites:
        sym_record, lvar = sym_alloc.alloc_isym(sym_record, site)
        conc_record, _ = conc_alloc.alloc_isym(conc_record, site)
        assert lvar.name == isym_name(site, sym_record.count(site) - 1)
        assert sym_record == conc_record
