"""Tests for relaxed trace composition ⇝Z (paper §3.1)."""

import pytest

from repro.gil.semantics import OutcomeKind, make_call_config
from repro.logic.expr import Lit, LVar
from repro.soundness.composition import (
    CompositionError,
    RelaxedTraceBuilder,
    can_compose,
    strengthen,
)
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang import WhileLanguage
from repro.targets.while_lang.memory import WhileSymbolicMemory

LANG = WhileLanguage()

PROGRAM = """
proc main() {
  n := symb_int();
  assume(0 <= n and n <= 10);
  if (n < 5) { r := 1; } else { r := 2; }
  return r;
}
"""


def setup():
    prog = LANG.compile(PROGRAM)
    sm = SymbolicStateModel(WhileSymbolicMemory())
    cfg = make_call_config(sm, sm.initial_state(), prog, "main", [])
    return prog, sm, cfg


class TestClosureRules:
    def test_reflexivity(self):
        # cf ⇝Z cf: any configuration composes with itself.
        _, _, cfg = setup()
        assert can_compose(cfg, cfg)

    def test_one_step_composes(self):
        # cf1 ⇝ cf2 implies cf1 ⇝Z cf2 via trivial segments.
        prog, sm, cfg = setup()
        builder = RelaxedTraceBuilder(prog, sm)
        segment = builder.run_segment(cfg, steps=1)
        for end in segment.ends:
            assert can_compose(end, end)

    def test_composition_with_strengthened_pc(self):
        # The paper's point: mid-trace, the path condition may gain
        # information, and the composed trace is still sound.
        prog, sm, cfg = setup()
        builder = RelaxedTraceBuilder(prog, sm)
        segment = builder.run_segment(cfg, steps=6)
        assert segment.ends
        end = segment.ends[0]
        # Strengthen with knowledge not yet on the path: n != 7.
        n = LVar("val_0_0")
        stronger = strengthen(end, (n.neq(Lit(7)),))
        continued = builder.compose(end, stronger)
        finals = builder.run_to_finals(continued)
        # The extra conjunct is carried to every final.
        for fin in finals:
            if fin.kind is not OutcomeKind.VANISH:
                assert n.neq(Lit(7)) in fin.state.pc.conjuncts

    def test_composition_rejects_weaker_continuation(self):
        prog, sm, cfg = setup()
        builder = RelaxedTraceBuilder(prog, sm)
        segment = builder.run_segment(cfg, steps=6)
        end = segment.ends[0]
        # A continuation that *lost* path-condition information (fresh
        # initial state at the same control point) must not compose.
        from repro.gil.semantics import Config

        weaker = Config(sm.initial_state(), end.stack, end.idx)
        with pytest.raises(CompositionError):
            builder.compose(end, weaker)

    def test_composition_rejects_control_point_mismatch(self):
        prog, sm, cfg = setup()
        builder = RelaxedTraceBuilder(prog, sm)
        segment = builder.run_segment(cfg, steps=4)
        end = segment.ends[0]
        from repro.gil.semantics import Config

        elsewhere = Config(end.state, end.stack, end.idx + 1)
        assert not can_compose(end, elsewhere)

    def test_path_dropping_is_a_composition_instance(self):
        # Dropping one branch = composing only the kept branch's
        # configuration; results on the kept branch are unaffected.
        prog, sm, cfg = setup()
        builder = RelaxedTraceBuilder(prog, sm)
        # Step to just past the if-branching (both branches live).
        segment = builder.run_segment(cfg, steps=6)
        assert len(segment.ends) >= 2
        kept = segment.ends[0]
        finals = builder.run_to_finals(builder.compose(kept, kept))
        values = {f.value for f in finals if f.kind is OutcomeKind.NORMAL}
        assert values <= {Lit(1), Lit(2)}
        assert len(values) == 1  # one branch only: the other was dropped
