"""MA-RS / MA-RC checks for the While memory model (Lemma 3.11, empirically).

Randomly generates symbolic While memories, actions, argument expressions,
and logical environments; every symbolic action branch compatible with the
environment must have a matching concrete counterpart through I_W.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gil.values import Symbol
from repro.logic.expr import Lit, LVar, lst
from repro.logic.pathcond import PathCondition
from repro.soundness.interpretation import check_action
from repro.targets.while_lang.memory import (
    InterpretationError,
    SymWhileMemory,
    WhileConcreteMemory,
    WhileSymbolicMemory,
    interpret_memory,
)

CONC = WhileConcreteMemory()
SYM = WhileSymbolicMemory()

_LOCS = [Symbol("l0"), Symbol("l1"), Symbol("l2")]
_PROPS = ["a", "b"]

_loc_exprs = st.one_of(
    st.sampled_from([Lit(l) for l in _LOCS]),
    st.sampled_from([LVar("p"), LVar("q")]),
)
_val_exprs = st.one_of(
    st.integers(-3, 3).map(Lit),
    st.sampled_from([LVar("v"), LVar("w")]),
)


@st.composite
def _memories(draw):
    n = draw(st.integers(0, 4))
    cells = {}
    for _ in range(n):
        loc = draw(_loc_exprs)
        prop = draw(st.sampled_from(_PROPS))
        cells[(loc, prop)] = draw(_val_exprs)
    return SymWhileMemory.of(cells)


@st.composite
def _envs(draw):
    return {
        "p": draw(st.sampled_from(_LOCS)),
        "q": draw(st.sampled_from(_LOCS)),
        "v": draw(st.integers(-3, 3)),
        "w": draw(st.integers(-3, 3)),
    }


def _interp(env, memory):
    return interpret_memory(env, memory)


class TestInterpretation:
    def test_empty_memory(self):
        assert interpret_memory({}, SymWhileMemory()).cells == ()

    def test_cell_interpretation(self):
        mem = SymWhileMemory.of({(LVar("p"), "a"): LVar("v")})
        out = interpret_memory({"p": Symbol("l0"), "v": 7}, mem)
        assert out.as_dict() == {(Symbol("l0"), "a"): 7}

    def test_collision_is_undefined(self):
        mem = SymWhileMemory.of(
            {(LVar("p"), "a"): Lit(1), (Lit(Symbol("l0")), "a"): Lit(2)}
        )
        try:
            interpret_memory({"p": Symbol("l0")}, mem)
        except InterpretationError:
            return
        raise AssertionError("expected InterpretationError")

    def test_non_symbol_location_is_undefined(self):
        mem = SymWhileMemory.of({(LVar("p"), "a"): Lit(1)})
        try:
            interpret_memory({"p": 42}, mem)
        except InterpretationError:
            return
        raise AssertionError("expected InterpretationError")


@given(memory=_memories(), env=_envs(), loc=_loc_exprs, prop=st.sampled_from(_PROPS))
@settings(max_examples=150, deadline=None)
def test_lookup_ma_rs_rc(memory, env, loc, prop):
    report = check_action(CONC, SYM, _interp, env, memory, "lookup", lst(loc, prop))
    assert report.ok, report.detail


@given(
    memory=_memories(),
    env=_envs(),
    loc=_loc_exprs,
    prop=st.sampled_from(_PROPS),
    value=_val_exprs,
)
@settings(max_examples=150, deadline=None)
def test_mutate_ma_rs_rc(memory, env, loc, prop, value):
    report = check_action(
        CONC, SYM, _interp, env, memory, "mutate", lst(loc, prop, value)
    )
    assert report.ok, report.detail


@given(memory=_memories(), env=_envs(), loc=_loc_exprs)
@settings(max_examples=150, deadline=None)
def test_dispose_ma_rs_rc(memory, env, loc):
    report = check_action(CONC, SYM, _interp, env, memory, "dispose", lst(loc))
    assert report.ok, report.detail
