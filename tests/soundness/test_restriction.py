"""Property-based checks of the restriction laws (paper Defs. 3.1–3.4)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.logic.expr import Lit, LVar
from repro.logic.pathcond import PathCondition
from repro.soundness.restriction import (
    check_idempotence,
    check_precision_implies_preorder,
    check_restriction_increases_precision,
    check_right_commutativity,
    check_state_monotonicity,
    check_weakening,
    induced_preorder,
    restrict_pc,
    restrict_state,
)
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import WhileSymbolicMemory

# Path conditions over a small pool of conjuncts, so collisions happen.
_x, _y = LVar("x"), LVar("y")
_CONJUNCTS = [
    _x.lt(_y),
    _y.lt(Lit(10)),
    Lit(0).leq(_x),
    _x.neq(Lit(3)),
    _y.eq(_x + 1),
]

_pcs = st.lists(st.sampled_from(_CONJUNCTS), max_size=4).map(
    lambda cs: PathCondition.of(*cs)
)


class TestPathConditionRestriction:
    @given(pc=_pcs)
    @settings(deadline=None)
    def test_idempotence(self, pc):
        assert check_idempotence(restrict_pc, pc)

    @given(p1=_pcs, p2=_pcs, p3=_pcs)
    @settings(deadline=None)
    def test_right_commutativity(self, p1, p2, p3):
        # Note: our PathCondition keeps insertion order, so equality is
        # up-to-set; compare conjunct sets.
        a = restrict_pc(restrict_pc(p1, p2), p3)
        b = restrict_pc(restrict_pc(p1, p3), p2)
        assert set(a.conjuncts) == set(b.conjuncts)

    @given(p1=_pcs, p2=_pcs, p3=_pcs)
    @settings(deadline=None)
    def test_weakening(self, p1, p2, p3):
        assert check_weakening(restrict_pc, p1, p2, p3)

    @given(p1=_pcs, p2=_pcs)
    @settings(deadline=None)
    def test_induced_preorder_reflexive(self, p1, p2):
        leq = induced_preorder(restrict_pc)
        assert leq(p1, p1)
        # restriction increases precision: p1 ⇃p2 ⊑ p1
        assert leq(restrict_pc(p1, p2), p1)


class TestStateRestriction:
    def _state(self, *conjuncts):
        sm = SymbolicStateModel(WhileSymbolicMemory())
        state = sm.initial_state()
        return state.with_pc(PathCondition.of(*conjuncts)), sm

    def test_restrict_conjoins_pcs(self):
        s1, _ = self._state(_x.lt(_y))
        s2, _ = self._state(_y.lt(Lit(3)))
        merged = restrict_state(s1, s2)
        assert set(merged.pc.conjuncts) == {_x.lt(_y), _y.lt(Lit(3))}

    def test_restrict_keeps_memory_and_store(self):
        s1, _ = self._state(_x.lt(_y))
        s2, _ = self._state()
        merged = restrict_state(s1, s2)
        assert merged.memory == s1.memory and merged.store == s1.store

    def test_idempotent_on_states(self):
        s1, _ = self._state(_x.lt(_y))
        assert restrict_state(s1, s1) == s1

    def test_monotonicity_assume(self):
        # Def. 3.2: every action's output state ⊑ its input state.
        s, sm = self._state(Lit(0).leq(_x))
        (after,) = sm.assume(s, _x.lt(Lit(5)))
        assert check_state_monotonicity(s, after)

    def test_monotonicity_memory_action(self):
        from repro.logic.expr import lst
        from repro.gil.values import Symbol

        s, sm = self._state()
        loc = Lit(Symbol("l"))
        branches = sm.execute_action(s, "mutate", lst(loc, "p", Lit(1)))
        for br in branches:
            assert check_state_monotonicity(s, br.state)

    def test_monotonicity_fresh_symbols(self):
        s, sm = self._state()
        after, _ = sm.fresh_usym(s, 0)
        assert check_state_monotonicity(s, after)
        after2, _ = sm.fresh_isym(after, 1)
        assert check_state_monotonicity(after2, s) or after2.precedes(s)


class TestCompatibility:
    @given(p1=_pcs, p2=_pcs)
    @settings(deadline=None)
    def test_restriction_increases_precision(self, p1, p2):
        leq = induced_preorder(restrict_pc)
        assert check_restriction_increases_precision(leq, restrict_pc, p1, p2)

    @given(p1=_pcs, p2=_pcs)
    @settings(deadline=None)
    def test_precision_implies_preorder(self, p1, p2):
        leq = induced_preorder(restrict_pc)
        assert check_precision_implies_preorder(leq, restrict_pc, p1, p2)
