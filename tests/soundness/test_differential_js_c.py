"""Trace-level differential soundness for MiniJS and MiniC (Thm. 3.6, E6)."""

import pytest

from repro.soundness.differential import check_trace_soundness
from repro.targets.c_like import MiniCLanguage
from repro.targets.js_like import MiniJSLanguage

JS_PROGRAMS = {
    "dynamic_props": """
        function main() {
          var o = { a: 1, b: 2 };
          var k = symb_string();
          var v = o[k];
          if (v === undefined) { return 0; }
          return v;
        }""",
    "branching_objects": """
        function main() {
          var flag = symb_bool();
          var o = flag ? { kind: "yes", v: 1 } : { kind: "no", v: 2 };
          return o.v;
        }""",
    "errors": """
        function main() {
          var b = symb_bool();
          var o = b ? { v: 1 } : null;
          return o.v;
        }""",
    "loops": """
        function main() {
          var n = symb_int();
          assume(0 <= n && n <= 3);
          var a = [];
          for (var i = 0; i < n; i++) { a[i] = i; }
          a.length = n;
          return a.length;
        }""",
}

C_PROGRAMS = {
    "heap_struct": """
        struct P { int x; int y; };
        int main() {
          struct P *p = (struct P *) malloc(sizeof(struct P));
          p->x = symb_int();
          assume(0 <= p->x && p->x <= 2);
          p->y = p->x * 2;
          int r = p->y;
          free(p);
          return r;
        }""",
    "overflow_paths": """
        int main() {
          int *a = (int *) malloc(8);
          int i = symb_int();
          assume(0 <= i && i <= 2);
          a[i] = 1;
          int v = a[i];
          free(a);
          return v;
        }""",
    "conditional_free": """
        int main() {
          int *p = (int *) malloc(4);
          *p = 7;
          int b = symb_bool();
          if (b == 1) { free(p); }
          int v = *p;
          return v;
        }""",
}


@pytest.mark.parametrize("name", sorted(JS_PROGRAMS))
def test_minijs_trace_soundness(name):
    language = MiniJSLanguage()
    prog = language.compile(JS_PROGRAMS[name])
    report = check_trace_soundness(language, prog, "main")
    assert report.checks
    assert report.ok, [c.detail for c in report.checks if not c.ok]
    assert report.replayed >= 1


@pytest.mark.parametrize("name", sorted(C_PROGRAMS))
def test_minic_trace_soundness(name):
    language = MiniCLanguage()
    prog = language.compile(C_PROGRAMS[name])
    report = check_trace_soundness(language, prog, "main")
    assert report.checks
    assert report.ok, [c.detail for c in report.checks if not c.ok]
    assert report.replayed >= 1


class TestLibrarySuiteTraceSoundness:
    """E6 over real library workloads: every final of selected Buckets and
    Collections suite tests replays concretely."""

    @pytest.mark.parametrize(
        "suite_name,test_name",
        [("stack", "test_lifo_order"), ("dict", "test_set_get")],
    )
    def test_buckets(self, suite_name, test_name):
        from repro.targets.js_like.buckets import suites

        language = MiniJSLanguage()
        source, _ = suites.suite(suite_name)
        prog = language.compile(source)
        report = check_trace_soundness(language, prog, test_name)
        assert report.checks
        assert report.ok, [c.detail for c in report.checks if not c.ok]

    @pytest.mark.parametrize(
        "suite_name,test_name",
        [("stack", "test_lifo"), ("treeset", "test_add_contains")],
    )
    def test_collections(self, suite_name, test_name):
        from repro.targets.c_like.collections import suites

        language = MiniCLanguage()
        source, _ = suites.suite(suite_name)
        prog = language.compile(source)
        report = check_trace_soundness(language, prog, test_name)
        assert report.checks
        assert report.ok, [c.detail for c in report.checks if not c.ok]
