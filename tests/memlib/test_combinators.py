"""Unit and property tests for the memlib combinator algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gil.values import Symbol
from repro.logic.expr import Lit, LVar, lst
from repro.logic.pathcond import PathCondition
from repro.logic.solver import Solver
from repro.memlib import (
    Freeable,
    FreeableSpec,
    MetadataTable,
    PairMem,
    PMap,
    PMapSpec,
    PropTable,
    PropTableSpec,
    Record,
    RecordProduct,
    product,
    rename,
)
from repro.memlib.permissions import PERM_READABLE, PERM_WRITABLE, Permissions
from repro.state.interface import MemErr, MemOk, SymMemErr, SymMemOk

L1, L2 = Symbol("l1"), Symbol("l2")
PC = PathCondition()
SOLVER = Solver()


def js_part():
    return Freeable(
        RecordProduct(
            MetadataTable(),
            PropTable(PropTableSpec(absent_value=Symbol("undefined"))),
        ),
        FreeableSpec(name="T"),
    )


class TestProduct:
    def test_rejects_overlapping_action_sets(self):
        with pytest.raises(ValueError, match="share actions"):
            product(PMap(), PMap())

    def test_record_product_rejects_overlap(self):
        with pytest.raises(ValueError, match="share actions"):
            RecordProduct(PropTable(), PropTable())

    def test_disjoint_parts_dispatch_to_their_component(self):
        left = PMap()
        right = rename(
            PMap(PMapSpec(name="R")),
            {"rlookup": "lookup", "rmutate": "mutate", "rdispose": "dispose"},
        )
        part = product(left, right)
        assert part.actions == left.actions | right.actions
        mem = part.initial_concrete()
        assert isinstance(mem, PairMem)
        (b,) = part.execute_concrete("mutate", mem, (L1, "p", 7))
        assert isinstance(b, MemOk) and b.memory.right == mem.right
        (b2,) = part.execute_concrete("rmutate", b.memory, (L1, "p", 9))
        assert b2.memory.left == b.memory.left
        (lk,) = part.execute_concrete("lookup", b2.memory, (L1, "p"))
        (rk,) = part.execute_concrete("rlookup", b2.memory, (L1, "p"))
        assert (lk.value, rk.value) == (7, 9)

    def test_error_branches_pass_through(self):
        part = product(
            PMap(),
            rename(js_part(), {"jsdispose": "dispose"}),
        )
        (b,) = part.execute_concrete("lookup", part.initial_concrete(), (L1, "p"))
        assert isinstance(b, MemErr) and b.value[0] == "missing-property"


class TestRename:
    def test_unknown_inner_action_rejected(self):
        with pytest.raises(ValueError, match="unknown inner actions"):
            rename(PMap(), {"get": "nope"})

    def test_outer_name_clash_rejected(self):
        with pytest.raises(ValueError, match="clash"):
            rename(PMap(), {"dispose": "lookup"})

    def test_renamed_action_behaves_identically(self):
        plain, renamed = PMap(), rename(PMap(), {"get": "lookup"})
        mem = plain.initial_concrete()
        (b,) = plain.execute_concrete("mutate", mem, (L1, "p", 1))
        assert plain.execute_concrete(
            "lookup", b.memory, (L1, "p")
        ) == renamed.execute_concrete("get", b.memory, (L1, "p"))


class TestPermissions:
    def test_unknown_required_action_rejected(self):
        with pytest.raises(ValueError, match="unknown actions"):
            Permissions(PMap(), {"nope": PERM_WRITABLE})

    def test_granted_level_gates_both_arms(self):
        frozen = Permissions(
            PMap(), {"mutate": PERM_WRITABLE, "dispose": PERM_WRITABLE},
            granted=PERM_READABLE,
        )
        mem = frozen.initial_concrete()
        (b,) = frozen.execute_concrete("mutate", mem, (L1, "p", 1))
        assert isinstance(b, MemErr) and b.value == ("permission-denied", "mutate")
        (s,) = frozen.execute_symbolic(
            "mutate", frozen.initial_symbolic(),
            lst(Lit(L1), "p", 1), PC, SOLVER,
        )
        assert isinstance(s, SymMemErr)
        # Reads stay transparent.
        (r,) = frozen.execute_concrete("lookup", mem, (L1, "p"))
        assert isinstance(r, MemErr) and r.value[0] == "missing-property"


class TestConcreteSymbolicAgreement:
    """On fully concrete inputs the two arms agree (MA-RS/MA-RC shadow)."""

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["mutate", "lookup", "dispose"]),
                st.sampled_from(["l1", "l2"]),
                st.sampled_from(["p", "q"]),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=8,
        )
    )
    def test_pmap_agreement(self, script):
        part = PMap()
        conc, sym = part.initial_concrete(), part.initial_symbolic()
        for action, loc_name, label, val in script:
            loc = Symbol(loc_name)
            if action == "mutate":
                args, sym_args = (loc, label, val), lst(Lit(loc), label, val)
            elif action == "lookup":
                args, sym_args = (loc, label), lst(Lit(loc), label)
            else:
                args, sym_args = (loc,), lst(Lit(loc))
            (cb,) = part.execute_concrete(action, conc, args)
            (sb,) = part.execute_symbolic(action, sym, sym_args, PC, SOLVER)
            assert isinstance(cb, MemOk) == isinstance(sb, SymMemOk)
            assert sb.learned == ()
            if isinstance(cb, MemOk):
                conc, sym = cb.memory, sb.memory
                if not isinstance(cb.value, bool):
                    assert sb.expr == Lit(cb.value)

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["initObj", "getProp", "setProp", "delProp", "hasProp",
                     "getMetadata", "setMetadata", "dispose"]
                ),
                st.sampled_from(["o1", "o2"]),
                st.sampled_from(["a", "b"]),
                st.integers(min_value=0, max_value=9),
            ),
            max_size=8,
        )
    )
    def test_freeable_agreement(self, script):
        part = js_part()
        conc, sym = part.initial_concrete(), part.initial_symbolic()
        allocated = set()
        for action, loc_name, key, val in script:
            loc = Symbol(loc_name)
            if action == "initObj":
                if loc_name in allocated:
                    continue
                allocated.add(loc_name)
                args, sym_args = (loc, val), lst(Lit(loc), val)
            elif action in ("dispose", "getMetadata"):
                args, sym_args = (loc,), lst(Lit(loc))
            elif action == "setMetadata":
                args, sym_args = (loc, val), lst(Lit(loc), val)
            elif action == "setProp":
                args, sym_args = (loc, key, val), lst(Lit(loc), key, val)
            else:
                args, sym_args = (loc, key), lst(Lit(loc), key)
            (cb,) = part.execute_concrete(action, conc, args)
            (sb,) = part.execute_symbolic(action, sym, sym_args, PC, SOLVER)
            assert isinstance(cb, MemOk) == isinstance(sb, SymMemOk)
            if isinstance(cb, MemErr):
                assert sb.expr.items[0] == Lit(cb.value[0])
            else:
                conc, sym = cb.memory, sb.memory


class TestSymbolicBranching:
    def test_pmap_lookup_branches_on_symbolic_location(self):
        part = PMap()
        mem = part.initial_symbolic()
        for loc, v in ((Lit(L1), Lit(1)), (Lit(L2), Lit(2))):
            (b,) = part.execute_symbolic("mutate", mem, lst(loc, "p", v), PC, SOLVER)
            mem = b.memory
        branches = part.execute_symbolic("lookup", mem, lst(LVar("x"), "p"), PC, SOLVER)
        kinds = [type(b).__name__ for b in branches]
        assert kinds == ["SymMemOk", "SymMemOk", "SymMemErr"]
        assert all(b.learned for b in branches)

    def test_freeable_dispose_then_access_is_use_after_dispose(self):
        part = js_part()
        mem = part.initial_symbolic()
        (b,) = part.execute_symbolic("initObj", mem, lst(Lit(L1), "M"), PC, SOLVER)
        (b,) = part.execute_symbolic("dispose", b.memory, lst(Lit(L1)), PC, SOLVER)
        (b,) = part.execute_symbolic("getProp", b.memory, lst(Lit(L1), "a"), PC, SOLVER)
        assert isinstance(b, SymMemErr)
        assert b.expr.items[0] == Lit("use-after-dispose")


class TestRecordHelpers:
    def test_record_set_get_delete_preserve_subclass(self):
        class MyRec(Record):
            """A record subclass used to check type preservation."""

        r = MyRec("meta").set("a", 1).set("b", 2).set("a", 3)
        assert type(r) is MyRec
        assert r.get("a") == 3 and r.get("missing") is None
        assert type(r.delete("a")) is MyRec
        assert r.delete("a").props == (("b", 2),)
