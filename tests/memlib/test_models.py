"""Model-level properties of the rebuilt target memories.

The three target memories (While, MiniJS, MiniC) plus the freeable While
heap are memlib composition expressions; these tests pin the properties
the composition must preserve beyond the fingerprint: pickle safety
across the parallel explorer's worker boundary, parallel/sequential
agreement, and concrete-replay soundness of the heap model over the
differential fuzzer's generated corpus.
"""

import pickle

import pytest

from repro.engine.config import EngineConfig
from repro.engine.explorer import Explorer
from repro.engine.parallel import ParallelExplorer
from repro.engine.results import final_sort_key
from repro.gil.values import Symbol
from repro.logic.expr import Lit, lst
from repro.logic.pathcond import PathCondition
from repro.logic.solver import Solver
from repro.memlib import PartSymbolicModel, PMap, PMapSpec, rename
from repro.soundness.differential import check_trace_soundness
from repro.state.symbolic import SymbolicStateModel
from repro.targets.c_like.memory import CConcreteMemory, CSymbolicMemory
from repro.targets.js_like.memory import JSConcreteMemory, JSSymbolicMemory
from repro.targets.while_lang.heap import (
    WhileHeapConcreteMemory,
    WhileHeapLanguage,
    WhileHeapSymbolicMemory,
)
from repro.targets.while_lang.memory import (
    WhileConcreteMemory,
    WhileSymbolicMemory,
)
from tests.engine.test_fuzz_differential import CONFIG, generate_program

MODEL_CLASSES = [
    WhileConcreteMemory,
    WhileSymbolicMemory,
    JSConcreteMemory,
    JSSymbolicMemory,
    CConcreteMemory,
    CSymbolicMemory,
    WhileHeapConcreteMemory,
    WhileHeapSymbolicMemory,
]

L1 = Symbol("l1")
HEAP_LANG = WhileHeapLanguage()

#: Seeds for the heap-model fuzz cross-check: a slice of the main fuzz
#: arm's corpus, enough to exercise mutate-creates/dispose/use-after-
#: dispose interleavings without doubling the suite's fuzz time.
HEAP_SEEDS = range(12)


class TestPickleSafety:
    """Models and memories must cross the worker pickle boundary."""

    @pytest.mark.parametrize("cls", MODEL_CLASSES, ids=lambda c: c.__name__)
    def test_model_instance_round_trips(self, cls):
        model = cls()
        clone = pickle.loads(pickle.dumps(model))
        assert type(clone) is cls
        assert clone.part.actions == model.part.actions
        assert clone.initial() == model.initial()

    def test_ad_hoc_part_model_round_trips(self):
        part = rename(PMap(PMapSpec(name="adhoc")), {"get": "lookup"})
        model = PartSymbolicModel(part)
        clone = pickle.loads(pickle.dumps(model))
        assert clone.actions == model.actions
        (b,) = clone.execute(
            "mutate", clone.initial(), lst(Lit(L1), "p", 1),
            PathCondition(), Solver(),
        )
        assert b.expr == Lit(1)

    def test_populated_memories_round_trip(self):
        pc, solver = PathCondition(), Solver()
        model = WhileHeapSymbolicMemory()
        mem = model.initial()
        for action, args in (
            ("mutate", lst(Lit(L1), "p", 1)),
            ("mutate", lst(Lit(L1), "q", 2)),
            ("dispose", lst(Lit(L1))),
        ):
            (b,) = model.execute(action, mem, args, pc, solver)
            mem = b.memory
        clone = pickle.loads(pickle.dumps(mem))
        assert clone == mem
        # The cloned (tombstoned) memory still errors like the original.
        (b,) = model.execute("lookup", clone, lst(Lit(L1), "p"), pc, solver)
        assert b.expr.items[0] == Lit("use-after-dispose")


class TestConcreteSymbolicModels:
    """The two arms of one composition stay in lock-step."""

    def test_while_heap_arms_share_actions(self):
        assert WhileHeapConcreteMemory().actions == WhileHeapSymbolicMemory().actions
        assert {"lookup", "mutate", "dispose"} <= WhileHeapConcreteMemory().actions

    def test_while_heap_agreement_on_concrete_script(self):
        pc, solver = PathCondition(), Solver()
        conc_model, sym_model = WhileHeapConcreteMemory(), WhileHeapSymbolicMemory()
        conc, sym = conc_model.initial(), sym_model.initial()
        script = (
            ("mutate", (L1, "p", 7), lst(Lit(L1), "p", 7)),
            ("lookup", (L1, "p"), lst(Lit(L1), "p")),
            ("lookup", (L1, "q"), lst(Lit(L1), "q")),
            ("dispose", (L1,), lst(Lit(L1))),
            ("lookup", (L1, "p"), lst(Lit(L1), "p")),
        )
        for action, args, sym_args in script:
            (cb,) = conc_model.execute(action, conc, args)
            (sb,) = sym_model.execute(action, sym, sym_args, pc, solver)
            c_ok, s_ok = hasattr(cb, "memory"), hasattr(sb, "memory")
            assert c_ok == s_ok, action
            if c_ok:
                conc, sym = cb.memory, sb.memory
            else:
                assert sb.expr.items[0] == Lit(cb.value[0])


class TestParallelHeapExploration:
    """The heap model crosses the worker boundary inside the explorer."""

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_parallel_matches_sequential(self, seed):
        prog = generate_program(seed)
        seq = Explorer(
            prog, SymbolicStateModel(WhileHeapSymbolicMemory()), CONFIG
        ).run("main")
        par = ParallelExplorer(
            prog, SymbolicStateModel(WhileHeapSymbolicMemory()), CONFIG,
            workers=2, seed_factor=1,
        ).run("main")
        assert sorted(final_sort_key(f) for f in par.finals) == sorted(
            final_sort_key(f) for f in seq.finals
        ), f"seed {seed}: parallel finals differ from sequential"


class TestHeapFuzzCrossCheck:
    """The <100-line heap model survives the differential fuzzer."""

    @pytest.mark.parametrize("seed", HEAP_SEEDS)
    def test_concrete_replay_soundness(self, seed):
        prog = generate_program(seed)
        report = check_trace_soundness(HEAP_LANG, prog, "main", CONFIG)
        bad = [c for c in report.checks if not c.ok]
        assert not bad, (
            f"seed {seed}: {len(bad)} final(s) failed concrete replay; "
            f"first: {bad[0].detail!r}"
        )
        assert report.replayed > 0, f"seed {seed}: nothing was replayable"
