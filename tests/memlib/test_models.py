"""Model-level properties of the rebuilt target memories.

The four target memories (While, MiniJS, MiniC, MiniRust) plus the
freeable While heap are memlib composition expressions; these tests pin
the properties the composition must preserve beyond the fingerprint:
pickle safety across the parallel explorer's worker boundary,
parallel/sequential agreement, concrete/symbolic lock-step on random
owner-action scripts (hypothesis), and concrete-replay soundness of the
heap model over the differential fuzzer's generated corpus.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.config import EngineConfig
from repro.engine.explorer import Explorer
from repro.engine.parallel import ParallelExplorer
from repro.engine.results import final_sort_key
from repro.gil.values import Symbol
from repro.logic.expr import Lit, lst
from repro.logic.pathcond import PathCondition
from repro.logic.solver import Solver
from repro.memlib import PartSymbolicModel, PMap, PMapSpec, rename
from repro.soundness.differential import check_trace_soundness
from repro.state.symbolic import SymbolicStateModel
from repro.targets.c_like.memory import CConcreteMemory, CSymbolicMemory
from repro.targets.js_like.memory import JSConcreteMemory, JSSymbolicMemory
from repro.targets.while_lang.heap import (
    WhileHeapConcreteMemory,
    WhileHeapLanguage,
    WhileHeapSymbolicMemory,
)
from repro.targets.rust_like.memory import (
    FRESH_OWNER_META,
    RUST_OWNERS,
    RustConcreteMemory,
    RustSymbolicMemory,
)
from repro.targets.while_lang.memory import (
    WhileConcreteMemory,
    WhileSymbolicMemory,
)
from repro.state.interface import MemErr, MemOk, SymMemOk
from tests.engine.test_fuzz_differential import CONFIG, generate_program

MODEL_CLASSES = [
    WhileConcreteMemory,
    WhileSymbolicMemory,
    JSConcreteMemory,
    JSSymbolicMemory,
    CConcreteMemory,
    CSymbolicMemory,
    WhileHeapConcreteMemory,
    WhileHeapSymbolicMemory,
    RustConcreteMemory,
    RustSymbolicMemory,
]

L1 = Symbol("l1")
HEAP_LANG = WhileHeapLanguage()

#: Seeds for the heap-model fuzz cross-check: a slice of the main fuzz
#: arm's corpus, enough to exercise mutate-creates/dispose/use-after-
#: dispose interleavings without doubling the suite's fuzz time.
HEAP_SEEDS = range(12)


class TestPickleSafety:
    """Models and memories must cross the worker pickle boundary."""

    @pytest.mark.parametrize("cls", MODEL_CLASSES, ids=lambda c: c.__name__)
    def test_model_instance_round_trips(self, cls):
        model = cls()
        clone = pickle.loads(pickle.dumps(model))
        assert type(clone) is cls
        assert clone.part.actions == model.part.actions
        assert clone.initial() == model.initial()

    def test_ad_hoc_part_model_round_trips(self):
        part = rename(PMap(PMapSpec(name="adhoc")), {"get": "lookup"})
        model = PartSymbolicModel(part)
        clone = pickle.loads(pickle.dumps(model))
        assert clone.actions == model.actions
        (b,) = clone.execute(
            "mutate", clone.initial(), lst(Lit(L1), "p", 1),
            PathCondition(), Solver(),
        )
        assert b.expr == Lit(1)

    def test_populated_memories_round_trip(self):
        pc, solver = PathCondition(), Solver()
        model = WhileHeapSymbolicMemory()
        mem = model.initial()
        for action, args in (
            ("mutate", lst(Lit(L1), "p", 1)),
            ("mutate", lst(Lit(L1), "q", 2)),
            ("dispose", lst(Lit(L1))),
        ):
            (b,) = model.execute(action, mem, args, pc, solver)
            mem = b.memory
        clone = pickle.loads(pickle.dumps(mem))
        assert clone == mem
        # The cloned (tombstoned) memory still errors like the original.
        (b,) = model.execute("lookup", clone, lst(Lit(L1), "p"), pc, solver)
        assert b.expr.items[0] == Lit("use-after-dispose")


class TestConcreteSymbolicModels:
    """The two arms of one composition stay in lock-step."""

    def test_while_heap_arms_share_actions(self):
        assert WhileHeapConcreteMemory().actions == WhileHeapSymbolicMemory().actions
        assert {"lookup", "mutate", "dispose"} <= WhileHeapConcreteMemory().actions

    def test_while_heap_agreement_on_concrete_script(self):
        pc, solver = PathCondition(), Solver()
        conc_model, sym_model = WhileHeapConcreteMemory(), WhileHeapSymbolicMemory()
        conc, sym = conc_model.initial(), sym_model.initial()
        script = (
            ("mutate", (L1, "p", 7), lst(Lit(L1), "p", 7)),
            ("lookup", (L1, "p"), lst(Lit(L1), "p")),
            ("lookup", (L1, "q"), lst(Lit(L1), "q")),
            ("dispose", (L1,), lst(Lit(L1))),
            ("lookup", (L1, "p"), lst(Lit(L1), "p")),
        )
        for action, args, sym_args in script:
            (cb,) = conc_model.execute(action, conc, args)
            (sb,) = sym_model.execute(action, sym, sym_args, pc, solver)
            c_ok, s_ok = hasattr(cb, "memory"), hasattr(sb, "memory")
            assert c_ok == s_ok, action
            if c_ok:
                conc, sym = cb.memory, sb.memory
            else:
                assert sb.expr.items[0] == Lit(cb.value[0])


class TestRustOwnerAgreement:
    """The owner table's two arms agree on arbitrary action scripts.

    Scripts draw actions, locations and generations at random, so they
    hit every error branch (unregistered owner, stale generation,
    borrow-discipline violations, tombstoned records) as well as the
    success paths; concrete and symbolic execution must stay in
    lock-step on branch shape, error tags and returned generations.
    """

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(
                    ["own_new", "own_check", "own_move", "borrow",
                     "borrow_mut", "release", "release_mut", "drop_check",
                     "own_drop"]
                ),
                st.sampled_from(["o1", "o2"]),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=10,
        )
    )
    def test_owner_script_agreement(self, script):
        pc, solver = PathCondition(), Solver()
        conc, sym = RUST_OWNERS.initial_concrete(), RUST_OWNERS.initial_symbolic()
        registered = set()
        for action, loc_name, gen in script:
            loc = Symbol(loc_name)
            if action == "own_new":
                if loc_name in registered:
                    continue  # double registration raises (allocator bug)
                registered.add(loc_name)
                args, sym_args = (loc, FRESH_OWNER_META), lst(
                    Lit(loc), Lit(FRESH_OWNER_META)
                )
            elif action == "own_drop":
                args, sym_args = (loc,), lst(Lit(loc))
            else:
                args, sym_args = (loc, gen), lst(Lit(loc), gen)
            (cb,) = RUST_OWNERS.execute_concrete(action, conc, args)
            (sb,) = RUST_OWNERS.execute_symbolic(action, sym, sym_args, pc, solver)
            assert isinstance(cb, MemOk) == isinstance(sb, SymMemOk), action
            if isinstance(cb, MemErr):
                assert sb.expr.items[0] == Lit(cb.value[0]), action
            else:
                conc, sym = cb.memory, sb.memory
                if not isinstance(cb.value, bool):
                    assert sb.expr == Lit(cb.value), action

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.sampled_from(["alloc", "store", "load", "free", "own_new",
                                 "own_check", "own_move", "own_drop"]),
                st.sampled_from(["b1", "b2"]),
                st.integers(min_value=0, max_value=2),
            ),
            max_size=8,
        )
    )
    def test_full_memory_script_agreement(self, script):
        """The whole heap x owner product stays in lock-step too."""
        pc, solver = PathCondition(), Solver()
        conc_model, sym_model = RustConcreteMemory(), RustSymbolicMemory()
        conc, sym = conc_model.initial(), sym_model.initial()
        chunk = (1, 1, "word")
        allocated = set()
        registered = set()
        for action, loc_name, n in script:
            loc = Symbol(loc_name)
            if action == "alloc":
                if loc_name in allocated:
                    continue
                allocated.add(loc_name)
                args, sym_args = (loc, 2), lst(Lit(loc), 2)
            elif action == "own_new":
                if loc_name in registered:
                    continue
                registered.add(loc_name)
                args = (loc, FRESH_OWNER_META)
                sym_args = lst(Lit(loc), Lit(FRESH_OWNER_META))
            elif action in ("store",):
                args = (chunk, (loc, n), n)
                sym_args = lst(Lit(chunk), lst(Lit(loc), n), n)
            elif action == "load":
                args = (chunk, (loc, n))
                sym_args = lst(Lit(chunk), lst(Lit(loc), n))
            elif action == "free":
                args, sym_args = ((loc, 0),), lst(lst(Lit(loc), 0))
            elif action == "own_drop":
                args, sym_args = (loc,), lst(Lit(loc))
            else:
                args, sym_args = (loc, n), lst(Lit(loc), n)
            conc_branches = conc_model.execute(action, conc, args)
            sym_branches = sym_model.execute(action, sym, sym_args, pc, solver)
            assert len(conc_branches) == len(sym_branches) == 1, action
            cb, sb = conc_branches[0], sym_branches[0]
            assert isinstance(cb, MemOk) == isinstance(sb, SymMemOk), action
            if isinstance(cb, MemOk):
                conc, sym = cb.memory, sb.memory


class TestParallelHeapExploration:
    """The heap model crosses the worker boundary inside the explorer."""

    @pytest.mark.parametrize("seed", [1, 7, 23])
    def test_parallel_matches_sequential(self, seed):
        prog = generate_program(seed)
        seq = Explorer(
            prog, SymbolicStateModel(WhileHeapSymbolicMemory()), CONFIG
        ).run("main")
        par = ParallelExplorer(
            prog, SymbolicStateModel(WhileHeapSymbolicMemory()), CONFIG,
            workers=2, seed_factor=1,
        ).run("main")
        assert sorted(final_sort_key(f) for f in par.finals) == sorted(
            final_sort_key(f) for f in seq.finals
        ), f"seed {seed}: parallel finals differ from sequential"


#: a MiniRust program whose exploration crosses every owner action and
#: branches on a symbolic index (block-offset concretisation)
RUST_PARALLEL_SOURCE = """
fn main() -> i64 {
  let n = symb_int();
  assume(0 <= n && n <= 2);
  let mut v = [10, 20, 30];
  let r = &v;
  let x = r[n];
  drop(r);
  let m = &mut v;
  m[0] = x + 1;
  drop(m);
  let w = v;
  drop(w);
  assert!(x <= 30);
  return x;
}
"""


class TestParallelRustExploration:
    """The Rust product memory crosses the worker pickle boundary."""

    def test_parallel_matches_sequential(self):
        from repro.targets.rust_like import MiniRustLanguage

        lang = MiniRustLanguage()
        prog = lang.compile(RUST_PARALLEL_SOURCE)
        seq = Explorer(
            prog, SymbolicStateModel(lang.symbolic_memory()), CONFIG
        ).run("main")
        par = ParallelExplorer(
            prog, SymbolicStateModel(lang.symbolic_memory()), CONFIG,
            workers=2, seed_factor=1,
        ).run("main")
        assert sorted(final_sort_key(f) for f in par.finals) == sorted(
            final_sort_key(f) for f in seq.finals
        )
        assert len(seq.finals) >= 3  # the symbolic index splits paths


class TestHeapFuzzCrossCheck:
    """The <100-line heap model survives the differential fuzzer."""

    @pytest.mark.parametrize("seed", HEAP_SEEDS)
    def test_concrete_replay_soundness(self, seed):
        prog = generate_program(seed)
        report = check_trace_soundness(HEAP_LANG, prog, "main", CONFIG)
        bad = [c for c in report.checks if not c.ok]
        assert not bad, (
            f"seed {seed}: {len(bad)} final(s) failed concrete replay; "
            f"first: {bad[0].detail!r}"
        )
        assert report.replayed > 0, f"seed {seed}: nothing was replayable"
