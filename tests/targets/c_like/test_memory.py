"""Unit and MA-RS/MA-RC tests for the MiniC memory models (§4.2)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gil.values import Symbol
from repro.logic.expr import Lit, LVar, lst
from repro.logic.pathcond import PathCondition
from repro.logic.solver import Solver
from repro.soundness.interpretation import check_action
from repro.state.interface import MemErr, MemOk, SymMemErr, SymMemOk
from repro.targets.c_like.memory import (
    PERM_FREEABLE,
    PERM_NONE,
    CConcreteMemory,
    CMemory,
    CSymbolicMemory,
    SymBlock,
    SymCMemory,
    interpret_memory,
)

CONC = CConcreteMemory()
SYM = CSymbolicMemory()
B1, B2 = Symbol("b1"), Symbol("b2")
INT32 = (4, 4, "int32")
INT8 = (1, 1, "int8")
PTR = (8, 8, "ptr")


def alloc(mem, loc, size):
    (branch,) = CONC.execute("alloc", mem, (loc, size))
    return branch.memory, branch.value


class TestConcreteAllocFree:
    def test_alloc_returns_base_pointer(self):
        mem, ptr = alloc(CONC.initial(), B1, 8)
        assert ptr == (B1, 0)

    def test_zero_size_rejected(self):
        (branch,) = CONC.execute("alloc", CONC.initial(), (B1, 0))
        assert isinstance(branch, MemErr)

    def test_free_marks_dead(self):
        mem, ptr = alloc(CONC.initial(), B1, 8)
        (b,) = CONC.execute("free", mem, (ptr,))
        (b2,) = CONC.execute("load", b.memory, (INT32, ptr))
        assert isinstance(b2, MemErr) and b2.value[0] == "use-after-free"

    def test_double_free(self):
        mem, ptr = alloc(CONC.initial(), B1, 8)
        (b,) = CONC.execute("free", mem, (ptr,))
        (b2,) = CONC.execute("free", b.memory, (ptr,))
        assert isinstance(b2, MemErr) and b2.value[0] == "double-free"

    def test_free_interior_pointer(self):
        mem, ptr = alloc(CONC.initial(), B1, 8)
        (b,) = CONC.execute("free", mem, ((B1, 4),))
        assert isinstance(b, MemErr) and b.value[0] == "free-of-interior-pointer"


class TestConcreteLoadStore:
    def test_store_load_roundtrip(self):
        mem, ptr = alloc(CONC.initial(), B1, 8)
        (b,) = CONC.execute("store", mem, (INT32, (B1, 4), 77))
        (b2,) = CONC.execute("load", b.memory, (INT32, (B1, 4)))
        assert b2.value == 77

    def test_pointer_store_load(self):
        mem, _ = alloc(CONC.initial(), B1, 8)
        mem, _ = alloc(mem, B2, 8)
        (b,) = CONC.execute("store", mem, (PTR, (B1, 0), (B2, 4)))
        (b2,) = CONC.execute("load", b.memory, (PTR, (B1, 0)))
        assert b2.value == (B2, 4)

    def test_out_of_bounds(self):
        mem, ptr = alloc(CONC.initial(), B1, 8)
        (b,) = CONC.execute("load", mem, (INT32, (B1, 8)))
        assert isinstance(b, MemErr) and b.value[0] == "buffer-overflow"

    def test_negative_offset(self):
        mem, _ = alloc(CONC.initial(), B1, 8)
        (b,) = CONC.execute("store", mem, (INT32, (B1, -4), 1))
        assert isinstance(b, MemErr) and b.value[0] == "buffer-overflow"

    def test_misaligned(self):
        mem, _ = alloc(CONC.initial(), B1, 8)
        (b,) = CONC.execute("load", mem, (INT32, (B1, 2)))
        assert isinstance(b, MemErr) and b.value[0] == "misaligned-access"

    def test_uninitialised_read(self):
        mem, _ = alloc(CONC.initial(), B1, 8)
        (b,) = CONC.execute("load", mem, (INT32, (B1, 0)))
        assert isinstance(b, MemErr) and b.value[0] == "uninitialised-read"

    def test_partial_overwrite_corrupts(self):
        mem, _ = alloc(CONC.initial(), B1, 8)
        (b,) = CONC.execute("store", mem, (INT32, (B1, 0), 1))
        (b2,) = CONC.execute("store", b.memory, (INT8, (B1, 1), 9))
        (b3,) = CONC.execute("load", b2.memory, (INT32, (B1, 0)))
        assert isinstance(b3, MemErr) and b3.value[0] == "corrupted-read"

    def test_byte_reconstruction(self):
        # memset-style int8 writes decode as an int32.
        mem, _ = alloc(CONC.initial(), B1, 4)
        for i, byte in enumerate((1, 0, 0, 0)):
            (b,) = CONC.execute("store", mem, (INT8, (B1, i), byte))
            mem = b.memory
        (b2,) = CONC.execute("load", mem, (INT32, (B1, 0)))
        assert b2.value == 1

    def test_null_dereference(self):
        (b,) = CONC.execute("load", CONC.initial(), (INT32, 0))
        assert isinstance(b, MemErr) and b.value[0] == "null-dereference"


class TestConcreteBulkOps:
    def test_memcpy_preserves_undef(self):
        mem, _ = alloc(CONC.initial(), B1, 8)
        mem2, _ = alloc(mem, B2, 8)
        (b,) = CONC.execute("store", mem2, (INT32, (B1, 0), 5))
        (b2,) = CONC.execute("memcpy", b.memory, ((B2, 0), (B1, 0), 8))
        (b3,) = CONC.execute("load", b2.memory, (INT32, (B2, 0)))
        assert b3.value == 5
        (b4,) = CONC.execute("load", b2.memory, (INT32, (B2, 4)))
        assert isinstance(b4, MemErr)  # copied undef stays undef

    def test_memcpy_out_of_bounds(self):
        mem, _ = alloc(CONC.initial(), B1, 4)
        mem2, _ = alloc(mem, B2, 8)
        (b,) = CONC.execute("memcpy", mem2, ((B1, 0), (B2, 0), 8))
        assert isinstance(b, MemErr)

    def test_memset(self):
        mem, _ = alloc(CONC.initial(), B1, 4)
        (b,) = CONC.execute("memset", mem, ((B1, 0), 4, 0))
        (b2,) = CONC.execute("load", b.memory, (INT32, (B1, 0)))
        assert b2.value == 0

    def test_bounds_action(self):
        mem, _ = alloc(CONC.initial(), B1, 12)
        (b,) = CONC.execute("bounds", mem, ((B1, 0),))
        assert b.value == 12


class TestConcreteCmpPtr:
    def _mem2(self):
        mem, _ = alloc(CONC.initial(), B1, 8)
        return alloc(mem, B2, 8)[0]

    def test_eq_same_block(self):
        mem = self._mem2()
        (b,) = CONC.execute("cmp_ptr", mem, ("eq", (B1, 0), (B1, 0)))
        assert b.value is True

    def test_eq_different_blocks_false(self):
        mem = self._mem2()
        (b,) = CONC.execute("cmp_ptr", mem, ("eq", (B1, 0), (B2, 0)))
        assert b.value is False

    def test_relational_same_block(self):
        mem = self._mem2()
        (b,) = CONC.execute("cmp_ptr", mem, ("lt", (B1, 0), (B1, 4)))
        assert b.value is True

    def test_relational_cross_block_ub(self):
        mem = self._mem2()
        (b,) = CONC.execute("cmp_ptr", mem, ("lt", (B1, 0), (B2, 0)))
        assert isinstance(b, MemErr) and b.value[0] == "ub-compare-different-blocks"

    def test_freed_pointer_comparison_ub(self):
        mem = self._mem2()
        (b,) = CONC.execute("free", mem, ((B1, 0),))
        (b2,) = CONC.execute("cmp_ptr", b.memory, ("eq", (B1, 0), (B2, 0)))
        assert isinstance(b2, MemErr) and b2.value[0] == "ub-compare-freed-pointer"

    def test_null_equality_defined(self):
        mem = self._mem2()
        (b,) = CONC.execute("cmp_ptr", mem, ("eq", 0, (B1, 0)))
        assert b.value is False
        (b2,) = CONC.execute("cmp_ptr", mem, ("ne", 0, 0))
        assert b2.value is False


class TestSymbolicOffsets:
    def _sym_mem(self, size=12):
        blocks = {B1: SymBlock.fresh(size)}
        return SymCMemory.of(blocks)

    def test_concrete_offset_store_load(self):
        mem = self._sym_mem()
        (b,) = SYM.execute(
            "store", mem, lst(Lit(INT32), lst(B1, 4), LVar("v")),
            PathCondition.true(), Solver(),
        )
        (b2,) = SYM.execute(
            "load", b.memory, lst(Lit(INT32), lst(B1, 4)),
            PathCondition.true(), Solver(),
        )
        assert b2.expr == LVar("v")

    def test_symbolic_offset_branches(self):
        mem = self._sym_mem()
        i = LVar("i")
        from repro.logic.expr import UnOp, UnOpExpr

        pc = PathCondition.of(
            UnOpExpr(UnOp.FLOOR, i).eq(i), Lit(0).leq(i), i.lt(Lit(3))
        )
        branches = SYM.execute(
            "store", mem, lst(Lit(INT32), lst(B1, i * 4), LVar("v")), pc, Solver()
        )
        # Offsets 0, 4, 8 feasible; out-of-bounds infeasible under pc.
        assert len(branches) == 3
        assert all(isinstance(b, SymMemOk) for b in branches)

    def test_symbolic_offset_with_overflow_branch(self):
        mem = self._sym_mem()
        i = LVar("i")
        from repro.logic.expr import UnOp, UnOpExpr

        pc = PathCondition.of(
            UnOpExpr(UnOp.FLOOR, i).eq(i), Lit(0).leq(i), i.leq(Lit(3))
        )
        branches = SYM.execute(
            "store", mem, lst(Lit(INT32), lst(B1, i * 4), LVar("v")), pc, Solver()
        )
        errs = [b for b in branches if isinstance(b, SymMemErr)]
        assert len(errs) == 1  # i == 3 overflows

    def test_use_after_free_symbolic(self):
        blocks = {B1: SymBlock(8, PERM_NONE, (None,) * 8)}
        mem = SymCMemory.of(blocks)
        branches = SYM.execute(
            "load", mem, lst(Lit(INT32), lst(B1, 0)), PathCondition.true(), Solver()
        )
        assert isinstance(branches[0], SymMemErr)


class TestSymbolicInterpretation:
    def test_roundtrip(self):
        block = SymBlock(4, PERM_FREEABLE, tuple(
            (LVar("v"), i, 4, "int32") for i in range(4)
        ))
        mem = SymCMemory.of({B1: block})
        conc = interpret_memory({"v": 9}, mem)
        (b,) = CONC.execute("load", conc, (INT32, (B1, 0)))
        assert b.value == 9


# -- MA-RS / MA-RC property tests ------------------------------------------------

_offsets = st.one_of(st.sampled_from([Lit(0), Lit(4), Lit(8)]), st.just(LVar("o")))
_values = st.one_of(st.integers(-3, 3).map(Lit), st.just(LVar("v")))


@st.composite
def _memories(draw):
    cells = []
    for i in range(8):
        kind = draw(st.sampled_from(["undef", "int32", "int8"]))
        if kind == "undef":
            cells.append(None)
        elif kind == "int8":
            cells.append((draw(_values), 0, 1, "int8"))
        else:
            # Align int32 fragments on a 4-boundary start.
            cells.append((LVar("w"), i % 4, 4, "int32"))
    block = SymBlock(8, PERM_FREEABLE, tuple(cells))
    return SymCMemory.of({B1: block})


@st.composite
def _envs(draw):
    return {
        "o": draw(st.sampled_from([0, 4, 8, 12])),
        "v": draw(st.integers(-3, 3)),
        "w": draw(st.integers(-3, 3)),
    }


@given(memory=_memories(), env=_envs(), offset=_offsets)
@settings(max_examples=100, deadline=None)
def test_load_ma_rs_rc(memory, env, offset):
    report = check_action(
        CONC, SYM, interpret_memory, env, memory,
        "load", lst(Lit(INT32), lst(B1, offset)),
    )
    assert report.ok, report.detail


@given(memory=_memories(), env=_envs(), offset=_offsets, value=_values)
@settings(max_examples=100, deadline=None)
def test_store_ma_rs_rc(memory, env, offset, value):
    report = check_action(
        CONC, SYM, interpret_memory, env, memory,
        "store", lst(Lit(INT32), lst(B1, offset), value),
    )
    assert report.ok, report.detail
