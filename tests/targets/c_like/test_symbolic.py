"""Symbolic testing of MiniC programs (the Gillian-C behaviours, §4.2)."""

import pytest

from repro.engine.config import EngineConfig
from repro.targets.c_like import MiniCLanguage
from repro.testing.harness import SymbolicTester

LANG = MiniCLanguage()


def run(source: str, entry: str = "main", **kw):
    return SymbolicTester(LANG, **kw).run_source(source, entry)


class TestMemorySafety:
    def test_symbolic_index_overflow_found(self):
        result = run(
            """
            int main() {
              int *a = (int *) malloc(3 * sizeof(int));
              int i = symb_int();
              assume(0 <= i && i <= 3);
              a[i] = 1;
              free(a);
              return 0;
            }"""
        )
        assert result.verdict == "bug"
        bug = next(b for b in result.bugs if b.confirmed)
        assert list(bug.model.values()) == [3]

    def test_bounds_checked_write_verified(self):
        result = run(
            """
            int main() {
              int *a = (int *) malloc(3 * sizeof(int));
              int i = symb_int();
              assume(0 <= i && i < 3);
              a[i] = 7;
              int v = a[i];
              free(a);
              assert(v == 7);
              return 0;
            }"""
        )
        assert result.passed

    def test_conditional_free_uaf(self):
        result = run(
            """
            int main() {
              int *p = (int *) malloc(4);
              *p = 1;
              int flag = symb_bool();
              if (flag == 1) { free(p); }
              int v = *p;
              return v;
            }"""
        )
        assert result.verdict == "bug"
        assert len(result.bugs) == 1

    def test_double_free_detected(self):
        result = run(
            """
            int main() {
              int *p = (int *) malloc(4);
              int n = symb_int();
              assume(1 <= n && n <= 2);
              for (int i = 0; i < n; i++) { free(p); }
              return 0;
            }"""
        )
        assert result.verdict == "bug"

    def test_uninitialised_read_detected(self):
        result = run(
            """
            int main() {
              int *a = (int *) malloc(8);
              a[0] = 1;
              int i = symb_int();
              assume(0 <= i && i <= 1);
              int v = a[i];
              free(a);
              return v;
            }"""
        )
        # i == 1 reads an uninitialised cell.
        assert result.verdict == "bug"
        assert len(result.bugs) == 1

    def test_free_of_interior_pointer(self):
        result = run(
            """
            int main() {
              int *a = (int *) malloc(8);
              free(a + 1);
              return 0;
            }"""
        )
        assert result.verdict == "bug"


class TestPointerReasoning:
    def test_symbolic_offset_read_branches(self):
        result = run(
            """
            int main() {
              int *a = (int *) malloc(3 * sizeof(int));
              for (int i = 0; i < 3; i++) { a[i] = i * 10; }
              int k = symb_int();
              assume(0 <= k && k < 3);
              int v = a[k];
              free(a);
              assert(v == k * 10);
              return 0;
            }"""
        )
        assert result.passed
        assert result.paths == 3

    def test_aliasing_through_struct(self):
        result = run(
            """
            struct Box { int *data; };
            int main() {
              int *a = (int *) malloc(4);
              struct Box *b1 = (struct Box *) malloc(sizeof(struct Box));
              struct Box *b2 = (struct Box *) malloc(sizeof(struct Box));
              b1->data = a;
              b2->data = a;
              *(b1->data) = 5;
              int v = *(b2->data);
              assert(v == 5);
              free(a); free(b1); free(b2);
              return 0;
            }"""
        )
        assert result.passed

    def test_pointer_equality_same_block(self):
        result = run(
            """
            int main() {
              int *a = (int *) malloc(8);
              int i = symb_int();
              assume(0 <= i && i <= 1);
              int *p = a + i;
              if (p == a) { assert(i == 0); }
              else { assert(i == 1); }
              free(a);
              return 0;
            }"""
        )
        assert result.passed

    def test_ub_freed_pointer_comparison_detected(self):
        result = run(
            """
            int main() {
              int *p = (int *) malloc(4);
              int *q = p;
              free(p);
              if (q == p) { return 1; }
              return 0;
            }"""
        )
        assert result.verdict == "bug"


class TestStructsSymbolic:
    def test_symbolic_struct_fields(self):
        result = run(
            """
            struct Pair { int a; int b; };
            int main() {
              struct Pair *p = (struct Pair *) malloc(sizeof(struct Pair));
              p->a = symb_int();
              p->b = symb_int();
              assume(p->a < p->b);
              int d = p->b - p->a;
              free(p);
              assert(d > 0);
              return d;
            }"""
        )
        assert result.passed

    def test_linked_list_symbolic_length(self):
        result = run(
            """
            struct Node { int value; struct Node *next; };
            int main() {
              int n = symb_int();
              assume(0 <= n && n <= 3);
              struct Node *head = NULL;
              for (int i = 0; i < n; i++) {
                struct Node *node = (struct Node *) malloc(sizeof(struct Node));
                node->value = i;
                node->next = head;
                head = node;
              }
              int count = 0;
              struct Node *cur = head;
              while (cur != NULL) {
                count = count + 1;
                cur = cur->next;
              }
              assert(count == n);
              return count;
            }"""
        )
        assert result.passed
        assert result.paths == 4


class TestStrings:
    def test_strcmp_with_symbolic_char(self):
        result = run(
            """
            int main() {
              char *buf = (char *) malloc(2);
              int c = symb_char();
              assume('a' <= c && c <= 'c');
              buf[0] = c;
              buf[1] = 0;
              int r = strcmp(buf, "b");
              if (c < 'b') { assert(r < 0); }
              if (c == 'b') { assert(r == 0); }
              if (c > 'b') { assert(r > 0); }
              free(buf);
              return 0;
            }"""
        )
        assert result.passed

    def test_strlen_concrete(self):
        result = run(
            """
            int main() {
              assert(strlen("hello") == 5);
              assert(strlen("") == 0);
              return 0;
            }"""
        )
        assert result.passed


class TestBounds:
    def test_loop_bound_drops_paths(self):
        config = EngineConfig(max_steps_per_path=200)
        result = SymbolicTester(LANG, config=config).run_source(
            "int main() { while (1) { int x = 0; } return 0; }", "main"
        )
        assert result.passed
        assert result.stats.paths_dropped >= 1
