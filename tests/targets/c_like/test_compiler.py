"""Structural tests for the MiniC-to-GIL compiler."""

import pytest

from repro.gil.syntax import ActionCall, Call, ISym, USym
from repro.logic.expr import Lit
from repro.targets.c_like.compiler import CompileError, compile_source


def compile_src(source: str):
    return compile_source(source)


def proc_actions(proc):
    return [c for c in proc.body if isinstance(c, ActionCall)]


class TestMallocFamily:
    def test_malloc_emits_usym_and_alloc(self):
        prog = compile_src("int main() { int *p = (int *) malloc(8); return 0; }")
        proc = prog.procs["main"]
        assert any(isinstance(c, USym) for c in proc.body)
        assert [c.action for c in proc_actions(proc)] == ["alloc"]

    def test_calloc_allocs_and_memsets(self):
        prog = compile_src("int main() { int *p = (int *) calloc(2, 4); return 0; }")
        actions = [c.action for c in proc_actions(prog.procs["main"])]
        assert actions == ["alloc", "memset"]

    def test_free_emits_free(self):
        prog = compile_src(
            "int main() { int *p = (int *) malloc(4); free(p); return 0; }"
        )
        actions = [c.action for c in proc_actions(prog.procs["main"])]
        assert "free" in actions

    def test_stack_array_allocates(self):
        prog = compile_src("int main() { int a[4]; return 0; }")
        actions = [c.action for c in proc_actions(prog.procs["main"])]
        assert actions == ["alloc"]


class TestChunks:
    def _store_chunks(self, source):
        prog = compile_src(source)
        return [
            c.arg.items[0].value
            for c in proc_actions(prog.procs["main"])
            if c.action == "store"
        ]

    def test_int_store_uses_int32_chunk(self):
        chunks = self._store_chunks(
            "int main() { int *p = (int *) malloc(4); *p = 1; return 0; }"
        )
        assert chunks == [(4, 4, "int32")]

    def test_char_store_uses_int8_chunk(self):
        chunks = self._store_chunks(
            "int main() { char *p = (char *) malloc(1); *p = 'x'; return 0; }"
        )
        assert chunks == [(1, 1, "int8")]

    def test_pointer_store_uses_ptr_chunk(self):
        chunks = self._store_chunks(
            """
            struct N { struct N *next; };
            int main() {
              struct N *n = (struct N *) malloc(sizeof(struct N));
              n->next = NULL;
              return 0;
            }"""
        )
        assert chunks == [(8, 8, "ptr")]


class TestFieldOffsets:
    def test_second_field_offset_in_pointer(self):
        prog = compile_src(
            """
            struct P { int x; int y; };
            int main() {
              struct P *p = (struct P *) malloc(sizeof(struct P));
              p->y = 1;
              return 0;
            }"""
        )
        stores = [
            c for c in proc_actions(prog.procs["main"]) if c.action == "store"
        ]
        # Offset expression must add 4 (the y field's offset).
        assert "4" in repr(stores[0].arg)

    def test_index_scaling(self):
        prog = compile_src(
            "int main() { int *a = (int *) malloc(8); a[1] = 5; return 0; }"
        )
        stores = [
            c for c in proc_actions(prog.procs["main"]) if c.action == "store"
        ]
        assert "4" in repr(stores[0].arg)  # 1 * sizeof(int)


class TestPointerComparisons:
    def test_pointer_equality_uses_cmp_ptr(self):
        prog = compile_src(
            """
            int main() {
              int *p = (int *) malloc(4);
              if (p == NULL) { return 1; }
              free(p);
              return 0;
            }"""
        )
        actions = [c.action for c in proc_actions(prog.procs["main"])]
        assert "cmp_ptr" in actions

    def test_int_comparison_does_not(self):
        prog = compile_src("int main() { int a = 1; if (a == 1) { return 1; } return 0; }")
        actions = [c.action for c in proc_actions(prog.procs["main"])]
        assert "cmp_ptr" not in actions

    def test_pointer_condition_truthiness_uses_cmp_ptr(self):
        prog = compile_src(
            """
            int main() {
              int *p = (int *) malloc(4);
              if (p) { free(p); }
              return 0;
            }"""
        )
        actions = [c.action for c in proc_actions(prog.procs["main"])]
        assert "cmp_ptr" in actions


class TestAddressedLocals:
    def test_addressed_local_gets_slot(self):
        prog = compile_src(
            """
            void set(int *out) { *out = 1; }
            int main() { int v = 0; set(&v); return v; }"""
        )
        main = prog.procs["main"]
        actions = [c.action for c in proc_actions(main)]
        # slot alloc + initial store + final load
        assert "alloc" in actions and "store" in actions and "load" in actions

    def test_plain_local_stays_register(self):
        prog = compile_src("int main() { int v = 1; return v; }")
        assert proc_actions(prog.procs["main"]) == []

    def test_address_of_unaddressable_rejected(self):
        # & on a never-declared name.
        with pytest.raises(CompileError):
            compile_src("int main() { return *(&undeclared); }")


class TestErrors:
    def test_unknown_function(self):
        with pytest.raises(CompileError):
            compile_src("int main() { return nothere(); }")

    def test_arity_mismatch(self):
        with pytest.raises(CompileError):
            compile_src("int f(int a) { return a; } int main() { return f(); }")

    def test_unknown_field(self):
        with pytest.raises(CompileError):
            compile_src(
                """
                struct P { int x; };
                int main() {
                  struct P *p = (struct P *) malloc(sizeof(struct P));
                  return p->nope;
                }"""
            )

    def test_deref_non_pointer(self):
        with pytest.raises(CompileError):
            compile_src("int main() { int a = 1; return *a; }")
