"""The Collections-style library suites (Table 2 substrate) behave as §4.2 reports."""

import pytest

from repro.targets.c_like import MiniCLanguage
from repro.targets.c_like.collections import suites
from repro.targets.c_like.collections.library import full_library
from repro.testing.harness import SymbolicTester

LANG = MiniCLanguage()


def test_counts_match_table2():
    counts = suites.expected_test_counts()
    for name in suites.suite_names():
        _, tests = suites.suite(name)
        assert len(tests) == counts[name], name
    assert sum(counts.values()) == 161


def test_full_library_compiles():
    prog = LANG.compile(full_library())
    for fn in ("array_add", "deque_add_last", "list_add_last", "pqueue_push",
               "queue_enqueue", "rbuf_enqueue", "slist_add", "stack_push",
               "treetbl_add", "treeset_add", "str_hash"):
        assert prog.get(fn) is not None


@pytest.mark.parametrize("name", suites.suite_names(include_hash=True))
def test_suite_outcomes(name):
    source, tests = suites.suite(name)
    prog = LANG.compile(source)
    tester = SymbolicTester(LANG)
    for test in tests:
        result = tester.run_test(prog, test)
        if test in suites.KNOWN_BUG_TESTS:
            assert not result.passed, f"{test} should re-detect a finding"
            assert any(b.confirmed for b in result.bugs), test
        else:
            assert result.passed, (test, result.bugs)


def test_five_findings_planted():
    assert len(suites.KNOWN_BUG_TESTS) == 5  # the five §4.2 findings
