"""Tests for the MiniC parser and type layout."""

import pytest

from repro.frontend.lexer import ParseError
from repro.targets.c_like import ast
from repro.targets.c_like.ctypes import (
    CHAR,
    INT,
    VOID,
    ArrayType,
    PointerType,
    StructType,
    TypeTable,
)
from repro.targets.c_like.parser import parse_program


def parse_main(body: str, prelude: str = "") -> ast.FuncDef:
    program = parse_program(f"{prelude}\nint main() {{ {body} }}")
    return program.functions[-1]


def first_stmt(body: str, prelude: str = "") -> ast.Statement:
    return parse_main(body, prelude).body[0]


def expr_of(text: str) -> ast.Expression:
    stmt = first_stmt(f"int x = {text};")
    assert isinstance(stmt, ast.Decl)
    return stmt.init


class TestLayout:
    def test_scalar_sizes(self):
        t = TypeTable()
        assert t.size_of(INT) == 4
        assert t.size_of(CHAR) == 1
        assert t.size_of(PointerType(INT)) == 8

    def test_struct_layout_with_padding(self):
        t = TypeTable()
        layout = t.define_struct("S", [("c", CHAR), ("n", INT), ("p", PointerType(VOID))])
        assert layout.fields["c"][0] == 0
        assert layout.fields["n"][0] == 4   # padded to int alignment
        assert layout.fields["p"][0] == 8
        assert layout.size == 16
        assert layout.align == 8

    def test_struct_of_struct(self):
        t = TypeTable()
        t.define_struct("Inner", [("a", INT), ("b", INT)])
        layout = t.define_struct("Outer", [("c", CHAR), ("i", StructType("Inner"))])
        assert layout.fields["i"][0] == 4
        assert layout.size == 12

    def test_array_field(self):
        t = TypeTable()
        layout = t.define_struct("Buf", [("data", ArrayType(INT, 4)), ("n", INT)])
        assert layout.fields["n"][0] == 16
        assert layout.size == 20

    def test_redefinition_rejected(self):
        t = TypeTable()
        t.define_struct("S", [("a", INT)])
        with pytest.raises(TypeError):
            t.define_struct("S", [("a", INT)])

    def test_chunks(self):
        t = TypeTable()
        assert t.chunk_of(INT) == (4, 4, "int32")
        assert t.chunk_of(CHAR) == (1, 1, "int8")
        assert t.chunk_of(PointerType(INT)) == (8, 8, "ptr")


class TestParserDeclarations:
    def test_struct_def(self):
        program = parse_program(
            "struct Node { int value; struct Node *next; };"
            "int main() { return 0; }"
        )
        struct = program.structs[0]
        assert struct.name == "Node"
        assert struct.fields[0] == ("value", INT)
        assert struct.fields[1] == ("next", PointerType(StructType("Node")))

    def test_pointer_levels(self):
        stmt = first_stmt("int **pp = NULL;")
        assert stmt.type == PointerType(PointerType(INT))

    def test_array_decl(self):
        stmt = first_stmt("int a[4];")
        assert stmt == ast.ArrayDecl(INT, "a", 4)

    def test_params(self):
        program = parse_program("int f(int a, char *s) { return a; } int main() { return 0; }")
        params = program.functions[0].params
        assert params[0].type == INT
        assert params[1].type == PointerType(CHAR)

    def test_void_param_list(self):
        program = parse_program("int f(void) { return 0; } int main() { return 0; }")
        assert program.functions[0].params == ()


class TestParserStatements:
    def test_deref_assign(self):
        stmt = first_stmt("int *p = NULL; *p = 1;", "")
        stmt2 = parse_main("int *p = NULL; *p = 1;").body[1]
        assert isinstance(stmt2, ast.Assign)
        assert isinstance(stmt2.target, ast.Unary) and stmt2.target.op == "*"

    def test_arrow_assign(self):
        prelude = "struct N { int v; };"
        stmt = parse_main("struct N *n = NULL; n->v = 3;", prelude).body[1]
        assert isinstance(stmt.target, ast.Member) and stmt.target.arrow

    def test_index_assign(self):
        stmt = parse_main("int a[2]; a[1] = 5;").body[1]
        assert isinstance(stmt.target, ast.Index)

    def test_increment(self):
        stmt = parse_main("int i = 0; i++;").body[1]
        assert stmt == ast.Assign(
            ast.Var("i"), ast.Binary("+", ast.Var("i"), ast.IntLit(1))
        )

    def test_for_loop(self):
        stmt = first_stmt("for (int i = 0; i < 3; i++) { }")
        assert isinstance(stmt, ast.ForStmt)
        assert isinstance(stmt.init, ast.Decl)

    def test_assume_assert(self):
        assert isinstance(first_stmt("assume(1 < 2);"), ast.AssumeStmt)
        assert isinstance(first_stmt("assert(1 < 2);"), ast.AssertStmt)


class TestParserExpressions:
    def test_char_literal_is_code(self):
        assert expr_of("'a'") == ast.CharLit("a")

    def test_string_literal(self):
        stmt = first_stmt('char *s = "hi";')
        assert stmt.init == ast.StrLit("hi")

    def test_null(self):
        assert expr_of("NULL") == ast.NullLit()

    def test_sizeof(self):
        assert expr_of("sizeof(int)") == ast.SizeofExpr(INT)
        assert expr_of("sizeof(struct Node)") == ast.SizeofExpr(StructType("Node"))

    def test_cast(self):
        e = expr_of("(int *) malloc(4)")
        assert isinstance(e, ast.Cast)
        assert e.type == PointerType(INT)

    def test_arrow_chain(self):
        e = expr_of("n->next->value")
        assert isinstance(e, ast.Member) and e.field == "value"
        assert isinstance(e.obj, ast.Member) and e.obj.field == "next"

    def test_address_of(self):
        e = expr_of("&v")
        assert e == ast.Unary("&", ast.Var("v"))

    def test_deref_in_expression(self):
        e = expr_of("*p + 1")
        assert isinstance(e, ast.Binary)
        assert isinstance(e.left, ast.Unary) and e.left.op == "*"

    def test_precedence(self):
        e = expr_of("a + b * c")
        assert e == ast.Binary(
            "+", ast.Var("a"), ast.Binary("*", ast.Var("b"), ast.Var("c"))
        )

    def test_logical(self):
        e = expr_of("a && b || !c")
        assert isinstance(e, ast.Binary) and e.op == "||"

    def test_symbolic_inputs(self):
        assert expr_of("symb_int()") == ast.SymbolicExpr("int")
        assert expr_of("symb_char()") == ast.SymbolicExpr("char")

    def test_no_floats(self):
        with pytest.raises(ParseError):
            parse_program("int main() { int x = 1.5; }")
