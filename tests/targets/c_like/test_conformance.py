"""MiniC compiler conformance (E5): compiled GIL vs reference interpreter."""

import pytest

from repro.engine.explorer import Explorer
from repro.gil.semantics import OutcomeKind
from repro.gil.values import values_equal
from repro.state.allocator import ConcreteAllocator, isym_name
from repro.state.concrete import ConcreteStateModel
from repro.targets.c_like import RUNTIME, MiniCLanguage
from repro.targets.c_like.interpreter import CInterpreter
from repro.targets.c_like.parser import parse_program

LANG = MiniCLanguage()
_KIND = {"normal": OutcomeKind.NORMAL, "error": OutcomeKind.ERROR}


def run_both(source: str, entry: str = "main", symb_values=()):
    program = parse_program(RUNTIME + source)
    ref = CInterpreter(symb_values=list(symb_values)).run(program, entry)

    prog = LANG.compile(source)
    allocator = ConcreteAllocator()
    if symb_values:
        from repro.gil.syntax import ISym

        sites = sorted(
            cmd.site
            for proc in prog.procs.values()
            for cmd in proc.body
            if isinstance(cmd, ISym)
        )
        script = {isym_name(s, 0): v for s, v in zip(sites, symb_values)}
        allocator = ConcreteAllocator(script=script)
    sm = ConcreteStateModel(LANG.concrete_memory(), allocator)
    gil_result = Explorer(prog, sm).run(entry)
    return ref, gil_result


def assert_agree(source: str, symb_values=()):
    ref, gil_result = run_both(source, symb_values=symb_values)
    if ref.kind == "vanish":
        assert gil_result.finals == []
        return
    out = gil_result.sole_outcome
    assert out.kind is _KIND[ref.kind], (ref, out)
    if ref.kind == "normal" and isinstance(ref.value, (int, float)):
        assert values_equal(out.value, ref.value), (ref.value, out.value)


CORPUS = {
    "arith": "int main() { return (2 + 3) * 4 - 20 / 4; }",
    "int_division_floors": "int main() { return 7 / 2 + 9 % 4; }",
    "struct_roundtrip": """
        struct Point { int x; int y; };
        int main() {
          struct Point *p = (struct Point *) malloc(sizeof(struct Point));
          p->x = 3;
          p->y = 4;
          int r = p->x * p->x + p->y * p->y;
          free(p);
          return r;
        }""",
    "struct_with_padding": """
        struct Mixed { char c; int n; char d; };
        int main() {
          struct Mixed *m = (struct Mixed *) malloc(sizeof(struct Mixed));
          m->c = 'a';
          m->n = 100;
          m->d = 'z';
          int r = m->n + m->c + m->d;
          free(m);
          return r;
        }""",
    "linked_structs": """
        struct Node { int value; struct Node *next; };
        int main() {
          struct Node *a = (struct Node *) malloc(sizeof(struct Node));
          struct Node *b = (struct Node *) malloc(sizeof(struct Node));
          a->value = 1; a->next = b;
          b->value = 2; b->next = NULL;
          int total = a->value + a->next->value;
          free(a); free(b);
          return total;
        }""",
    "stack_array": """
        int main() {
          int a[4];
          for (int i = 0; i < 4; i++) { a[i] = i * i; }
          return a[0] + a[1] + a[2] + a[3];
        }""",
    "pointer_arith": """
        int main() {
          int *a = (int *) malloc(3 * sizeof(int));
          *a = 1;
          *(a + 1) = 2;
          *(a + 2) = 3;
          int *p = a + 2;
          int r = *p + *(p - 1);
          free(a);
          return r;
        }""",
    "pointer_difference": """
        int main() {
          int *a = (int *) malloc(4 * sizeof(int));
          int *p = a + 3;
          int d = p - a;
          free(a);
          return d;
        }""",
    "address_of_local": """
        void set(int *out) { *out = 42; }
        int main() {
          int v = 0;
          set(&v);
          return v;
        }""",
    "calloc_zeroes": """
        int main() {
          int *a = (int *) calloc(4, sizeof(int));
          int total = a[0] + a[1] + a[2] + a[3];
          free(a);
          return total;
        }""",
    "memcpy_copies": """
        int main() {
          int *a = (int *) malloc(8);
          a[0] = 5; a[1] = 6;
          int *b = (int *) malloc(8);
          memcpy(b, a, 8);
          int r = b[0] + b[1];
          free(a); free(b);
          return r;
        }""",
    "memset_bytes": """
        int main() {
          char *s = (char *) malloc(4);
          memset(s, 7, 4);
          int r = s[0] + s[3];
          free(s);
          return r;
        }""",
    "strings": """
        int main() {
          char *s = "abc";
          return strlen(s) + s[0];
        }""",
    "strcmp_orders": """
        int main() {
          int a = strcmp("abc", "abd");
          int b = strcmp("b", "a");
          int c = strcmp("same", "same");
          return a * 100 + b * 10 + c;
        }""",
    "function_calls": """
        int square(int x) { return x * x; }
        int main() { return square(square(2)); }""",
    "recursion": """
        int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
        int main() { return fib(10); }""",
    "while_break_continue": """
        int main() {
          int total = 0;
          int i = 0;
          while (1) {
            i++;
            if (i == 3) { continue; }
            if (i > 6) { break; }
            total = total + i;
          }
          return total;
        }""",
    "comparisons_as_values": """
        int main() {
          int a = (1 < 2);
          int b = (2 < 1);
          return a * 10 + b;
        }""",
    "null_deref_errors": "int main() { int *p = NULL; return *p; }",
    "use_after_free_errors": """
        int main() {
          int *p = (int *) malloc(4);
          *p = 1;
          free(p);
          return *p;
        }""",
    "double_free_errors": """
        int main() {
          int *p = (int *) malloc(4);
          free(p);
          free(p);
          return 0;
        }""",
    "overflow_errors": """
        int main() {
          int *a = (int *) malloc(8);
          a[2] = 1;
          return 0;
        }""",
    "uninitialised_read_errors": """
        int main() {
          int *a = (int *) malloc(4);
          return a[0];
        }""",
    "ub_cross_block_relational_errors": """
        int main() {
          int *a = (int *) malloc(4);
          int *b = (int *) malloc(4);
          if (a < b) { return 1; }
          return 0;
        }""",
    "assert_failure": "int main() { assert(1 == 2); return 0; }",
    "same_block_relational_ok": """
        int main() {
          int *a = (int *) malloc(8);
          int *p = a + 1;
          int r = 0;
          if (a < p) { r = 1; }
          free(a);
          return r;
        }""",
    "pointer_equality_null": """
        int main() {
          int *p = NULL;
          int r = 0;
          if (p == NULL) { r = 1; }
          int *q = (int *) malloc(4);
          if (q != NULL) { r = r + 2; }
          free(q);
          return r;
        }""",
}


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_conformance(name):
    assert_agree(CORPUS[name])


class TestWithSymbolicInputs:
    def test_scripted_int(self):
        source = """
        int main() {
          int x = symb_int();
          if (x < 0) { return -x; }
          return x;
        }"""
        for value in (-5, 0, 9):
            assert_agree(source, symb_values=[value])

    def test_scripted_char_range(self):
        source = "int main() { int c = symb_char(); return c; }"
        assert_agree(source, symb_values=[65])
        assert_agree(source, symb_values=[300])  # out of char range: vanish
