"""Differential fuzzing of the MiniC compiler (E5, randomized).

Random MiniC ASTs over int arithmetic, heap cells, pointer arithmetic,
struct fields, frees (including faulting programs — double free,
use-after-free, overflow); the reference interpreter and concrete GIL
execution of the compiled program must agree on outcome kind and value.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.explorer import Explorer
from repro.gil.semantics import OutcomeKind
from repro.gil.values import values_equal
from repro.state.concrete import ConcreteStateModel
from repro.targets.c_like import MiniCLanguage, ast
from repro.targets.c_like.compiler import compile_program
from repro.targets.c_like.ctypes import INT, PointerType, StructType
from repro.targets.c_like.interpreter import CInterpreter

LANG = MiniCLanguage()

_NUM_VARS = ["a", "b"]

_num_exprs = st.one_of(
    st.integers(-4, 4).map(ast.IntLit),
    st.sampled_from([ast.Var(v) for v in _NUM_VARS]),
    st.tuples(
        st.sampled_from(["+", "-", "*"]),
        st.integers(-3, 3).map(ast.IntLit),
        st.sampled_from([ast.Var(v) for v in _NUM_VARS]),
    ).map(lambda t: ast.Binary(t[0], t[1], t[2])),
)

#: Indices are drawn slightly out of the 3-element buffer's range so the
#: corpus includes faulting programs (the interesting agreement cases).
_indices = st.integers(-1, 3).map(ast.IntLit)

_conditions = st.tuples(
    st.sampled_from(["==", "!=", "<", "<=", ">", ">="]),
    _num_exprs,
    _num_exprs,
).map(lambda t: ast.Binary(t[0], t[1], t[2]))


@st.composite
def _statements(draw, depth: int) -> ast.Statement:
    choices = ["assign", "store", "load", "field_set", "field_get", "maybe_free"]
    if depth > 0:
        choices += ["if", "while"]
    kind = draw(st.sampled_from(choices))
    if kind == "assign":
        return ast.Assign(ast.Var(draw(st.sampled_from(_NUM_VARS))), draw(_num_exprs))
    if kind == "store":
        return ast.Assign(
            ast.Index(ast.Var("buf"), draw(_indices)), draw(_num_exprs)
        )
    if kind == "load":
        return ast.Assign(
            ast.Var(draw(st.sampled_from(_NUM_VARS))),
            ast.Index(ast.Var("buf"), draw(_indices)),
        )
    if kind == "field_set":
        return ast.Assign(
            ast.Member(ast.Var("node"), draw(st.sampled_from(["v", "w"])), True),
            draw(_num_exprs),
        )
    if kind == "field_get":
        return ast.Assign(
            ast.Var(draw(st.sampled_from(_NUM_VARS))),
            ast.Member(ast.Var("node"), draw(st.sampled_from(["v", "w"])), True),
        )
    if kind == "maybe_free":
        # Freeing inside generated code can double-free — both sides must
        # agree on the error.
        return ast.ExprStmt(ast.CallExpr("free", (ast.Var("node"),)))
    if kind == "if":
        then_body = tuple(draw(_statements(depth - 1)) for _ in range(draw(st.integers(1, 2))))
        else_body = tuple(draw(_statements(depth - 1)) for _ in range(draw(st.integers(0, 1))))
        return ast.IfStmt(draw(_conditions), then_body, else_body)
    body = tuple(draw(_statements(depth - 1)) for _ in range(draw(st.integers(1, 2))))
    bound = draw(st.integers(1, 3))
    return ast.WhileStmt(
        ast.Binary("<", ast.Var("loop_i"), ast.IntLit(bound)),
        body
        + (
            ast.Assign(
                ast.Var("loop_i"), ast.Binary("+", ast.Var("loop_i"), ast.IntLit(1))
            ),
        ),
    )


@st.composite
def _programs(draw) -> ast.Program:
    struct = ast.StructDef("Node", (("v", INT), ("w", INT)))
    header = [
        ast.Decl(INT, "a", ast.IntLit(draw(st.integers(-3, 3)))),
        ast.Decl(INT, "b", ast.IntLit(draw(st.integers(-3, 3)))),
        ast.Decl(INT, "loop_i", ast.IntLit(0)),
        ast.Decl(
            PointerType(INT),
            "buf",
            ast.Cast(
                PointerType(INT),
                ast.CallExpr("calloc", (ast.IntLit(3), ast.SizeofExpr(INT))),
            ),
        ),
        ast.Decl(
            PointerType(StructType("Node")),
            "node",
            ast.Cast(
                PointerType(StructType("Node")),
                ast.CallExpr("calloc", (ast.IntLit(1), ast.SizeofExpr(StructType("Node")))),
            ),
        ),
    ]
    stmts: list = list(header)
    for _ in range(draw(st.integers(1, 4))):
        stmts.append(ast.Assign(ast.Var("loop_i"), ast.IntLit(0)))
        stmts.append(draw(_statements(2)))
    stmts.append(
        ast.ReturnStmt(ast.Binary("+", ast.Var("a"), ast.Var("b")))
    )
    func = ast.FuncDef(INT, "main", (), tuple(stmts))
    return ast.Program((struct,), (func,))


@given(program=_programs())
@settings(max_examples=200, deadline=None)
def test_interpreter_and_compiled_gil_agree(program):
    ref = CInterpreter().run(program, "main")
    prog = compile_program(program)
    sm = ConcreteStateModel(LANG.concrete_memory())
    result = Explorer(prog, sm).run("main")

    out = result.sole_outcome
    expected = OutcomeKind.NORMAL if ref.kind == "normal" else OutcomeKind.ERROR
    assert out.kind is expected, (ref, out)
    if ref.kind == "normal":
        assert values_equal(out.value, ref.value), (ref.value, out.value)
    else:
        ref_tag = ref.value[0] if isinstance(ref.value, tuple) else str(ref.value)
        out_tag = out.value[0] if isinstance(out.value, tuple) else str(out.value)
        if isinstance(ref_tag, str) and isinstance(out_tag, str):
            assert ref_tag.split(":")[0] == out_tag.split(":")[0], (
                ref.value,
                out.value,
            )
