"""Unit tests for the MiniRust owner-table × heap memory composition.

Each ownership discipline violation must surface as a *distinguishable*
memory fault: the owner table tags use-after-move, double mutable
borrows, moves or drops under live borrows, and use-after-free each
with their own error value, while the block side keeps reporting plain
spatial faults (buffer-overflow).  The compiler relies on these tags to
give MiniRust programs Rust-flavoured diagnostics.
"""

import pytest

from repro.gil.values import Symbol
from repro.logic.expr import Lit, lst
from repro.logic.pathcond import PathCondition
from repro.logic.solver import Solver
from repro.state.interface import MemErr, MemOk, SymMemErr
from repro.targets.rust_like.memory import (
    FRESH_OWNER_META,
    WORD_CHUNK,
    RustConcreteMemory,
    RustSymbolicMemory,
)

CONC = RustConcreteMemory()
SYM = RustSymbolicMemory()
B1 = Symbol("b1")


def fresh(size=2, init=(0, 0)):
    """An allocated, owned, initialised block; returns the memory."""
    mem = CONC.initial()
    (b,) = CONC.execute("alloc", mem, (B1, size))
    (b,) = CONC.execute("own_new", b.memory, (B1, FRESH_OWNER_META))
    mem = b.memory
    for i, value in enumerate(init):
        (b,) = CONC.execute("store", mem, (WORD_CHUNK, (B1, i), value))
        mem = b.memory
    return mem


def run(mem, action, args):
    (branch,) = CONC.execute(action, mem, args)
    return branch


class TestOwnershipFaults:
    def test_fresh_owner_checks_at_gen_zero(self):
        b = run(fresh(), "own_check", (B1, 0))
        assert isinstance(b, MemOk) and b.value is True

    def test_move_bumps_generation(self):
        b = run(fresh(), "own_move", (B1, 0))
        assert isinstance(b, MemOk) and b.value == 1
        stale = run(b.memory, "own_check", (B1, 0))
        assert isinstance(stale, MemErr)
        assert stale.value[0] == "use-after-move"
        live = run(b.memory, "own_check", (B1, 1))
        assert isinstance(live, MemOk)

    def test_double_mutable_borrow(self):
        b = run(fresh(), "borrow_mut", (B1, 0))
        again = run(b.memory, "borrow_mut", (B1, 0))
        assert isinstance(again, MemErr)
        assert again.value[0] == "already-mutably-borrowed"

    def test_mutable_borrow_under_shared(self):
        b = run(fresh(), "borrow", (B1, 0))
        exclusive = run(b.memory, "borrow_mut", (B1, 0))
        assert isinstance(exclusive, MemErr)
        assert exclusive.value[0] == "already-borrowed"

    def test_shared_borrows_stack(self):
        b = run(fresh(), "borrow", (B1, 0))
        b = run(b.memory, "borrow", (B1, 0))
        assert isinstance(b, MemOk)

    def test_move_while_borrowed(self):
        b = run(fresh(), "borrow", (B1, 0))
        moved = run(b.memory, "own_move", (B1, 0))
        assert isinstance(moved, MemErr)
        assert moved.value[0] == "move-while-borrowed"

    def test_drop_while_borrowed(self):
        b = run(fresh(), "borrow_mut", (B1, 0))
        dropped = run(b.memory, "drop_check", (B1, 0))
        assert isinstance(dropped, MemErr)
        assert dropped.value[0] == "drop-while-borrowed"

    def test_release_reenables_move(self):
        b = run(fresh(), "borrow", (B1, 0))
        b = run(b.memory, "release", (B1,))
        moved = run(b.memory, "own_move", (B1, 0))
        assert isinstance(moved, MemOk)

    def test_release_mut_reenables_borrow(self):
        b = run(fresh(), "borrow_mut", (B1, 0))
        b = run(b.memory, "release_mut", (B1,))
        assert isinstance(run(b.memory, "borrow", (B1, 0)), MemOk)

    def test_use_after_free(self):
        b = run(fresh(), "own_drop", (B1,))
        stale = run(b.memory, "own_check", (B1, 0))
        assert isinstance(stale, MemErr)
        assert stale.value[0] == "use-after-free"


class TestBlockSide:
    def test_store_load_roundtrip(self):
        mem = fresh(init=(7, 9))
        b = run(mem, "load", (WORD_CHUNK, (B1, 1)))
        assert isinstance(b, MemOk) and b.value == 9

    def test_buffer_overflow(self):
        b = run(fresh(size=2), "load", (WORD_CHUNK, (B1, 2)))
        assert isinstance(b, MemErr)
        assert b.value[0] == "buffer-overflow"

    def test_raw_byte_actions_sealed(self):
        # memcpy/memset require a permission the gate never grants.
        mem = fresh()
        b = run(mem, "memset", ((B1, 0), 2, 0))
        assert isinstance(b, MemErr)


class TestSymbolicFaultTags:
    def _sym_after(self, actions):
        pc, solver = PathCondition.true(), Solver()
        mem = SYM.initial()
        for action, args in actions:
            (branch,) = SYM.execute(action, mem, args, pc, solver)
            if isinstance(branch, SymMemErr):
                return branch
            mem = branch.memory
        return None

    def test_symbolic_use_after_move_tag(self):
        branch = self._sym_after(
            [
                ("alloc", lst(Lit(B1), 1)),
                ("own_new", lst(Lit(B1), Lit(FRESH_OWNER_META))),
                ("own_move", lst(Lit(B1), 0)),
                ("own_check", lst(Lit(B1), 0)),
            ]
        )
        assert branch is not None
        assert branch.expr.items[0] == Lit("use-after-move")

    def test_symbolic_drop_while_borrowed_tag(self):
        branch = self._sym_after(
            [
                ("alloc", lst(Lit(B1), 1)),
                ("own_new", lst(Lit(B1), Lit(FRESH_OWNER_META))),
                ("borrow", lst(Lit(B1), 0)),
                ("drop_check", lst(Lit(B1), 0)),
            ]
        )
        assert branch is not None
        assert branch.expr.items[0] == Lit("drop-while-borrowed")
