"""The MiniRust data-structure library suites (Table 3 substrate)."""

import pytest

from repro.targets.rust_like import MiniRustLanguage
from repro.targets.rust_like.collections import suites
from repro.targets.rust_like.collections.library import module_source
from repro.testing.harness import SymbolicTester

LANG = MiniRustLanguage()


def test_counts_match_table3():
    counts = suites.expected_test_counts()
    for name in suites.suite_names():
        source, tests = suites.suite(name)
        assert len(tests) == counts[name], name
        LANG.compile(source)
    assert sum(counts.values()) == 18


@pytest.mark.parametrize("name", suites.suite_names())
def test_modules_compile_alone(name):
    prog = LANG.compile(module_source(name))
    assert prog.procs


@pytest.mark.parametrize("name", suites.suite_names())
def test_suite_outcomes(name):
    source, tests = suites.suite(name)
    prog = LANG.compile(source)
    tester = SymbolicTester(LANG)
    for test in tests:
        result = tester.run_test(prog, test)
        if test in suites.KNOWN_BUG_TESTS:
            assert not result.passed, f"{test} should re-detect a finding"
            assert any(b.confirmed for b in result.bugs), test
        else:
            assert result.passed, (test, result.bugs)


def test_known_findings_planted():
    assert len(suites.KNOWN_BUG_TESTS) == 4
