"""Symbolic testing of MiniRust programs (the ownership behaviours)."""

from repro.targets.rust_like import MiniRustLanguage
from repro.testing.harness import SymbolicTester

LANG = MiniRustLanguage()


def run(source: str, entry: str = "main", **kw):
    return SymbolicTester(LANG, **kw).run_source(source, entry)


class TestMemorySafety:
    def test_symbolic_index_overflow_found(self):
        result = run(
            """
            fn main() -> i64 {
              let a = [10, 20, 30];
              let i = symb_int();
              assume(0 <= i && i <= 3);
              let v = a[i];
              drop(a);
              return v;
            }"""
        )
        assert result.verdict == "bug"
        bug = next(b for b in result.bugs if b.confirmed)
        assert list(bug.model.values()) == [3]

    def test_bounds_checked_read_verified(self):
        result = run(
            """
            fn main() -> i64 {
              let a = [10, 20, 30];
              let i = symb_int();
              assume(0 <= i && i < 3);
              let v = a[i];
              drop(a);
              assert!(10 <= v && v <= 30);
              return v;
            }"""
        )
        assert result.passed

    def test_conditional_drop_use_after_free(self):
        result = run(
            """
            fn main() -> i64 {
              let b = Box::new(1);
              let flag = symb_bool();
              if flag == 1 { drop(b); }
              let v = *b;
              return v;
            }"""
        )
        assert result.verdict == "bug"
        bug = next(b for b in result.bugs if b.confirmed)
        assert bug.concrete_value[0] == "use-after-free"

    def test_conditional_move_use_after_move(self):
        result = run(
            """
            fn take(b: Box) -> i64 {
              return b[0];
            }
            fn main() -> i64 {
              let b = Box::new(7);
              let flag = symb_bool();
              let mut r = 0;
              if flag == 1 { r = take(b); }
              let v = *b;
              return v + r;
            }"""
        )
        assert result.verdict == "bug"
        bug = next(b for b in result.bugs if b.confirmed)
        assert bug.concrete_value[0] == "use-after-move"

    def test_branch_scoped_borrow_verified(self):
        result = run(
            """
            fn main() -> i64 {
              let mut a = [0, 0];
              let flag = symb_bool();
              if flag == 1 {
                let m = &mut a;
                m[0] = 1;
                drop(m);
              }
              let v = a[0];
              drop(a);
              assert!(v == 0 || v == 1);
              return v;
            }"""
        )
        assert result.passed


class TestVerdictShape:
    def test_both_paths_explored(self):
        result = run(
            """
            fn main() -> i64 {
              let x = symb_int();
              if x < 0 { return 0 - x; }
              return x;
            }"""
        )
        assert result.passed
        assert result.paths >= 2
