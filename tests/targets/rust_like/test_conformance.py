"""MiniRust compiler conformance: compiled GIL vs reference interpreter.

Every program runs twice — once through ``RustInterpreter`` (a direct
tree-walker over the same memory model) and once compiled to GIL and
driven by the concrete ``Explorer`` — and the final outcome classes
must agree.  Error programs additionally pin the *fault tag* on both
sides, so the ownership diagnostics stay distinguishable end to end.
"""

import pytest

from repro.engine.explorer import Explorer
from repro.gil.semantics import OutcomeKind
from repro.gil.syntax import ISym
from repro.gil.values import values_equal
from repro.state.allocator import ConcreteAllocator, isym_name
from repro.state.concrete import ConcreteStateModel
from repro.targets.rust_like import MiniRustLanguage
from repro.targets.rust_like.interpreter import RustInterpreter
from repro.targets.rust_like.parser import parse_program

LANG = MiniRustLanguage()
_KIND = {"normal": OutcomeKind.NORMAL, "error": OutcomeKind.ERROR}


def run_both(source: str, entry: str = "main", symb_values=()):
    program = parse_program(source)
    ref = RustInterpreter(symb_values=list(symb_values)).run(program, entry)

    prog = LANG.compile(source)
    allocator = ConcreteAllocator()
    if symb_values:
        sites = sorted(
            cmd.site
            for proc in prog.procs.values()
            for cmd in proc.body
            if isinstance(cmd, ISym)
        )
        script = {isym_name(s, 0): v for s, v in zip(sites, symb_values)}
        allocator = ConcreteAllocator(script=script)
    sm = ConcreteStateModel(LANG.concrete_memory(), allocator)
    gil_result = Explorer(prog, sm).run(entry)
    return ref, gil_result


def assert_agree(source: str, symb_values=()):
    ref, gil_result = run_both(source, symb_values=symb_values)
    if ref.kind == "vanish":
        assert gil_result.finals == []
        return ref, None
    out = gil_result.sole_outcome
    assert out.kind is _KIND[ref.kind], (ref, out)
    if ref.kind == "normal" and isinstance(ref.value, (int, float)):
        assert values_equal(out.value, ref.value), (ref.value, out.value)
    return ref, out


def assert_fault(source: str, tag: str):
    """Both sides fail, and both report the same ownership fault tag."""
    ref, out = assert_agree(source)
    assert ref.kind == "error", ref
    assert ref.value[0] == tag, ref.value
    assert out.value[0] == tag, out.value


CORPUS = {
    "arith": "fn main() -> i64 { return (2 + 3) * 4 - 20 / 4; }",
    "box_roundtrip": """
        fn main() -> i64 {
          let b = Box::new(21);
          let v = *b * 2;
          drop(b);
          return v;
        }""",
    "array_sum": """
        fn main() -> i64 {
          let a = [1, 2, 3, 4];
          let mut i = 0;
          let mut total = 0;
          while i < len(a) { total = total + a[i]; i = i + 1; }
          drop(a);
          return total;
        }""",
    "shared_borrow_read": """
        fn main() -> i64 {
          let a = [5, 6];
          let r = &a;
          let v = r[0] + r[1];
          drop(r);
          drop(a);
          return v;
        }""",
    "mut_borrow_write": """
        fn main() -> i64 {
          let mut a = [0, 0];
          let m = &mut a;
          m[0] = 4;
          m[1] = 5;
          drop(m);
          let v = a[0] * 10 + a[1];
          drop(a);
          return v;
        }""",
    "move_transfers_ownership": """
        fn main() -> i64 {
          let b = Box::new(9);
          let c = b;
          let v = *c;
          drop(c);
          return v;
        }""",
    "call_by_reference": """
        fn sum(v: &[i64]) -> i64 {
          let mut i = 0;
          let mut total = 0;
          while i < len(v) { total = total + v[i]; i = i + 1; }
          return total;
        }
        fn main() -> i64 {
          let a = [2, 4, 8];
          let t = sum(&a);
          drop(a);
          return t;
        }""",
    "builder_idiom_returns_handle": """
        fn bump(b: Box, by: i64) -> Box {
          b[0] = b[0] + by;
          return b;
        }
        fn main() -> i64 {
          let mut b = Box::new(1);
          b = bump(b, 2);
          b = bump(b, 3);
          let v = *b;
          drop(b);
          return v;
        }""",
    "recursion": """
        fn fib(n: i64) -> i64 {
          if n < 2 { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        fn main() -> i64 { return fib(10); }""",
    "while_break_continue": """
        fn main() -> i64 {
          let mut total = 0;
          let mut i = 0;
          while true {
            i = i + 1;
            if i == 3 { continue; }
            if i > 6 { break; }
            total = total + i;
          }
          return total;
        }""",
    "booleans_as_values": """
        fn main() -> i64 {
          let mut r = 0;
          if 1 < 2 && !(2 < 1) { r = 1; }
          return r;
        }""",
    "assert_failure": "fn main() -> i64 { assert!(1 == 2); return 0; }",
}

FAULTS = {
    "use_after_move": (
        """
        fn main() -> i64 {
          let b = Box::new(1);
          let c = b;
          let v = *b;
          drop(c);
          return v;
        }""",
        "use-after-move",
    ),
    "double_mut_borrow": (
        """
        fn main() -> i64 {
          let mut a = [0];
          let m = &mut a;
          let n = &mut a;
          return 0;
        }""",
        "already-mutably-borrowed",
    ),
    "mut_borrow_under_shared": (
        """
        fn main() -> i64 {
          let mut a = [0];
          let r = &a;
          let m = &mut a;
          return 0;
        }""",
        "already-borrowed",
    ),
    "move_while_borrowed": (
        """
        fn main() -> i64 {
          let a = [1];
          let r = &a;
          let b = a;
          return 0;
        }""",
        "move-while-borrowed",
    ),
    "drop_while_borrowed": (
        """
        fn main() -> i64 {
          let a = [1];
          let r = &a;
          drop(a);
          return 0;
        }""",
        "drop-while-borrowed",
    ),
    "use_after_free": (
        """
        fn main() -> i64 {
          let b = Box::new(1);
          drop(b);
          let v = *b;
          return v;
        }""",
        "use-after-free",
    ),
    "buffer_overflow": (
        """
        fn main() -> i64 {
          let a = [1, 2];
          let v = a[2];
          drop(a);
          return v;
        }""",
        "buffer-overflow",
    ),
    "write_through_shared_ref": (
        """
        fn main() -> i64 {
          let mut a = [0];
          let r = &a;
          let m = &mut a;
          m[0] = 1;
          return 0;
        }""",
        "already-borrowed",
    ),
}


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_conformance(name):
    assert_agree(CORPUS[name])


@pytest.mark.parametrize("name", sorted(FAULTS))
def test_fault_tags_agree(name):
    source, tag = FAULTS[name]
    assert_fault(source, tag)


class TestWithSymbolicInputs:
    def test_scripted_int(self):
        source = """
        fn main() -> i64 {
          let x = symb_int();
          if x < 0 { return 0 - x; }
          return x;
        }"""
        for value in (-5, 0, 9):
            assert_agree(source, symb_values=[value])

    def test_scripted_bool_guards_drop(self):
        source = """
        fn main() -> i64 {
          let b = Box::new(3);
          let flag = symb_bool();
          if flag == 1 { drop(b); }
          let v = *b;
          return v;
        }"""
        ref, out = assert_agree(source, symb_values=[1])
        assert ref.kind == "error" and ref.value[0] == "use-after-free"
        assert_agree(source, symb_values=[0])
