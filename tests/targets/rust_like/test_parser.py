"""Tests for the MiniRust parser (surface syntax → AST)."""

import pytest

from repro.frontend.lexer import ParseError
from repro.targets.rust_like import ast
from repro.targets.rust_like.compiler import MUTREF, OWN, REF, VAL, kind_of_type
from repro.targets.rust_like.parser import parse_program


def parse_main(body: str) -> ast.FnDef:
    program = parse_program(f"fn main() -> i64 {{ {body} }}")
    return program.functions[-1]


def first_stmt(body: str) -> ast.Node:
    return parse_main(body).body[0]


def expr_of(text: str) -> ast.Node:
    stmt = first_stmt(f"let x = {text};")
    assert isinstance(stmt, ast.LetStmt)
    return stmt.value


class TestFunctions:
    def test_signature(self):
        program = parse_program(
            "fn add(a: i64, b: i64) -> i64 { return a + b; }"
        )
        (fn,) = program.functions
        assert fn.name == "add"
        assert [p.name for p in fn.params] == ["a", "b"]
        assert fn.ret_type.name == "i64"

    def test_param_kinds(self):
        program = parse_program(
            "fn f(v: Vec, r: &Vec, m: &mut Vec, n: i64) -> i64 { return n; }"
        )
        kinds = [kind_of_type(p.type) for p in program.functions[0].params]
        assert kinds == [OWN, REF, MUTREF, VAL]

    def test_multiple_functions(self):
        program = parse_program(
            "fn one() -> i64 { return 1; }\nfn main() -> i64 { return one(); }"
        )
        assert [f.name for f in program.functions] == ["one", "main"]


class TestExpressions:
    def test_precedence(self):
        e = expr_of("1 + 2 * 3")
        assert isinstance(e, ast.Binary) and e.op == "+"
        assert isinstance(e.right, ast.Binary) and e.right.op == "*"

    def test_comparison_binds_looser_than_arith(self):
        e = expr_of("1 + 2 < 4")
        assert isinstance(e, ast.Binary) and e.op == "<"

    def test_logical_ops(self):
        e = expr_of("true && false || true")
        assert isinstance(e, ast.Binary) and e.op == "||"
        assert isinstance(e.left, ast.Binary) and e.left.op == "&&"

    def test_borrows(self):
        stmts = parse_main("let a = [1]; let r = &a; let m = &mut a;").body
        assert stmts[1].value == ast.Unary("&", ast.Var("a"))
        assert stmts[2].value == ast.Unary("&mut", ast.Var("a"))

    def test_deref_and_index(self):
        assert expr_of("*r") == ast.Unary("*", ast.Var("r"))
        e = expr_of("a[i + 1]")
        assert isinstance(e, ast.Index) and e.base == ast.Var("a")

    def test_box_new(self):
        e = expr_of("Box::new(7)")
        assert isinstance(e, ast.BoxNew) and e.value == ast.IntLit(7)

    def test_array_literal(self):
        e = expr_of("[1, 2, 3]")
        assert isinstance(e, ast.ArrayLit) and len(e.items) == 3

    def test_symbolic_inputs(self):
        assert expr_of("symb_int()") == ast.SymbolicExpr("int")
        assert expr_of("symb_bool()") == ast.SymbolicExpr("bool")


class TestStatements:
    def test_let_mut(self):
        s = first_stmt("let mut x = 0;")
        assert isinstance(s, ast.LetStmt) and s.mutable

    def test_drop(self):
        s = first_stmt("let b = Box::new(1); drop(b);")
        assert isinstance(s, ast.LetStmt)
        assert parse_main("let b = Box::new(1); drop(b);").body[1] == ast.DropStmt("b")

    def test_assert_both_spellings(self):
        for text in ("assert(1 == 1);", "assert!(1 == 1);"):
            s = first_stmt(text)
            assert isinstance(s, ast.AssertStmt)

    def test_while_without_parens(self):
        s = first_stmt("while x < 3 { x = x + 1; }")
        assert isinstance(s, ast.WhileStmt)

    def test_if_else(self):
        s = first_stmt("if x < 0 { return 0; } else { return 1; }")
        assert isinstance(s, ast.IfStmt) and s.else_body


class TestErrors:
    @pytest.mark.parametrize(
        "source",
        [
            "fn main() -> i64 { let = 1; }",
            "fn main() -> i64 { if (x { return 1; } }",
            "fn main() { return 0; ",
            "fn main() -> i64 { x += 1; }",
        ],
    )
    def test_rejected(self, source):
        with pytest.raises(ParseError):
            parse_program(source)
