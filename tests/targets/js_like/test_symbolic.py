"""Symbolic testing of MiniJS programs (the Gillian-JS behaviours, §4.1)."""

import pytest

from repro.gil.values import Symbol
from repro.targets.js_like import MiniJSLanguage
from repro.testing.harness import SymbolicTester

LANG = MiniJSLanguage()


def run(source: str, entry: str = "main"):
    return SymbolicTester(LANG).run_source(source, entry)


class TestDynamicProperties:
    def test_symbolic_key_branches_over_matches(self):
        # [SGetProp - Branch]: a symbolic key matches each existing
        # property or none.
        result = run(
            """
            function main() {
              var o = { a: 1, b: 2 };
              var k = symb_string();
              var v = o[k];
              assert(v === 1 || v === 2 || v === undefined);
            }"""
        )
        assert result.passed
        assert result.paths == 3  # k = "a", k = "b", k fresh

    def test_symbolic_key_write_then_read(self):
        result = run(
            """
            function main() {
              var o = {};
              var k = symb_string();
              o[k] = 42;
              assert(o[k] === 42);
            }"""
        )
        assert result.passed

    def test_collision_found(self):
        result = run(
            """
            function main() {
              var k = symb_string();
              var o = { secret: 1 };
              o[k] = 2;
              assert(o.secret === 1);
            }"""
        )
        assert result.verdict == "bug"
        bug = next(b for b in result.bugs if b.confirmed)
        assert "secret" in bug.model.values()

    def test_two_symbolic_keys_aliasing(self):
        result = run(
            """
            function main() {
              var o = {};
              var k1 = symb_string();
              var k2 = symb_string();
              o[k1] = 1;
              o[k2] = 2;
              if (k1 === k2) { assert(o[k1] === 2); }
              else { assert(o[k1] === 1 && o[k2] === 2); }
            }"""
        )
        assert result.passed

    def test_delete_with_symbolic_key(self):
        result = run(
            """
            function main() {
              var o = { a: 1, b: 2 };
              var k = symb_string();
              delete o[k];
              assert(o.a === 1 || k === "a");
              assert(o.b === 2 || k === "b");
            }"""
        )
        assert result.passed

    def test_has_prop_branches(self):
        result = run(
            """
            function main() {
              var o = { a: 1 };
              var k = symb_string();
              var h = has_prop(o, k);
              if (h) { assert(k === "a"); }
              else { assert(k !== "a"); }
            }"""
        )
        assert result.passed


class TestJSSemantics:
    def test_plus_dispatch_symbolic_number(self):
        result = run(
            """
            function main() {
              var n = symb_number();
              var m = n + 1;
              assert(m === n + 1);
            }"""
        )
        assert result.passed
        assert result.paths == 1  # string branch pruned by typing

    def test_plus_dispatch_symbolic_string(self):
        result = run(
            """
            function main() {
              var s = symb_string();
              var t = s + "!";
              assert(strlen(t) === strlen(s) + 1);
            }"""
        )
        assert result.passed

    def test_undefined_vs_null(self):
        result = run(
            """
            function main() {
              var o = { a: null };
              assert(o.a !== undefined);
              assert(o.b === undefined);
              assert(o.a === null);
            }"""
        )
        assert result.passed

    def test_type_error_on_null_access_found(self):
        result = run(
            """
            function find(o, k) { return o[k]; }
            function main() {
              var flag = symb_bool();
              var o = flag ? { v: 1 } : null;
              return find(o, "v");
            }"""
        )
        assert result.verdict == "bug"
        assert len(result.bugs) == 1  # only the null path errors
        assert result.bugs[0].confirmed

    def test_dispose_use_after_free(self):
        result = run(
            """
            function main() {
              var o = { v: 1 };
              dispose(o);
              return o.v;
            }"""
        )
        assert result.verdict == "bug"

    def test_metadata_arrays_vs_objects(self):
        result = run(
            """
            function main() {
              var a = [1];
              var o = {};
              assert(a.length === 1);
              assert(o.length === undefined);
            }"""
        )
        assert result.passed


class TestComparatorCallbacks:
    def test_dynamic_comparator_dispatch(self):
        result = run(
            """
            function asc(a, b) { return a < b ? -1 : (b < a ? 1 : 0); }
            function desc(a, b) { return asc(b, a); }
            function pick_smaller(cmp, x, y) {
              var c = cmp(x, y);
              if (c <= 0) { return x; }
              return y;
            }
            function main() {
              var x = symb_int();
              var y = symb_int();
              assume(-3 <= x && x <= 3 && -3 <= y && y <= 3);
              var lo = pick_smaller(asc, x, y);
              var hi = pick_smaller(desc, x, y);
              assert(lo <= hi);
            }"""
        )
        assert result.passed


class TestCalleeErrors:
    def test_calling_a_number_is_a_type_error(self):
        result = run(
            """
            function main() {
              var f = 5;
              return f();
            }"""
        )
        assert result.verdict in ("bug", "potential-bug")

    def test_calling_undefined_property_is_a_type_error(self):
        result = run(
            """
            function main() {
              var o = {};
              var f = o.missing;
              return f();
            }"""
        )
        assert not result.passed
