"""Tests for the MiniJS parser."""

import pytest

from repro.frontend.lexer import ParseError
from repro.targets.js_like import ast
from repro.targets.js_like.parser import parse_program


def parse_main(body: str) -> ast.FunctionDef:
    program = parse_program(f"function main() {{ {body} }}")
    return program.functions[0]


def first_stmt(body: str) -> ast.Statement:
    return parse_main(body).body[0]


def expr_of(text: str) -> ast.Expression:
    stmt = first_stmt(f"var x = {text};")
    assert isinstance(stmt, ast.VarDecl)
    return stmt.init


class TestFunctions:
    def test_empty(self):
        func = parse_main("")
        assert func.name == "main" and func.body == ()

    def test_params(self):
        program = parse_program("function f(a, b) { return a; }")
        assert program.functions[0].params == ("a", "b")

    def test_multiple_functions(self):
        program = parse_program("function f() {} function g() {}")
        assert [f.name for f in program.functions] == ["f", "g"]


class TestStatements:
    def test_var_decl(self):
        assert first_stmt("var x = 1;") == ast.VarDecl("x", ast.Literal(1))

    def test_var_decl_no_init(self):
        assert first_stmt("var x;") == ast.VarDecl("x", None)

    def test_assignment(self):
        stmt = first_stmt("var x = 0; x = 2;")
        assert parse_main("var x = 0; x = 2;").body[1] == ast.AssignVar(
            "x", ast.Literal(2)
        )

    def test_member_assignment(self):
        stmt = parse_main("var o = {}; o.p = 1;").body[1]
        assert stmt == ast.AssignMember(ast.Var("o"), ast.Literal("p"), ast.Literal(1))

    def test_computed_member_assignment(self):
        stmt = parse_main("var o = {}; o[1 + 1] = 2;").body[1]
        assert isinstance(stmt, ast.AssignMember)
        assert isinstance(stmt.prop, ast.Binary)

    def test_increment_statement(self):
        stmt = parse_main("var i = 0; i++;").body[1]
        assert stmt == ast.AssignVar("i", ast.Binary("+", ast.Var("i"), ast.Literal(1)))

    def test_compound_assignment(self):
        stmt = parse_main("var i = 0; i += 3;").body[1]
        assert stmt == ast.AssignVar("i", ast.Binary("+", ast.Var("i"), ast.Literal(3)))

    def test_member_increment(self):
        stmt = parse_main("var o = {}; o.n++;").body[1]
        assert isinstance(stmt, ast.AssignMember)

    def test_delete(self):
        stmt = parse_main("var o = {}; delete o.p;").body[1]
        assert stmt == ast.DeleteStmt(ast.Var("o"), ast.Literal("p"))

    def test_delete_computed(self):
        stmt = parse_main("var o = {}; delete o[1];").body[1]
        assert stmt == ast.DeleteStmt(ast.Var("o"), ast.Literal(1))

    def test_if_else_braceless(self):
        stmt = first_stmt("if (true) return 1; else return 2;")
        assert isinstance(stmt, ast.IfStmt)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_while(self):
        assert isinstance(first_stmt("while (true) {}"), ast.WhileStmt)

    def test_for_full(self):
        stmt = first_stmt("for (var i = 0; i < 3; i++) {}")
        assert isinstance(stmt, ast.ForStmt)
        assert stmt.init is not None and stmt.cond is not None and stmt.step is not None

    def test_for_empty_sections(self):
        stmt = first_stmt("for (;;) { break; }")
        assert stmt.init is None and stmt.cond is None and stmt.step is None

    def test_break_continue(self):
        stmt = first_stmt("while (true) { break; }")
        assert isinstance(stmt.body[0], ast.BreakStmt)
        stmt = first_stmt("while (true) { continue; }")
        assert isinstance(stmt.body[0], ast.ContinueStmt)

    def test_return_bare(self):
        assert first_stmt("return;") == ast.ReturnStmt(None)

    def test_assume_assert(self):
        assert isinstance(first_stmt("assume(true);"), ast.AssumeStmt)
        assert isinstance(first_stmt("assert(true);"), ast.AssertStmt)

    def test_expression_statement(self):
        stmt = parse_program(
            "function f() {} function main() { f(); }"
        ).functions[1].body[0]
        assert isinstance(stmt, ast.ExprStmt)


class TestExpressions:
    def test_literals(self):
        assert expr_of("42") == ast.Literal(42)
        assert expr_of('"s"') == ast.Literal("s")
        assert expr_of("true") == ast.Literal(True)
        assert expr_of("null") == ast.NullLit()
        assert expr_of("undefined") == ast.Undefined()

    def test_object_literal(self):
        e = expr_of("{ a: 1, b: 2 }")
        assert e == ast.ObjectLit((("a", ast.Literal(1)), ("b", ast.Literal(2))))

    def test_array_literal(self):
        e = expr_of("[1, 2]")
        assert e == ast.ArrayLit((ast.Literal(1), ast.Literal(2)))

    def test_member_dot_and_bracket(self):
        assert expr_of("o.p") == ast.Member(ast.Var("o"), ast.Literal("p"))
        assert expr_of("o[k]") == ast.Member(ast.Var("o"), ast.Var("k"))

    def test_chained_members(self):
        e = expr_of("o.a.b")
        assert e == ast.Member(
            ast.Member(ast.Var("o"), ast.Literal("a")), ast.Literal("b")
        )

    def test_call(self):
        e = expr_of("f(1, x)")
        assert e == ast.CallExpr(ast.Var("f"), (ast.Literal(1), ast.Var("x")))

    def test_call_through_member(self):
        e = expr_of("o.f(1)")
        assert isinstance(e, ast.CallExpr)
        assert isinstance(e.callee, ast.Member)

    def test_strict_equality(self):
        assert expr_of("a === b") == ast.Binary("===", ast.Var("a"), ast.Var("b"))
        assert expr_of("a !== b") == ast.Binary("!==", ast.Var("a"), ast.Var("b"))

    def test_precedence(self):
        e = expr_of("1 + 2 * 3")
        assert e == ast.Binary(
            "+", ast.Literal(1), ast.Binary("*", ast.Literal(2), ast.Literal(3))
        )

    def test_logical_precedence(self):
        e = expr_of("a && b || c")
        assert e == ast.Binary("||", ast.Binary("&&", ast.Var("a"), ast.Var("b")), ast.Var("c"))

    def test_conditional(self):
        e = expr_of("c ? 1 : 2")
        assert e == ast.Conditional(ast.Var("c"), ast.Literal(1), ast.Literal(2))

    def test_unary(self):
        assert expr_of("!b") == ast.Unary("!", ast.Var("b"))
        assert expr_of("-x") == ast.Unary("-", ast.Var("x"))
        assert expr_of("typeof x") == ast.Unary("typeof", ast.Var("x"))

    def test_symbolic_inputs(self):
        assert expr_of("symb_number()") == ast.SymbolicExpr("number")
        assert expr_of("symb_int()") == ast.SymbolicExpr("int")
        assert expr_of("symb_string()") == ast.SymbolicExpr("string")
        assert expr_of("symb_bool()") == ast.SymbolicExpr("bool")
        assert expr_of("symb()") == ast.SymbolicExpr(None)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("function main() { var x = 1 }")

    def test_bad_assignment_target(self):
        with pytest.raises(ParseError):
            parse_program("function main() { 1 = 2; }")

    def test_delete_non_member(self):
        with pytest.raises(ParseError):
            parse_program("function main() { var x = 0; delete x; }")
