"""Differential fuzzing of the MiniJS compiler (E5, randomized).

Random MiniJS ASTs over numbers, strings, objects with static *and*
computed keys, deletes, and bounded loops; reference interpreter vs
compiled-GIL concrete execution must agree.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.explorer import Explorer
from repro.gil.semantics import OutcomeKind
from repro.gil.values import Symbol, values_equal
from repro.state.concrete import ConcreteStateModel
from repro.targets.js_like import MiniJSLanguage, ast
from repro.targets.js_like.compiler import compile_program
from repro.targets.js_like.interpreter import JSInterpreter

LANG = MiniJSLanguage()

_NUM_VARS = ["a", "b"]
_OBJ_VARS = ["o", "p"]
_KEYS = ["x", "y"]

_num_exprs = st.one_of(
    st.integers(-4, 4).map(ast.Literal),
    st.sampled_from([ast.Var(v) for v in _NUM_VARS]),
    st.tuples(
        st.sampled_from(["+", "-", "*"]),
        st.integers(-3, 3).map(ast.Literal),
        st.sampled_from([ast.Var(v) for v in _NUM_VARS]),
    ).map(lambda t: ast.Binary(t[0], t[1], t[2])),
)

_key_exprs = st.one_of(
    st.sampled_from([ast.Literal(k) for k in _KEYS]),
    st.sampled_from([ast.Literal(0), ast.Literal(1)]),
)

_conditions = st.tuples(
    st.sampled_from(["===", "!==", "<", "<=", ">", ">="]),
    _num_exprs,
    _num_exprs,
).map(lambda t: ast.Binary(t[0], t[1], t[2]))


@st.composite
def _statements(draw, depth: int) -> ast.Statement:
    choices = ["assign", "member_set", "member_get", "delete"]
    if depth > 0:
        choices += ["if", "while"]
    kind = draw(st.sampled_from(choices))
    if kind == "assign":
        return ast.AssignVar(draw(st.sampled_from(_NUM_VARS)), draw(_num_exprs))
    if kind == "member_set":
        return ast.AssignMember(
            ast.Var(draw(st.sampled_from(_OBJ_VARS))),
            draw(_key_exprs),
            draw(_num_exprs),
        )
    if kind == "member_get":
        # Reads may hit absent properties (undefined) — assign into a
        # scratch variable that no arithmetic consumes.
        return ast.AssignVar(
            "scratch",
            ast.Member(ast.Var(draw(st.sampled_from(_OBJ_VARS))), draw(_key_exprs)),
        )
    if kind == "delete":
        return ast.DeleteStmt(
            ast.Var(draw(st.sampled_from(_OBJ_VARS))), draw(_key_exprs)
        )
    if kind == "if":
        then_body = tuple(draw(_statements(depth - 1)) for _ in range(draw(st.integers(1, 2))))
        else_body = tuple(draw(_statements(depth - 1)) for _ in range(draw(st.integers(0, 1))))
        return ast.IfStmt(draw(_conditions), then_body, else_body)
    body = tuple(draw(_statements(depth - 1)) for _ in range(draw(st.integers(1, 2))))
    bound = draw(st.integers(1, 3))
    return ast.WhileStmt(
        ast.Binary("<", ast.Var("loop_i"), ast.Literal(bound)),
        body
        + (ast.AssignVar("loop_i", ast.Binary("+", ast.Var("loop_i"), ast.Literal(1))),),
    )


@st.composite
def _programs(draw) -> ast.Program:
    header = [
        ast.VarDecl("a", ast.Literal(draw(st.integers(-3, 3)))),
        ast.VarDecl("b", ast.Literal(draw(st.integers(-3, 3)))),
        ast.VarDecl("scratch", None),
        ast.VarDecl("loop_i", ast.Literal(0)),
        ast.VarDecl("o", ast.ObjectLit((("x", ast.Literal(1)),))),
        ast.VarDecl("p", ast.ObjectLit(())),
    ]
    stmts: list = list(header)
    for _ in range(draw(st.integers(1, 5))):
        stmts.append(ast.AssignVar("loop_i", ast.Literal(0)))
        stmts.append(draw(_statements(2)))
    stmts.append(
        ast.ReturnStmt(ast.Binary("+", ast.Var("a"), ast.Var("b")))
    )
    return ast.Program((ast.FunctionDef("main", (), tuple(stmts)),))


@given(program=_programs())
@settings(max_examples=200, deadline=None)
def test_interpreter_and_compiled_gil_agree(program):
    ref = JSInterpreter().run(program, "main")
    prog = compile_program(program)
    sm = ConcreteStateModel(LANG.concrete_memory())
    result = Explorer(prog, sm).run("main")

    if ref.kind == "vanish":
        assert result.finals == []
        return
    out = result.sole_outcome
    expected = OutcomeKind.NORMAL if ref.kind == "normal" else OutcomeKind.ERROR
    assert out.kind is expected, (ref, out)
    if ref.kind == "normal" and not isinstance(ref.value, Symbol):
        assert values_equal(out.value, ref.value), (ref.value, out.value)
