"""The Buckets-style library suites (Table 1 substrate) behave as §4.1 reports."""

import pytest

from repro.targets.js_like import MiniJSLanguage
from repro.targets.js_like.buckets import suites
from repro.targets.js_like.buckets.library import full_library
from repro.testing.harness import SymbolicTester

LANG = MiniJSLanguage()


def test_counts_match_table1():
    counts = suites.expected_test_counts()
    for name in suites.suite_names():
        _, tests = suites.suite(name)
        assert len(tests) == counts[name], name
    assert sum(counts.values()) == 74


def test_full_library_compiles():
    prog = LANG.compile(full_library())
    # All Table 1 structures contribute procedures.
    for fn in ("arr_push", "llist_add", "stack_push", "queue_enqueue",
               "dict_set", "mdict_set", "bag_add", "set_add", "bst_insert",
               "heap_add", "pqueue_enqueue"):
        assert prog.get(fn) is not None


@pytest.mark.parametrize("name", suites.suite_names())
def test_suite_outcomes(name):
    source, tests = suites.suite(name)
    prog = LANG.compile(source)
    tester = SymbolicTester(LANG)
    for test in tests:
        result = tester.run_test(prog, test)
        if test in suites.KNOWN_BUG_TESTS:
            assert not result.passed, f"{test} should re-detect a known bug"
            assert any(b.confirmed for b in result.bugs), test
        else:
            assert result.passed, (test, result.bugs)


def test_exactly_two_known_bugs():
    assert len(suites.KNOWN_BUG_TESTS) == 2  # "the two bugs found in our previous work"
