"""Unit and MA-RS/MA-RC tests for the MiniJS memory models (§4.1)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gil.values import Symbol
from repro.logic.expr import Lit, LVar, lst
from repro.logic.pathcond import PathCondition
from repro.logic.solver import Solver
from repro.soundness.interpretation import check_action
from repro.state.interface import MemErr, MemOk, SymMemErr, SymMemOk
from repro.targets.js_like.memory import (
    UNDEFINED,
    JSConcreteMemory,
    JSMemory,
    JSObjectC,
    JSObjectS,
    JSSymbolicMemory,
    SymJSMemory,
    interpret_memory,
)

CONC = JSConcreteMemory()
SYM = JSSymbolicMemory()
L1, L2 = Symbol("o1"), Symbol("o2")


def make_concrete(*objs):
    mem = CONC.initial()
    for loc, metadata in objs:
        (branch,) = CONC.execute("initObj", mem, (loc, metadata))
        mem = branch.memory
    return mem


class TestConcreteActions:
    def test_init_and_get_absent(self):
        mem = make_concrete((L1, "Object"))
        (branch,) = CONC.execute("getProp", mem, (L1, "missing"))
        assert isinstance(branch, MemOk) and branch.value == UNDEFINED

    def test_set_get_roundtrip(self):
        mem = make_concrete((L1, "Object"))
        (b1,) = CONC.execute("setProp", mem, (L1, "p", 42))
        (b2,) = CONC.execute("getProp", b1.memory, (L1, "p"))
        assert b2.value == 42

    def test_numeric_and_string_keys_distinct(self):
        mem = make_concrete((L1, "Array"))
        (b1,) = CONC.execute("setProp", mem, (L1, 1, "num"))
        (b2,) = CONC.execute("getProp", b1.memory, (L1, "1"))
        assert b2.value == UNDEFINED

    def test_del_prop(self):
        mem = make_concrete((L1, "Object"))
        (b1,) = CONC.execute("setProp", mem, (L1, "p", 1))
        (b2,) = CONC.execute("delProp", b1.memory, (L1, "p"))
        (b3,) = CONC.execute("getProp", b2.memory, (L1, "p"))
        assert b3.value == UNDEFINED

    def test_has_prop(self):
        mem = make_concrete((L1, "Object"))
        (b1,) = CONC.execute("setProp", mem, (L1, "p", 1))
        (b2,) = CONC.execute("hasProp", b1.memory, (L1, "p"))
        assert b2.value is True
        (b3,) = CONC.execute("hasProp", b1.memory, (L1, "q"))
        assert b3.value is False

    def test_metadata(self):
        mem = make_concrete((L1, "Array"))
        (b1,) = CONC.execute("getMetadata", mem, (L1,))
        assert b1.value == "Array"
        (b2,) = CONC.execute("setMetadata", mem, (L1, "Custom"))
        (b3,) = CONC.execute("getMetadata", b2.memory, (L1,))
        assert b3.value == "Custom"

    def test_access_to_non_object_errors(self):
        mem = CONC.initial()
        (branch,) = CONC.execute("getProp", mem, (UNDEFINED, "p"))
        assert isinstance(branch, MemErr)

    def test_use_after_dispose_errors(self):
        mem = make_concrete((L1, "Object"))
        (b1,) = CONC.execute("dispose", mem, (L1,))
        (b2,) = CONC.execute("getProp", b1.memory, (L1, "p"))
        assert isinstance(b2, MemErr)
        assert b2.value[0] == "use-after-dispose"


class TestSymbolicBranching:
    def _mem(self, props):
        obj = JSObjectS(Lit("Object"), tuple(props))
        return SymJSMemory(((Lit(L1), obj),))

    def test_concrete_key_no_branching(self):
        mem = self._mem([(Lit("a"), Lit(1))])
        branches = SYM.execute(
            "getProp", mem, lst(L1, "a"), PathCondition.true(), Solver()
        )
        assert len(branches) == 1
        assert branches[0].expr == Lit(1)

    def test_symbolic_key_branches(self):
        mem = self._mem([(Lit("a"), Lit(1)), (Lit("b"), Lit(2))])
        k = LVar("k")
        branches = SYM.execute(
            "getProp", mem, lst(L1, k), PathCondition.true(), Solver()
        )
        # match a, match b, absent (undefined)
        assert len(branches) == 3
        values = {b.expr for b in branches if isinstance(b, SymMemOk)}
        assert Lit(UNDEFINED) in values

    def test_branch_conditions_are_learned(self):
        mem = self._mem([(Lit("a"), Lit(1))])
        k = LVar("k")
        branches = SYM.execute(
            "getProp", mem, lst(L1, k), PathCondition.true(), Solver()
        )
        learned = [b.learned for b in branches]
        assert any(l == (k.eq(Lit("a")),) for l in learned)

    def test_path_condition_prunes_branches(self):
        mem = self._mem([(Lit("a"), Lit(1)), (Lit("b"), Lit(2))])
        k = LVar("k")
        pc = PathCondition.of(k.eq(Lit("a")))
        branches = SYM.execute("getProp", mem, lst(L1, k), pc, Solver())
        assert len(branches) == 1
        assert branches[0].expr == Lit(1)

    def test_set_symbolic_key_absent_branch_adds(self):
        mem = self._mem([(Lit("a"), Lit(1))])
        k = LVar("k")
        branches = SYM.execute(
            "setProp", mem, lst(L1, k, Lit(9)), PathCondition.true(), Solver()
        )
        assert len(branches) == 2
        sizes = sorted(
            len(b.memory.objects[0][1].props) for b in branches
        )
        assert sizes == [1, 2]  # overwrite vs extend

    def test_dispose_then_access_errors(self):
        mem = self._mem([])
        (b1,) = SYM.execute("dispose", mem, lst(L1), PathCondition.true(), Solver())
        branches = SYM.execute(
            "getProp", b1.memory, lst(L1, "p"), PathCondition.true(), Solver()
        )
        assert len(branches) == 1 and isinstance(branches[0], SymMemErr)


class TestInterpretation:
    def test_roundtrip(self):
        obj = JSObjectS(Lit("Object"), ((Lit("a"), LVar("v")),))
        mem = SymJSMemory(((Lit(L1), obj),))
        conc = interpret_memory({"v": 3}, mem)
        assert conc.as_dict()[L1].get("a") == 3


# -- property-based MA-RS / MA-RC (Def. 3.7) for the JS actions ---------------

_keys = st.one_of(
    st.sampled_from([Lit("a"), Lit("b"), Lit(0)]),
    st.sampled_from([LVar("k1"), LVar("k2")]),
)
_vals = st.one_of(st.integers(-3, 3).map(Lit), st.sampled_from([LVar("v")]))


@st.composite
def _memories(draw):
    objs = {}
    for loc in (L1, L2):
        if draw(st.booleans()):
            n = draw(st.integers(0, 3))
            props = []
            used = []
            for _ in range(n):
                key = draw(_keys)
                props.append((key, draw(_vals)))
            objs[Lit(loc)] = JSObjectS(Lit("Object"), tuple(props))
    return SymJSMemory(tuple(objs.items()))


@st.composite
def _envs(draw):
    return {
        "k1": draw(st.sampled_from(["a", "b", "c"])),
        "k2": draw(st.sampled_from(["a", "b", "c"])),
        "v": draw(st.integers(-3, 3)),
    }


_locs = st.sampled_from([Lit(L1), Lit(L2)])


@given(memory=_memories(), env=_envs(), loc=_locs, key=_keys)
@settings(max_examples=120, deadline=None)
def test_getprop_ma_rs_rc(memory, env, loc, key):
    report = check_action(
        CONC, SYM, interpret_memory, env, memory, "getProp", lst(loc, key)
    )
    assert report.ok, report.detail


@given(memory=_memories(), env=_envs(), loc=_locs, key=_keys, value=_vals)
@settings(max_examples=120, deadline=None)
def test_setprop_ma_rs_rc(memory, env, loc, key, value):
    report = check_action(
        CONC, SYM, interpret_memory, env, memory, "setProp", lst(loc, key, value)
    )
    assert report.ok, report.detail


@given(memory=_memories(), env=_envs(), loc=_locs, key=_keys)
@settings(max_examples=120, deadline=None)
def test_delprop_ma_rs_rc(memory, env, loc, key):
    report = check_action(
        CONC, SYM, interpret_memory, env, memory, "delProp", lst(loc, key)
    )
    assert report.ok, report.detail


@given(memory=_memories(), env=_envs(), loc=_locs)
@settings(max_examples=80, deadline=None)
def test_dispose_ma_rs_rc(memory, env, loc):
    report = check_action(
        CONC, SYM, interpret_memory, env, memory, "dispose", lst(loc)
    )
    assert report.ok, report.detail
