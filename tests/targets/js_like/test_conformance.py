"""MiniJS compiler conformance (E5): compiled GIL vs reference interpreter."""

import pytest

from repro.engine.explorer import Explorer
from repro.gil.semantics import OutcomeKind
from repro.gil.values import Symbol, values_equal
from repro.state.allocator import ConcreteAllocator, isym_name
from repro.state.concrete import ConcreteStateModel
from repro.targets.js_like import MiniJSLanguage
from repro.targets.js_like.interpreter import JSInterpreter
from repro.targets.js_like.parser import parse_program

LANG = MiniJSLanguage()

_KIND = {"normal": OutcomeKind.NORMAL, "error": OutcomeKind.ERROR}


def run_both(source: str, entry: str = "main", symb_values=()):
    program = parse_program(source)
    ref = JSInterpreter(symb_values=list(symb_values)).run(program, entry)

    prog = LANG.compile(source)
    allocator = ConcreteAllocator()
    if symb_values:
        from repro.gil.syntax import ISym

        sites = sorted(
            cmd.site
            for proc in prog.procs.values()
            for cmd in proc.body
            if isinstance(cmd, ISym)
        )
        script = {isym_name(s, 0): v for s, v in zip(sites, symb_values)}
        allocator = ConcreteAllocator(script=script)
    sm = ConcreteStateModel(LANG.concrete_memory(), allocator)
    gil_result = Explorer(prog, sm).run(entry)
    return ref, gil_result


def assert_agree(source: str, symb_values=()):
    ref, gil_result = run_both(source, symb_values=symb_values)
    if ref.kind == "vanish":
        assert gil_result.finals == []
        return
    out = gil_result.sole_outcome
    assert out.kind is _KIND[ref.kind], (ref, out)
    if ref.kind == "normal":
        if isinstance(ref.value, Symbol) and ref.value.name.startswith("jsobj"):
            assert isinstance(out.value, Symbol)
        else:
            assert values_equal(out.value, ref.value), (ref.value, out.value)


CORPUS = {
    "arith": "function main() { return 2 + 3 * 4; }",
    "string_plus": 'function main() { return "a" + "b" + "c"; }',
    "mixed_plus_dispatch": 'function main() { var n = 1 + 2; var s = "n=" + "3"; return s; }',
    "strict_equality": "function main() { return 1 === 1; }",
    "undefined_null_distinct": "function main() { return undefined === null; }",
    "object_props": """
        function main() {
          var o = { a: 1, b: 2 };
          o.c = o.a + o.b;
          return o.c;
        }""",
    "dynamic_props": """
        function main() {
          var o = {};
          var k = "key";
          o[k] = 10;
          return o["k" + "ey"];
        }""",
    "absent_prop_undefined": """
        function main() { var o = {}; return o.missing === undefined; }""",
    "delete_prop": """
        function main() {
          var o = { a: 1 };
          delete o.a;
          return o.a === undefined;
        }""",
    "arrays": """
        function main() {
          var a = [10, 20, 30];
          a[3] = 40;
          a.length = 4;
          var total = 0;
          for (var i = 0; i < a.length; i++) { total = total + a[i]; }
          return total;
        }""",
    "while_loop": """
        function main() {
          var i = 0; var total = 0;
          while (i < 5) { total = total + i; i = i + 1; }
          return total;
        }""",
    "for_with_break_continue": """
        function main() {
          var total = 0;
          for (var i = 0; i < 10; i++) {
            if (i === 3) continue;
            if (i === 6) break;
            total = total + i;
          }
          return total;
        }""",
    "function_calls": """
        function add(a, b) { return a + b; }
        function main() { return add(add(1, 2), 3); }""",
    "function_as_value": """
        function inc(x) { return x + 1; }
        function apply(f, v) { return f(v); }
        function main() { return apply(inc, 41); }""",
    "function_in_property": """
        function double(x) { return x * 2; }
        function main() {
          var o = { op: double };
          var f = o.op;
          return f(21);
        }""",
    "recursion": """
        function fact(n) { if (n <= 1) return 1; return n * fact(n - 1); }
        function main() { return fact(6); }""",
    "conditional_expr": """
        function main() { var x = 5; return x < 3 ? "small" : "big"; }""",
    "short_circuit_and": """
        function check(o) { return o !== null && o.v === 1; }
        function main() { return check(null); }""",
    "typeof": """
        function main() {
          var parts = typeof 1 + typeof "s" + typeof true + typeof undefined;
          return parts;
        }""",
    "null_property_access_errors": """
        function main() { var o = null; return o.x; }""",
    "assert_failure": "function main() { assert(1 === 2); }",
    "missing_return_is_undefined": """
        function noop() {}
        function main() { return noop() === undefined; }""",
    "nested_objects": """
        function main() {
          var o = { inner: { v: 7 } };
          return o.inner.v;
        }""",
    "numeric_keys_distinct_from_strings": """
        function main() {
          var o = {};
          o[1] = "num";
          o["x"] = "str";
          return o[1];
        }""",
}


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_conformance(name):
    assert_agree(CORPUS[name])


class TestWithSymbolicInputs:
    def test_scripted_number(self):
        source = """
        function main() {
          var n = symb_number();
          if (n < 0) { return -n; }
          return n;
        }"""
        for value in (-7, 0, 3.5):
            assert_agree(source, symb_values=[value])

    def test_wrong_type_vanishes(self):
        assert_agree(
            "function main() { var n = symb_number(); return n; }",
            symb_values=["oops"],
        )

    def test_scripted_string_key(self):
        source = """
        function main() {
          var k = symb_string();
          var o = { a: 1 };
          o[k] = 2;
          return o.a;
        }"""
        for key in ("a", "b"):
            assert_agree(source, symb_values=[key])
