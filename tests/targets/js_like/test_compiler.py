"""Structural tests for the MiniJS-to-GIL compiler."""

import pytest

from repro.gil.syntax import ActionCall, Call, Fail, IfGoto, ISym, USym, Vanish
from repro.targets.js_like.compiler import CompileError, compile_source


def compile_main(body: str, extra: str = ""):
    prog = compile_source(f"{extra}\nfunction main() {{ {body} }}")
    return prog.procs["main"]


def commands_of_type(proc, kind):
    return [c for c in proc.body if isinstance(c, kind)]


class TestObjectCompilation:
    def test_object_literal_emits_usym_init_set(self):
        proc = compile_main("var o = { a: 1 };")
        assert len(commands_of_type(proc, USym)) == 1
        actions = [c.action for c in commands_of_type(proc, ActionCall)]
        assert actions == ["initObj", "setProp"]

    def test_array_literal_sets_length(self):
        proc = compile_main("var a = [1, 2];")
        set_props = [
            c for c in commands_of_type(proc, ActionCall) if c.action == "setProp"
        ]
        assert len(set_props) == 3  # two elements plus length

    def test_member_read_is_getprop(self):
        proc = compile_main("var o = {}; var v = o.p;")
        assert any(
            c.action == "getProp" for c in commands_of_type(proc, ActionCall)
        )

    def test_delete_is_delprop(self):
        proc = compile_main("var o = {}; delete o.p;")
        assert any(
            c.action == "delProp" for c in commands_of_type(proc, ActionCall)
        )


class TestControlFlow:
    def test_assert_compiles_to_ifgoto_fail(self):
        proc = compile_main("assert(true);")
        assert commands_of_type(proc, Fail)
        assert commands_of_type(proc, IfGoto)

    def test_assume_compiles_to_ifgoto_vanish(self):
        proc = compile_main("assume(true);")
        assert commands_of_type(proc, Vanish)

    def test_symbolic_input_emits_isym_and_type_assume(self):
        proc = compile_main("var n = symb_number();")
        assert len(commands_of_type(proc, ISym)) == 1
        assert commands_of_type(proc, Vanish)  # the typeof assume pattern

    def test_untyped_symb_has_no_assume(self):
        proc = compile_main("var v = symb();")
        assert len(commands_of_type(proc, ISym)) == 1
        assert not commands_of_type(proc, Vanish)

    def test_every_function_ends_with_return(self):
        from repro.gil.syntax import Return

        proc = compile_main("var x = 1;")
        assert isinstance(proc.body[-1], Return)


class TestCalls:
    def test_known_function_called_by_name(self):
        proc = compile_main("f();", extra="function f() {}")
        calls = commands_of_type(proc, Call)
        assert len(calls) == 1
        from repro.logic.expr import Lit

        assert calls[0].callee == Lit("f")

    def test_function_value_through_variable(self):
        proc = compile_main(
            "var g = f; g();", extra="function f() {}"
        )
        calls = commands_of_type(proc, Call)
        from repro.logic.expr import PVar

        assert calls[0].callee == PVar("g")

    def test_unknown_identifier_rejected(self):
        with pytest.raises(CompileError):
            compile_main("var x = undeclared_thing;")

    def test_break_outside_loop_rejected(self):
        with pytest.raises(CompileError):
            compile_main("break;")


class TestTypeofRuntime:
    def test_js_typeof_proc_injected(self):
        prog = compile_source("function main() { return typeof 1; }")
        assert "__js_typeof" in prog.procs

    def test_sites_are_globally_unique(self):
        prog = compile_source(
            """
            function main() {
              var a = symb_number();
              var o = {};
              var b = symb_number();
            }"""
        )
        sites = [
            c.site
            for proc in prog.procs.values()
            for c in proc.body
            if isinstance(c, (ISym, USym))
        ]
        assert len(sites) == len(set(sites))
