"""Tests for the While parser."""

import pytest

from repro.frontend.lexer import LexError, ParseError
from repro.gil.values import NULL
from repro.logic.expr import BinOp, BinOpExpr, EList, Lit, PVar, UnOp, UnOpExpr
from repro.targets.while_lang import ast
from repro.targets.while_lang.parser import parse_program


def parse_main(body: str) -> ast.ProcDef:
    program = parse_program(f"proc main() {{ {body} }}")
    assert len(program.procs) == 1
    return program.procs[0]


def first_stmt(body: str) -> ast.Stmt:
    return parse_main(body).body[0]


class TestProcedures:
    def test_empty_proc(self):
        proc = parse_main("")
        assert proc.name == "main" and proc.params == () and proc.body == ()

    def test_params(self):
        program = parse_program("proc f(a, b, c) { return a; }")
        assert program.procs[0].params == ("a", "b", "c")

    def test_multiple_procs(self):
        program = parse_program("proc f() { skip; } proc g() { skip; }")
        assert [p.name for p in program.procs] == ["f", "g"]


class TestStatements:
    def test_skip(self):
        assert isinstance(first_stmt("skip;"), ast.Skip)

    def test_assignment(self):
        stmt = first_stmt("x := 1 + 2;")
        assert stmt == ast.Assign("x", Lit(1) + Lit(2))

    def test_if_else(self):
        stmt = first_stmt("if (x < 1) { y := 1; } else { y := 2; }")
        assert isinstance(stmt, ast.If)
        assert len(stmt.then_body) == 1 and len(stmt.else_body) == 1

    def test_if_without_else(self):
        stmt = first_stmt("if (x < 1) { y := 1; }")
        assert isinstance(stmt, ast.If) and stmt.else_body == ()

    def test_while(self):
        stmt = first_stmt("while (i < 10) { i := i + 1; }")
        assert isinstance(stmt, ast.While)

    def test_return(self):
        assert first_stmt("return 5;") == ast.ReturnStmt(Lit(5))

    def test_assume_assert(self):
        assert isinstance(first_stmt("assume(x < 1);"), ast.Assume)
        assert isinstance(first_stmt("assert(x < 1);"), ast.Assert)

    def test_call(self):
        stmt = first_stmt("r := f(1, x);")
        assert stmt == ast.CallStmt("r", "f", (Lit(1), PVar("x")))

    def test_object_literal(self):
        stmt = first_stmt('o := { a: 1, b: "two" };')
        assert stmt == ast.New("o", (("a", Lit(1)), ("b", Lit("two"))))

    def test_empty_object(self):
        assert first_stmt("o := {};") == ast.New("o", ())

    def test_lookup(self):
        assert first_stmt("v := o.prop;") == ast.Lookup("v", PVar("o"), "prop")

    def test_mutate(self):
        assert first_stmt("o.prop := 3;") == ast.Mutate(PVar("o"), "prop", Lit(3))

    def test_dispose(self):
        assert first_stmt("dispose(o);") == ast.Dispose(PVar("o"))

    def test_symbolic_inputs(self):
        assert first_stmt("x := symb();") == ast.SymbolicInput("x", None)
        assert first_stmt("x := symb_number();") == ast.SymbolicInput("x", "number")
        assert first_stmt("x := symb_string();") == ast.SymbolicInput("x", "string")
        assert first_stmt("x := symb_bool();") == ast.SymbolicInput("x", "bool")


class TestExpressions:
    def expr(self, text: str):
        stmt = first_stmt(f"x := {text};")
        assert isinstance(stmt, ast.Assign)
        return stmt.expr

    def test_precedence_mul_over_add(self):
        assert self.expr("1 + 2 * 3") == Lit(1) + (Lit(2) * Lit(3))

    def test_precedence_cmp_over_and(self):
        e = self.expr("a < b and c < d")
        assert e == (PVar("a").lt(PVar("b"))).and_(PVar("c").lt(PVar("d")))

    def test_parentheses(self):
        assert self.expr("(1 + 2) * 3") == (Lit(1) + Lit(2)) * Lit(3)

    def test_unary_minus_and_not(self):
        assert self.expr("-x") == UnOpExpr(UnOp.NEG, PVar("x"))
        assert self.expr("not b") == UnOpExpr(UnOp.NOT, PVar("b"))

    def test_equality_and_diseq(self):
        assert self.expr("a = b") == PVar("a").eq(PVar("b"))
        assert self.expr("a != b") == PVar("a").neq(PVar("b"))

    def test_gt_ge_desugar(self):
        assert self.expr("a > b") == PVar("b").lt(PVar("a"))
        assert self.expr("a >= b") == PVar("b").leq(PVar("a"))

    def test_literals(self):
        assert self.expr("true") == Lit(True)
        assert self.expr("false") == Lit(False)
        assert self.expr("null") == Lit(NULL)
        assert self.expr("3.5") == Lit(3.5)
        assert self.expr('"hi"') == Lit("hi")

    def test_list_literal(self):
        assert self.expr("[1, x]") == EList((Lit(1), PVar("x")))

    def test_builtins(self):
        assert self.expr("len(xs)") == UnOpExpr(UnOp.LSTLEN, PVar("xs"))
        assert self.expr("nth(xs, 0)") == BinOpExpr(BinOp.LNTH, PVar("xs"), Lit(0))
        assert self.expr('s ++ "x"') == BinOpExpr(BinOp.SCONCAT, PVar("s"), Lit("x"))

    def test_string_concat_vs_add(self):
        e = self.expr("a ++ b + c")
        # ++ and + are the same precedence tier, left-assoc.
        assert e == BinOpExpr(BinOp.ADD, BinOpExpr(BinOp.SCONCAT, PVar("a"), PVar("b")), PVar("c"))


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("proc main() { x := 1 }")

    def test_keyword_as_expression(self):
        with pytest.raises(ParseError):
            parse_program("proc main() { x := while; }")

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            parse_program('proc main() { x := "oops; }')

    def test_comments_are_skipped(self):
        program = parse_program(
            "proc main() { // line comment\n /* block */ x := 1; }"
        )
        assert len(program.procs[0].body) == 1
