"""Unit tests for the While memory models (paper §2.4, Figure 3)."""

import pytest

from repro.gil.values import Symbol
from repro.logic.expr import Lit, LVar, lst
from repro.logic.pathcond import PathCondition
from repro.logic.solver import Solver
from repro.state.interface import MemErr, MemOk, SymMemErr, SymMemOk
from repro.targets.while_lang.memory import (
    SymWhileMemory,
    WhileConcreteMemory,
    WhileSymbolicMemory,
)

CONC = WhileConcreteMemory()
SYM = WhileSymbolicMemory()
L1, L2 = Symbol("l1"), Symbol("l2")


class TestConcrete:
    def test_mutate_then_lookup(self):
        mem = CONC.initial()
        (b1,) = CONC.execute("mutate", mem, (L1, "p", 7))
        (b2,) = CONC.execute("lookup", b1.memory, (L1, "p"))
        assert isinstance(b2, MemOk) and b2.value == 7

    def test_lookup_missing_errors(self):
        (b,) = CONC.execute("lookup", CONC.initial(), (L1, "p"))
        assert isinstance(b, MemErr)
        assert b.value[0] == "missing-property"

    def test_mutate_overwrites(self):
        mem = CONC.initial()
        (b1,) = CONC.execute("mutate", mem, (L1, "p", 1))
        (b2,) = CONC.execute("mutate", b1.memory, (L1, "p", 2))
        (b3,) = CONC.execute("lookup", b2.memory, (L1, "p"))
        assert b3.value == 2

    def test_dispose_removes_all_props(self):
        mem = CONC.initial()
        (b1,) = CONC.execute("mutate", mem, (L1, "p", 1))
        (b2,) = CONC.execute("mutate", b1.memory, (L1, "q", 2))
        (b3,) = CONC.execute("dispose", b2.memory, (L1,))
        (b4,) = CONC.execute("lookup", b3.memory, (L1, "p"))
        assert isinstance(b4, MemErr)

    def test_dispose_missing_errors(self):
        (b,) = CONC.execute("dispose", CONC.initial(), (L1,))
        assert isinstance(b, MemErr)
        assert b.value[0] == "missing-object"

    def test_dispose_spares_other_objects(self):
        mem = CONC.initial()
        (b1,) = CONC.execute("mutate", mem, (L1, "p", 1))
        (b2,) = CONC.execute("mutate", b1.memory, (L2, "p", 2))
        (b3,) = CONC.execute("dispose", b2.memory, (L1,))
        (b4,) = CONC.execute("lookup", b3.memory, (L2, "p"))
        assert b4.value == 2

    def test_non_symbol_location_rejected(self):
        from repro.gil.ops import EvalError

        with pytest.raises(EvalError):
            CONC.execute("lookup", CONC.initial(), (42, "p"))


class TestSymbolicLookupBranching:
    def _mem(self, cells):
        return SymWhileMemory.of(cells)

    def test_literal_locations_fold(self):
        # Distinct symbols: no branching, direct hit.
        mem = self._mem({(Lit(L1), "p"): Lit(1), (Lit(L2), "p"): Lit(2)})
        branches = SYM.execute(
            "lookup", mem, lst(L1, "p"), PathCondition.true(), Solver()
        )
        assert len(branches) == 1
        assert branches[0].expr == Lit(1)

    def test_symbolic_location_branches(self):
        loc = LVar("l")
        mem = self._mem({(Lit(L1), "p"): Lit(1), (Lit(L2), "p"): Lit(2)})
        branches = SYM.execute(
            "lookup", mem, lst(loc, "p"), PathCondition.true(), Solver()
        )
        # l = L1, l = L2, or l matches neither (error).
        assert len(branches) == 3
        kinds = [type(b).__name__ for b in branches]
        assert kinds.count("SymMemOk") == 2 and kinds.count("SymMemErr") == 1

    def test_learned_equalities(self):
        loc = LVar("l")
        mem = self._mem({(Lit(L1), "p"): Lit(1)})
        branches = SYM.execute(
            "lookup", mem, lst(loc, "p"), PathCondition.true(), Solver()
        )
        ok = next(b for b in branches if isinstance(b, SymMemOk))
        assert ok.learned == (loc.eq(Lit(L1)),)

    def test_pc_prunes_impossible_branch(self):
        loc = LVar("l")
        pc = PathCondition.of(loc.eq(Lit(L1)))
        mem = self._mem({(Lit(L1), "p"): Lit(1), (Lit(L2), "p"): Lit(2)})
        branches = SYM.execute("lookup", mem, lst(loc, "p"), pc, Solver())
        assert len(branches) == 1
        assert branches[0].expr == Lit(1)


class TestSymbolicMutate:
    def test_absent_branch_adds_cell(self):
        mem = SymWhileMemory.of({(Lit(L1), "p"): Lit(1)})
        branches = SYM.execute(
            "mutate", mem, lst(L2, "p", Lit(9)), PathCondition.true(), Solver()
        )
        # L2 provably differs from L1: single absent-branch.
        assert len(branches) == 1
        assert len(branches[0].memory.cells) == 2

    def test_present_branch_updates(self):
        mem = SymWhileMemory.of({(Lit(L1), "p"): Lit(1)})
        branches = SYM.execute(
            "mutate", mem, lst(L1, "p", Lit(9)), PathCondition.true(), Solver()
        )
        assert len(branches) == 1
        assert dict(branches[0].memory.cells)[(Lit(L1), "p")] == Lit(9)

    def test_symbolic_location_mutate_branches(self):
        loc = LVar("l")
        mem = SymWhileMemory.of({(Lit(L1), "p"): Lit(1)})
        branches = SYM.execute(
            "mutate", mem, lst(loc, "p", Lit(9)), PathCondition.true(), Solver()
        )
        assert len(branches) == 2  # update L1's cell, or add a fresh cell


class TestSymbolicDispose:
    def test_aliased_locations_all_removed(self):
        # The case the MA-RS harness caught: a symbolic location aliasing
        # a literal one must be disposed together with it.
        loc = LVar("l")
        mem = SymWhileMemory.of(
            {(Lit(L1), "a"): Lit(0), (loc, "b"): Lit(0)}
        )
        branches = SYM.execute(
            "dispose", mem, lst(L1), PathCondition.true(), Solver()
        )
        ok_branches = [b for b in branches if isinstance(b, SymMemOk)]
        # One branch where l = L1 (both cells gone), one where l ≠ L1.
        sizes = sorted(len(b.memory.cells) for b in ok_branches)
        assert sizes == [0, 1]
