"""Differential fuzzing of the While compiler (E5, randomized).

Hypothesis generates random While programs (arithmetic, branching,
bounded loops, object create/lookup/mutate/dispose — including programs
that fault); each is executed by the source-level reference interpreter
and by concrete GIL execution of the compiled program, and the outcomes
must agree.  This is the randomized arm of the compiler-trustworthiness
argument (the paper's Test262-style methodology).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.explorer import Explorer
from repro.gil.semantics import OutcomeKind
from repro.gil.values import Symbol, values_equal
from repro.logic.expr import BinOp, BinOpExpr, Expr, Lit, PVar, UnOp, UnOpExpr
from repro.state.concrete import ConcreteStateModel
from repro.targets.while_lang import WhileLanguage, ast
from repro.targets.while_lang.compiler import compile_program
from repro.targets.while_lang.interpreter import WhileInterpreter

LANG = WhileLanguage()

#: Numeric variables (always initialised first) and object variables.
_NUM_VARS = ["a", "b", "c"]
_OBJ_VARS = ["o", "p"]
_PROPS = ["x", "y"]

_num_expr_leaf = st.one_of(
    st.integers(-5, 5).map(Lit),
    st.sampled_from([PVar(v) for v in _NUM_VARS]),
)


def _num_exprs(depth: int):
    if depth == 0:
        return _num_expr_leaf
    sub = _num_exprs(depth - 1)
    return st.one_of(
        _num_expr_leaf,
        st.tuples(st.sampled_from([BinOp.ADD, BinOp.SUB, BinOp.MUL]), sub, sub).map(
            lambda t: BinOpExpr(*t)
        ),
        sub.map(lambda e: UnOpExpr(UnOp.NEG, e)),
    )


_conditions = st.tuples(
    st.sampled_from([BinOp.LT, BinOp.LEQ, BinOp.EQ]),
    _num_exprs(1),
    _num_exprs(1),
).map(lambda t: BinOpExpr(*t))


@st.composite
def _statements(draw, depth: int) -> ast.Stmt:
    choices = ["assign", "mutate", "lookup", "new", "dispose"]
    if depth > 0:
        choices += ["if", "while"]
    kind = draw(st.sampled_from(choices))
    if kind == "assign":
        return ast.Assign(draw(st.sampled_from(_NUM_VARS)), draw(_num_exprs(2)))
    if kind == "new":
        props = tuple(
            (p, draw(_num_exprs(1)))
            for p in draw(st.sets(st.sampled_from(_PROPS), max_size=2))
        )
        return ast.New(draw(st.sampled_from(_OBJ_VARS)), props)
    if kind == "mutate":
        return ast.Mutate(
            PVar(draw(st.sampled_from(_OBJ_VARS))),
            draw(st.sampled_from(_PROPS)),
            draw(_num_exprs(1)),
        )
    if kind == "lookup":
        return ast.Lookup(
            draw(st.sampled_from(_NUM_VARS)),
            PVar(draw(st.sampled_from(_OBJ_VARS))),
            draw(st.sampled_from(_PROPS)),
        )
    if kind == "dispose":
        return ast.Dispose(PVar(draw(st.sampled_from(_OBJ_VARS))))
    if kind == "if":
        then_body = tuple(
            draw(_statements(depth - 1)) for _ in range(draw(st.integers(1, 2)))
        )
        else_body = tuple(
            draw(_statements(depth - 1)) for _ in range(draw(st.integers(0, 2)))
        )
        return ast.If(draw(_conditions), then_body, else_body)
    # Bounded while: i := 0; while (i < k) { body; i := i + 1; } — the
    # counter variable is dedicated so generated bodies can't unbound it.
    body = tuple(
        draw(_statements(depth - 1)) for _ in range(draw(st.integers(1, 2)))
    )
    bound = draw(st.integers(1, 3))
    return ast.While(
        PVar("loop_i").lt(Lit(bound)),
        body + (ast.Assign("loop_i", PVar("loop_i") + 1),),
    )


@st.composite
def _programs(draw) -> ast.Program:
    header = [
        ast.Assign("a", Lit(draw(st.integers(-3, 3)))),
        ast.Assign("b", Lit(draw(st.integers(-3, 3)))),
        ast.Assign("c", Lit(0)),
        ast.Assign("loop_i", Lit(0)),
        ast.New("o", (("x", Lit(1)),)),
        ast.New("p", ()),
    ]
    body = [draw(_statements(2)) for _ in range(draw(st.integers(1, 5)))]
    footer = [
        ast.ReturnStmt(
            BinOpExpr(BinOp.ADD, PVar("a"), BinOpExpr(BinOp.ADD, PVar("b"), PVar("c")))
        )
    ]
    # Reset the loop counter before each top-level statement so nested
    # whiles terminate regardless of interleaving.
    stmts: list = list(header)
    for s in body:
        stmts.append(ast.Assign("loop_i", Lit(0)))
        stmts.append(s)
    stmts += footer
    return ast.Program((ast.ProcDef("main", (), tuple(stmts)),))


@given(program=_programs())
@settings(max_examples=250, deadline=None)
def test_interpreter_and_compiled_gil_agree(program):
    ref = WhileInterpreter().run(program, "main")
    prog = compile_program(program)
    sm = ConcreteStateModel(LANG.concrete_memory())
    result = Explorer(prog, sm).run("main")

    if ref.kind == "vanish":
        assert result.finals == []
        return
    out = result.sole_outcome
    expected_kind = OutcomeKind.NORMAL if ref.kind == "normal" else OutcomeKind.ERROR
    assert out.kind is expected_kind, (ref, out)
    if ref.kind == "normal":
        if isinstance(ref.value, Symbol):
            assert isinstance(out.value, Symbol)
        else:
            assert values_equal(out.value, ref.value), (ref.value, out.value)
    else:
        # Error *classes* must agree (location names differ by allocator).
        ref_tag = ref.value[0] if isinstance(ref.value, tuple) else str(ref.value)
        out_tag = out.value[0] if isinstance(out.value, tuple) else str(out.value)
        if isinstance(ref_tag, str) and isinstance(out_tag, str):
            assert ref_tag.split(":")[0] == out_tag.split(":")[0] or (
                "eval-error" in ref_tag and "eval-error" in out_tag
            ), (ref.value, out.value)


# -- completeness: symbolic execution covers every concrete run ----------------
#
# Theorem 3.6's completeness direction, randomized: for a program with
# symbolic inputs, any concrete run (under any inputs) must be covered by
# some symbolic final — same outcome kind, with a path condition the
# concrete inputs satisfy.

from repro.engine.config import EngineConfig
from repro.gil.ops import EvalError, evaluate
from repro.state.allocator import ConcreteAllocator, isym_name
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import WhileSymbolicMemory


@st.composite
def _symbolic_programs(draw) -> ast.Program:
    header = [
        ast.SymbolicInput("a", "int"),
        ast.SymbolicInput("b", "int"),
        ast.Assign("c", Lit(0)),
        ast.Assign("loop_i", Lit(0)),
        ast.New("o", (("x", Lit(1)),)),
        ast.New("p", ()),
    ]
    stmts: list = list(header)
    for _ in range(draw(st.integers(1, 4))):
        stmts.append(ast.Assign("loop_i", Lit(0)))
        stmts.append(draw(_statements(1)))
    stmts.append(
        ast.ReturnStmt(
            BinOpExpr(BinOp.ADD, PVar("a"), BinOpExpr(BinOp.ADD, PVar("b"), PVar("c")))
        )
    )
    return ast.Program((ast.ProcDef("main", (), tuple(stmts)),))


@given(
    program=_symbolic_programs(),
    a=st.integers(-3, 3),
    b=st.integers(-3, 3),
)
@settings(max_examples=120, deadline=None)
def test_symbolic_covers_concrete(program, a, b):
    prog = compile_program(program)

    # Concrete run under the chosen inputs.
    from repro.gil.syntax import ISym

    sites = sorted(
        cmd.site
        for proc in prog.procs.values()
        for cmd in proc.body
        if isinstance(cmd, ISym)
    )
    env = {isym_name(site, 0): value for site, value in zip(sites, (a, b))}
    conc_sm = ConcreteStateModel(
        LANG.concrete_memory(), ConcreteAllocator(script=env)
    )
    conc = Explorer(prog, conc_sm).run("main").sole_outcome

    # Symbolic run: some final must cover it.
    sym_sm = SymbolicStateModel(WhileSymbolicMemory())
    sym = Explorer(prog, sym_sm, EngineConfig()).run("main")

    covering = []
    for fin in sym.finals:
        if fin.kind is not conc.kind:
            continue
        try:
            if all(evaluate(c, lvar_env=env) is True for c in fin.state.pc.conjuncts):
                covering.append(fin)
        except EvalError:
            continue
    assert covering, (conc, [f.state.pc for f in sym.finals])
