"""While compiler conformance (E5): compiled GIL vs reference interpreter.

The paper establishes compiler trustworthiness by differential testing
(Test262 for Gillian-JS, §4.1).  Here every program in the corpus is run
both through the reference source-level interpreter and through concrete
GIL execution of the compiled program; outcomes must agree.
"""

import pytest

from repro.engine.explorer import Explorer
from repro.gil.semantics import OutcomeKind
from repro.gil.values import NULL
from repro.state.allocator import ConcreteAllocator
from repro.state.concrete import ConcreteStateModel
from repro.targets.while_lang import WhileLanguage
from repro.targets.while_lang.interpreter import WhileInterpreter
from repro.targets.while_lang.parser import parse_program

LANG = WhileLanguage()

_KIND = {
    "normal": OutcomeKind.NORMAL,
    "error": OutcomeKind.ERROR,
}


def run_both(source: str, entry: str = "main", symb_values=()):
    """Run via reference interpreter and via compiled GIL; return both."""
    program = parse_program(source)
    ref = WhileInterpreter(symb_values=list(symb_values)).run(program, entry)

    prog = LANG.compile(source)
    script = {}
    # Scripted iSym values follow allocation-site order of compilation.
    sm = ConcreteStateModel(LANG.concrete_memory(), ConcreteAllocator())
    if symb_values:
        # Discover iSym sites in program order and map the values onto them.
        from repro.gil.syntax import ISym
        from repro.state.allocator import isym_name

        sites = [
            cmd.site
            for proc in prog.procs.values()
            for cmd in proc.body
            if isinstance(cmd, ISym)
        ]
        for site, value in zip(sorted(sites), symb_values):
            script[isym_name(site, 0)] = value
        sm = ConcreteStateModel(
            LANG.concrete_memory(), ConcreteAllocator(script=script)
        )
    gil_result = Explorer(prog, sm).run(entry)
    return ref, gil_result


def assert_agree(source: str, symb_values=()):
    ref, gil_result = run_both(source, symb_values=symb_values)
    if ref.kind == "vanish":
        assert gil_result.finals == []
        return
    out = gil_result.sole_outcome
    assert out.kind is _KIND[ref.kind], (ref, out)
    if ref.kind == "normal":
        from repro.gil.values import Symbol, values_equal

        if isinstance(ref.value, Symbol):
            # Locations are allocator-named differently; kind match suffices.
            assert isinstance(out.value, Symbol)
        else:
            assert values_equal(out.value, ref.value), (ref.value, out.value)


CORPUS = {
    "arith": "proc main() { x := 2 + 3 * 4; return x; }",
    "div": "proc main() { return 7 / 2; }",
    "string": 'proc main() { s := "ab" ++ "cd"; return slen(s); }',
    "if_true": "proc main() { if (1 < 2) { return 10; } else { return 20; } }",
    "if_false": "proc main() { if (2 < 1) { return 10; } else { return 20; } }",
    "nested_if": """
        proc main() {
          x := 5;
          if (x < 3) { r := 1; } else { if (x < 7) { r := 2; } else { r := 3; } }
          return r;
        }""",
    "while_sum": """
        proc main() {
          i := 0; total := 0;
          while (i < 10) { total := total + i; i := i + 1; }
          return total;
        }""",
    "while_zero_iterations": """
        proc main() { i := 0; while (false) { i := 99; } return i; }""",
    "call": """
        proc add(a, b) { return a + b; }
        proc main() { r := add(2, 40); return r; }""",
    "recursion": """
        proc fib(n) {
          if (n < 2) { return n; }
          a := fib(n - 1); b := fib(n - 2);
          return a + b;
        }
        proc main() { r := fib(10); return r; }""",
    "object_roundtrip": """
        proc main() {
          o := { a: 1, b: 2 };
          t := bump_a(o);
          o.a := t;
          x := o.a; y := o.b;
          return x + y;
        }
        proc bump_a(o) { v := o.a; return v + 10; }""",
    "object_mutate_new_prop": """
        proc main() { o := {}; o.fresh := 42; v := o.fresh; return v; }""",
    "dispose_then_use_errors": """
        proc main() { o := { a: 1 }; dispose(o); x := o.a; return x; }""",
    "missing_property_errors": """
        proc main() { o := { a: 1 }; x := o.b; return x; }""",
    "dispose_missing_errors": """
        proc main() { o := { a: 1 }; dispose(o); dispose(o); return 0; }""",
    "assert_pass": "proc main() { assert(1 < 2); return 0; }",
    "assert_fail": "proc main() { assert(2 < 1); return 0; }",
    "assume_false_vanishes": "proc main() { assume(false); return 0; }",
    "division_by_zero_errors": "proc main() { x := 0; return 1 / x; }",
    "list_ops": """
        proc main() {
          xs := [1, 2, 3];
          ys := cons(0, xs);
          return len(ys) + nth(ys, 0) + nth(ys, 3);
        }""",
    "falls_off_end_returns_null": "proc main() { x := 1; }",
    "fresh_objects_distinct": """
        proc main() { a := {}; b := {}; return a = b; }""",
    "shadowing_call_params": """
        proc f(x) { x := x + 1; return x; }
        proc main() { x := 10; r := f(1); return x + r; }""",
}


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_conformance(name):
    assert_agree(CORPUS[name])


class TestConformanceWithInputs:
    def test_symbolic_input_scripted(self):
        source = """
        proc main() {
          n := symb_number();
          if (n < 0) { return -n; } else { return n; }
        }"""
        for value in (-5, 0, 7):
            assert_agree(source, symb_values=[value])

    def test_typed_input_filters_wrong_type(self):
        source = "proc main() { n := symb_number(); return n; }"
        assert_agree(source, symb_values=["not-a-number"])
