"""Symbolic testing of While programs end to end (paper §2, §3.3)."""

import pytest

from repro.engine.config import EngineConfig
from repro.testing.harness import SymbolicTester
from repro.targets.while_lang import WhileLanguage

LANG = WhileLanguage()


def run(source: str, entry: str = "main", **kw) -> "TestResult":
    return SymbolicTester(LANG, **kw).run_source(source, entry)


class TestBoundedVerification:
    def test_abs_is_nonnegative(self):
        result = run(
            """
            proc main() {
              n := symb_number();
              if (n < 0) { a := -n; } else { a := n; }
              assert(0 <= a);
            }"""
        )
        assert result.passed and result.paths == 2

    def test_max_of_two(self):
        result = run(
            """
            proc max2(a, b) { if (a < b) { return b; } else { return a; } }
            proc main() {
              a := symb_number(); b := symb_number();
              m := max2(a, b);
              assert(a <= m and b <= m);
              assert(m = a or m = b);
            }"""
        )
        assert result.passed

    def test_loop_with_symbolic_bound(self):
        result = run(
            """
            proc main() {
              n := symb_int();
              assume(0 <= n and n <= 4);
              i := 0; total := 0;
              while (i < n) { total := total + 1; i := i + 1; }
              assert(total = n);
            }"""
        )
        assert result.passed
        assert result.paths == 5  # n ∈ {0, 1, 2, 3, 4}

    def test_object_properties_with_symbolic_values(self):
        result = run(
            """
            proc main() {
              v := symb_number();
              o := { data: v, count: 0 };
              o.count := 1;
              d := o.data; c := o.count;
              assert(d = v and c = 1);
            }"""
        )
        assert result.passed


class TestBugFinding:
    def test_boundary_bug_found_with_counter_model(self):
        result = run(
            """
            proc main() {
              n := symb_number();
              assume(0 <= n and n <= 10);
              assert(n != 10);
            }"""
        )
        assert result.verdict == "bug"
        bug = result.bugs[0]
        assert bug.model is not None and bug.model["val_0_0"] == 10
        assert bug.confirmed

    def test_use_after_dispose_found(self):
        result = run(
            """
            proc main() {
              o := { a: 1 };
              flag := symb_bool();
              if (flag) { dispose(o); }
              x := o.a;
              return x;
            }"""
        )
        assert result.verdict == "bug"
        assert any(b.confirmed for b in result.bugs)
        # The non-disposing path is fine: exactly one error.
        assert len(result.bugs) == 1

    def test_all_violating_paths_reported(self):
        result = run(
            """
            proc main() {
              a := symb_bool(); b := symb_bool();
              assert(a); assert(b);
            }"""
        )
        # Paths: a=false; a=true,b=false — two violations.
        assert len(result.bugs) == 2

    def test_no_false_positive_on_infeasible_path(self):
        result = run(
            """
            proc main() {
              n := symb_number();
              assume(n < 0);
              if (0 <= n) { assert(false); }
              return n;
            }"""
        )
        assert result.passed


class TestEngineBounds:
    def test_nonterminating_loop_is_bounded(self):
        config = EngineConfig(max_steps_per_path=500)
        result = SymbolicTester(LANG, config=config).run_source(
            "proc main() { while (true) { x := 1; } }", "main"
        )
        assert result.passed  # no bug reported, path dropped at the bound
        assert result.stats.paths_dropped >= 1

    def test_command_counts_are_reported(self):
        result = run("proc main() { x := 1; return x; }")
        assert result.stats.commands_executed >= 2


class TestMultiplePathsStatistics:
    def test_path_explosion_is_complete_up_to_bound(self):
        result = run(
            """
            proc main() {
              a := symb_bool(); b := symb_bool(); c := symb_bool();
              count := 0;
              if (a) { count := count + 1; }
              if (b) { count := count + 1; }
              if (c) { count := count + 1; }
              assert(count <= 3);
              return count;
            }"""
        )
        assert result.passed
        assert result.paths == 8


class TestSymbolicLists:
    def test_cons_head_tail_laws(self):
        result = run(
            """
            proc main() {
              xs := symb();
              assume(typeof(xs) = typeof([1]));
              assume(len(xs) = 2);
              ys := cons(0, xs);
              assert(len(ys) = 3);
              assert(hd(ys) = 0);
              assert(tl(ys) = xs);
            }"""
        )
        assert result.passed

    def test_concat_lengths(self):
        result = run(
            """
            proc main() {
              xs := symb();
              assume(typeof(xs) = typeof([1]));
              n := len(xs);
              ys := [1, 2];
              assert(len(xs) + 2 = n + len(ys));
            }"""
        )
        assert result.passed
