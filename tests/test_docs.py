"""Docs-vs-code consistency checks.

``docs/events.md`` is the authoritative bus schema; this test walks
:func:`repro.engine.events.event_types` so that adding an event type
without documenting it fails CI, keeping the doc from drifting.
"""

import os
import re

from repro.engine.events import event_types

DOCS_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "docs")


def read_doc(name):
    with open(os.path.join(DOCS_DIR, name)) as fh:
        return fh.read()


class TestEventsDoc:
    def test_every_event_type_is_documented(self):
        doc = read_doc("events.md")
        missing = [
            cls.__name__
            for cls in event_types()
            if f"### {cls.__name__}" not in doc
        ]
        assert not missing, (
            f"docs/events.md lacks a section for: {missing} — every bus "
            "event type needs a '### <TypeName>' schema entry"
        )

    def test_every_event_field_is_documented(self):
        # Each type's field table must cover the dataclass fields, so a
        # renamed/added field shows up here rather than as doc drift.
        import dataclasses

        doc = read_doc("events.md")
        problems = []
        for cls in event_types():
            section = doc.split(f"### {cls.__name__}", 1)[1]
            section = section.split("### ", 1)[0]
            for field in dataclasses.fields(cls):
                if f"`{field.name}`" not in section:
                    problems.append(f"{cls.__name__}.{field.name}")
        assert not problems, f"fields missing from docs/events.md: {problems}"

    def test_collector_metric_names_are_documented(self):
        doc = read_doc("events.md")
        for name in (
            "engine.steps",
            "engine.branches",
            "engine.branch_arms",
            "engine.path_depth",
            "solver.queries",
            "solver.cache_hits",
            "shards.retried",
        ):
            assert f"`{name}`" in doc, name


class TestDocsTree:
    def test_expected_docs_exist(self):
        for name in (
            "architecture.md",
            "events.md",
            "paper-map.md",
            "benchmarks.md",
            "service.md",
            "summaries.md",
        ):
            assert os.path.exists(os.path.join(DOCS_DIR, name)), name

    def test_readme_links_into_docs(self):
        readme = read_doc(os.path.join(os.pardir, "README.md"))
        for target in (
            "docs/architecture.md",
            "docs/events.md",
            "docs/paper-map.md",
            "docs/benchmarks.md",
            "docs/service.md",
            "docs/summaries.md",
        ):
            assert target in readme, f"README.md does not link {target}"

    def test_doc_cross_links_resolve(self):
        # Relative markdown links inside docs/ must point at real files.
        for name in (
            "architecture.md",
            "events.md",
            "benchmarks.md",
            "paper-map.md",
            "service.md",
            "summaries.md",
        ):
            doc = read_doc(name)
            for match in re.finditer(r"\]\(([a-z\-]+\.md)\)", doc):
                target = match.group(1)
                assert os.path.exists(
                    os.path.join(DOCS_DIR, target)
                ), f"{name} links to missing {target}"


class TestBenchmarksDoc:
    def test_schema_version_matches_the_doc(self):
        import benchmarks.tables as tables

        doc = read_doc("benchmarks.md")
        assert f'"schema_version": {tables.BENCH_SCHEMA_VERSION}' in doc, (
            "docs/benchmarks.md example envelope is out of date with "
            "BENCH_SCHEMA_VERSION — update the doc and its history table"
        )


class TestReadmeCompositionExample:
    """The README memlib example must build the shipped heap model."""

    def readme_example_namespace(self):
        readme = read_doc(os.path.join(os.pardir, "README.md"))
        section = readme.split("## Composing a memory model", 1)[1]
        code = re.search(r"```python\n(.*?)```", section, re.S).group(1)
        namespace = {}
        exec(compile(code, "README.md", "exec"), namespace)
        return namespace

    def test_example_executes_and_matches_shipped_model(self):
        from repro.gil.values import Symbol
        from repro.logic.expr import Lit, lst
        from repro.logic.pathcond import PathCondition
        from repro.logic.solver import Solver
        from repro.targets.while_lang.heap import HEAP_PART

        heap = self.readme_example_namespace()["HEAP"]
        assert heap.actions == HEAP_PART.actions
        # Both compositions must branch identically on a probe script
        # (mutate creates, dispose tombstones, lookup reports the bug).
        pc, solver = PathCondition(), Solver()
        loc = Lit(Symbol("l"))
        script = (
            ("mutate", lst(loc, "p", 1)),
            ("dispose", lst(loc)),
            ("lookup", lst(loc, "p")),
        )
        mems = [heap.initial_symbolic(), HEAP_PART.initial_symbolic()]
        for action, args in script:
            outs = [
                part.execute_symbolic(action, mem, args, pc, solver)
                for part, mem in zip((heap, HEAP_PART), mems)
            ]
            assert len(outs[0]) == len(outs[1]) == 1, action
            for i, (branch,) in enumerate(outs):
                if hasattr(branch, "memory"):
                    mems[i] = branch.memory
        assert outs[0][0].expr == outs[1][0].expr
        assert outs[0][0].expr.items[0] == Lit("use-after-dispose")


class TestReadmeServiceExample:
    """The README daemon example must run against the shipped service."""

    def readme_example_namespace(self):
        readme = read_doc(os.path.join(os.pardir, "README.md"))
        section = readme.split("## Running as a service", 1)[1]
        code = re.search(r"```python\n(.*?)```", section, re.S).group(1)
        namespace = {}
        exec(compile(code, "README.md", "exec"), namespace)
        return namespace

    def test_example_finds_bug_and_replays_from_cache(self):
        namespace = self.readme_example_namespace()
        result = namespace["result"]
        assert result.verdict == "bug"
        # The identical resubmission was served from the result store.
        assert namespace["job_id"] is None
        cached = namespace["cached"]
        assert cached is not None
        assert cached.finals_digest == result.finals_digest


class TestReadmeCompositionalExample:
    """The README summaries example must run against the shipped engine."""

    def readme_example_namespace(self):
        from repro.specs.cache import clear_summary_cache

        readme = read_doc(os.path.join(os.pardir, "README.md"))
        section = readme.split("## Compositional execution", 1)[1]
        code = re.search(r"```python\n(.*?)```", section, re.S).group(1)
        clear_summary_cache()  # cold cache: the comments describe a cold run
        namespace = {}
        exec(compile(code, "README.md", "exec"), namespace)
        return namespace

    def test_example_matches_baseline_and_replays(self):
        namespace = self.readme_example_namespace()
        result, baseline = namespace["result"], namespace["baseline"]
        assert result.verdict == baseline.verdict == "bug"
        assert result.paths == baseline.paths
        assert result.stats.summary_replays > 0
        assert baseline.stats.summary_replays == 0
        assert result.bugs[0].confirmed


class TestSummariesDocExample:
    """docs/summaries.md's worked example must execute as written.

    The example's own assertions (verdict/paths identity with the
    baseline, one cold miss, replay engagement, a pure-tier hit on the
    bus) are the test; exec raises if any fails.
    """

    def test_worked_example_executes(self):
        from repro.specs.cache import clear_summary_cache

        doc = read_doc("summaries.md")
        section = doc.split("## Worked example", 1)[1]
        code = re.search(r"```python\n(.*?)```", section, re.S).group(1)
        clear_summary_cache()  # the example asserts cold-run counters
        namespace = {}
        exec(compile(code, "summaries.md", "exec"), namespace)
        assert namespace["result"].stats.summary_replays >= 2


class TestReadmeMiniRustExample:
    """The README MiniRust example must run against the shipped target."""

    def readme_example_namespace(self):
        readme = read_doc(os.path.join(os.pardir, "README.md"))
        section = readme.split("### MiniRust: ownership faults as memory errors", 1)[1]
        code = re.search(r"```python\n(.*?)```", section, re.S).group(1)
        namespace = {}
        exec(compile(code, "README.md", "exec"), namespace)
        return namespace

    def test_example_finds_the_ownership_bug(self):
        namespace = self.readme_example_namespace()
        result, bug = namespace["result"], namespace["bug"]
        assert result.verdict == "bug"
        assert bug.confirmed
        assert bug.concrete_value[0] == "use-after-move"
        assert list(bug.model.values()) == [1]
