"""Tests for the compositional-execution layer (repro.specs)."""
