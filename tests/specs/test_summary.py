"""Tests for summary records, purity classification, and cache keys
(repro.specs.summary)."""

from repro.gil.syntax import (
    ActionCall,
    Assignment,
    Call,
    Fail,
    IfGoto,
    ISym,
    Proc,
    Prog,
    Return,
    USym,
)
from repro.logic.expr import Lit, PVar, lst
from repro.specs.summary import (
    SUMMARY_FORMAT_VERSION,
    Summary,
    classify_pure,
    engine_salt,
    exact_key,
    proc_hash,
    pure_key,
    spec_arg,
    static_callee,
)


def prog_of(*procs):
    p = Prog()
    for proc in procs:
        p.add(proc)
    return p


def ret_proc(name, params=("a",), value=None):
    """A one-command procedure returning ``value`` (default: its arg)."""
    body = (Return(value if value is not None else PVar(params[0])),)
    return Proc(name, params, body)


class TestClassifyPure:
    def test_arithmetic_only_is_pure(self):
        prog = prog_of(
            Proc("f", ("a",), (Assignment("x", PVar("a") + Lit(1)), Return(PVar("x"))))
        )
        assert classify_pure(prog) == {"f": True}

    def test_fail_and_branches_stay_pure(self):
        prog = prog_of(
            Proc("f", ("a",), (
                IfGoto(PVar("a").lt(Lit(0)), 2),
                Return(PVar("a")),
                Fail(Lit("neg")),
            ))
        )
        assert classify_pure(prog)["f"] is True

    def test_memory_action_is_impure(self):
        prog = prog_of(
            Proc("f", ("a",), (
                ActionCall("r", "lookup", lst(PVar("a"), "p")),
                Return(PVar("r")),
            ))
        )
        assert classify_pure(prog)["f"] is False

    def test_fresh_symbols_are_impure(self):
        usym = prog_of(Proc("f", (), (USym("o", 0), Return(PVar("o")))))
        isym = prog_of(Proc("f", (), (ISym("x", 0), Return(PVar("x")))))
        assert classify_pure(usym)["f"] is False
        assert classify_pure(isym)["f"] is False

    def test_purity_is_transitive(self):
        prog = prog_of(
            ret_proc("leaf"),
            Proc("mid", ("a",), (
                Call("r", Lit("leaf"), (PVar("a"),)),
                Return(PVar("r")),
            )),
            Proc("dirty", ("a",), (
                USym("o", 0),
                Call("r", Lit("leaf"), (PVar("a"),)),
                Return(PVar("r")),
            )),
            Proc("taints", ("a",), (
                Call("r", Lit("dirty"), (PVar("a"),)),
                Return(PVar("r")),
            )),
        )
        verdicts = classify_pure(prog)
        assert verdicts["leaf"] and verdicts["mid"]
        assert not verdicts["dirty"] and not verdicts["taints"]

    def test_dynamic_callee_is_impure(self):
        prog = prog_of(
            ret_proc("leaf"),
            Proc("f", ("a",), (
                Assignment("n", Lit("leaf")),
                Call("r", PVar("n"), (PVar("a"),)),
                Return(PVar("r")),
            )),
        )
        assert classify_pure(prog)["f"] is False

    def test_recursion_is_impure(self):
        prog = prog_of(
            Proc("f", ("a",), (
                Call("r", Lit("f"), (PVar("a"),)),
                Return(PVar("r")),
            ))
        )
        assert classify_pure(prog)["f"] is False


class TestProcHash:
    def test_deterministic(self):
        prog = prog_of(ret_proc("f"))
        assert proc_hash(prog, "f") == proc_hash(prog, "f")

    def test_covers_own_body(self):
        a = prog_of(ret_proc("f", value=Lit(1)))
        b = prog_of(ret_proc("f", value=Lit(2)))
        assert proc_hash(a, "f") != proc_hash(b, "f")

    def test_covers_transitive_callees(self):
        def with_leaf(value):
            return prog_of(
                ret_proc("leaf", value=value),
                Proc("mid", ("a",), (
                    Call("r", Lit("leaf"), (PVar("a"),)),
                    Return(PVar("r")),
                )),
                Proc("top", ("a",), (
                    Call("r", Lit("mid"), (PVar("a"),)),
                    Return(PVar("r")),
                )),
            )

        a, b = with_leaf(Lit(1)), with_leaf(Lit(2))
        # Editing the leaf invalidates every caller up the chain...
        assert proc_hash(a, "top") != proc_hash(b, "top")
        assert proc_hash(a, "mid") != proc_hash(b, "mid")
        # ...and the leaf itself.
        assert proc_hash(a, "leaf") != proc_hash(b, "leaf")

    def test_unrelated_procedures_unaffected(self):
        a = prog_of(ret_proc("f", value=Lit(1)), ret_proc("g"))
        b = prog_of(ret_proc("f", value=Lit(2)), ret_proc("g"))
        assert proc_hash(a, "g") == proc_hash(b, "g")

    def test_recursive_hash_well_defined(self):
        prog = prog_of(
            Proc("f", ("a",), (
                Call("r", Lit("f"), (PVar("a"),)),
                Return(PVar("r")),
            ))
        )
        assert proc_hash(prog, "f") == proc_hash(prog, "f")

    def test_memo_is_per_program(self):
        a = prog_of(ret_proc("f", value=Lit(1)))
        b = prog_of(ret_proc("f", value=Lit(2)))
        memo_a, memo_b = {}, {}
        assert proc_hash(a, "f", memo_a) != proc_hash(b, "f", memo_b)
        # The memo returns the cached digest on re-query.
        assert proc_hash(a, "f", memo_a) == memo_a["f"]


class TestKeys:
    def test_pure_key_covers_salt(self):
        assert pure_key("abc", "salt1") != pure_key("abc", "salt2")
        assert pure_key("abc", "s") == pure_key("abc", "s")

    def test_exact_key_covers_args(self):
        assert exact_key("h", [Lit(1)], None, None, "s") != exact_key(
            "h", [Lit(2)], None, None, "s"
        )

    def test_exact_key_covers_memory(self):
        assert exact_key("h", [], {"a": 1}, None, "s") != exact_key(
            "h", [], {"a": 2}, None, "s"
        )

    def test_keys_are_hex(self):
        key = exact_key("h", [], None, None, "s")
        assert len(key) == 64 and all(c in "0123456789abcdef" for c in key)


class TestEngineSalt:
    def test_salt_covers_budgets_and_policy(self):
        from repro.engine.config import EngineConfig
        from repro.state.symbolic import SymbolicStateModel
        from repro.targets.while_lang.memory import WhileSymbolicMemory

        sm = SymbolicStateModel(WhileSymbolicMemory())
        base = engine_salt(sm, EngineConfig())
        assert engine_salt(sm, EngineConfig()) == base
        assert engine_salt(sm, EngineConfig(summary_max_paths=7)) != base
        assert engine_salt(sm, EngineConfig(solver_step_budget=9)) != base
        relaxed = SymbolicStateModel(
            WhileSymbolicMemory(), unknown_policy="prune"
        )
        assert engine_salt(relaxed, EngineConfig(unknown_policy="prune")) != base


class TestUsable:
    def _summary(self, complete, version=SUMMARY_FORMAT_VERSION):
        return Summary(
            proc="f", tier="pure", params=("a",), paths=(),
            complete=complete, commands=3, format_version=version,
        )

    def test_complete_usable_everywhere(self):
        s = self._summary(complete=True)
        assert s.usable("verify") and s.usable("incorrectness")

    def test_incomplete_only_for_incorrectness(self):
        s = self._summary(complete=False)
        assert not s.usable("verify")
        assert s.usable("incorrectness")

    def test_foreign_format_version_unusable(self):
        s = self._summary(complete=True, version=SUMMARY_FORMAT_VERSION + 1)
        assert not s.usable("verify") and not s.usable("incorrectness")


class TestHelpers:
    def test_static_callee(self):
        assert static_callee(Call("r", Lit("f"), ())) == "f"
        assert static_callee(Call("r", PVar("x"), ())) is None

    def test_spec_arg_namespace(self):
        from repro.logic.expr import LVar

        assert spec_arg(0) == LVar("spec_arg_0")
        assert spec_arg(3) == LVar("spec_arg_3")
