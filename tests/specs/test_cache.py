"""Tests for the two-level summary cache and its integrity story
(repro.specs.cache): memory/disk levels, promotion, and corrupt-entry
eviction — a damaged summary is recomputed, reported, and never served.

Mirrors the tests/service/test_store.py corruption suite at the summary
layer: the disk level reuses the same checked-frame machinery.
"""

import glob
import os

from repro.engine.config import EngineConfig
from repro.engine.events import EventBus, SummaryHit, SummaryMiss
from repro.engine.explorer import Explorer
from repro.engine.results import final_sort_key
from repro.gil.syntax import Call, IfGoto, ISym, Proc, Prog, Return
from repro.logic.expr import Lit, PVar
from repro.specs.cache import SummaryCache, clear_summary_cache
from repro.specs.summary import Summary
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import WhileSymbolicMemory

KEY = "a" * 64

SUMMARY = Summary(
    proc="f", tier="pure", params=("a",), paths=(), complete=True, commands=5
)


def prog_of(*procs):
    p = Prog()
    for proc in procs:
        p.add(proc)
    return p


PROG = prog_of(
    Proc("helper", ("a",), (
        IfGoto(PVar("a").lt(Lit(2)), 2),
        Return(PVar("a") * Lit(10)),
        Return(PVar("a") + Lit(1)),
    )),
    Proc("main", (), (
        ISym("x", "s0"),
        Call("r", Lit("helper"), (PVar("x"),)),
        Return(PVar("r")),
    )),
)


def digest(result):
    return sorted(final_sort_key(f) for f in result.finals)


def run(events=None, **overrides):
    cfg = EngineConfig(summaries=True, **overrides)
    sm = SymbolicStateModel(WhileSymbolicMemory())
    return Explorer(PROG, sm, cfg, events=events).run("main")


class TestLevels:
    def test_memory_level_is_process_wide(self):
        SummaryCache().put(KEY, SUMMARY)
        assert SummaryCache().get(KEY) is SUMMARY
        assert SummaryCache().source_of(KEY) == "memory"
        clear_summary_cache()
        assert SummaryCache().get(KEY) is None
        assert SummaryCache().source_of(KEY) == "cold"

    def test_disk_roundtrip_and_promotion(self, tmp_path):
        SummaryCache(str(tmp_path)).put(KEY, SUMMARY)
        clear_summary_cache()
        cache = SummaryCache(str(tmp_path))
        assert cache.source_of(KEY) == "disk"
        loaded = cache.get(KEY)
        assert loaded == SUMMARY
        # The disk hit was promoted into the memory level.
        assert cache.source_of(KEY) == "memory"

    def test_memoryless_cache_misses_after_clear(self):
        SummaryCache().put(KEY, SUMMARY)
        clear_summary_cache()
        assert SummaryCache().get(KEY) is None

    def test_foreign_payload_deleted(self, tmp_path):
        from repro.service.store import SummaryStore

        SummaryStore(str(tmp_path)).put(KEY, {"not": "a summary"})
        cache = SummaryCache(str(tmp_path))
        assert cache.get(KEY) is None
        assert not SummaryStore(str(tmp_path)).contains(KEY)


def _corrupt_entries(root):
    """Flip one byte in every stored summary frame under ``root``."""
    paths = glob.glob(os.path.join(root, "*.bin"))
    assert paths, "expected at least one persisted summary"
    for path in paths:
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0x01
        open(path, "wb").write(bytes(blob))
    return paths


class TestCorruption:
    def test_torn_frame_evicted_and_reported(self, tmp_path):
        seen = []
        cache = SummaryCache(
            str(tmp_path), on_corrupt=lambda k, r: seen.append((k, r))
        )
        cache.put(KEY, SUMMARY)
        clear_summary_cache()
        _corrupt_entries(str(tmp_path))

        assert cache.get(KEY) is None                      # never served
        assert cache.source_of(KEY) == "cold"              # evicted
        assert len(seen) == 1 and seen[0][0] == KEY

    def test_engine_recomputes_after_corruption(self, tmp_path):
        base = digest(run(summary_dir=str(tmp_path)))
        clear_summary_cache()
        _corrupt_entries(str(tmp_path))

        bus = EventBus()
        events = []
        bus.subscribe(events.append, kinds=(SummaryHit, SummaryMiss))
        again = run(events=bus, summary_dir=str(tmp_path))

        # The damaged entry was detected on read, reported as a
        # "corrupt" miss on the bus, and the summary recomputed —
        # results unchanged, nothing served from the torn frame.
        assert digest(again) == base
        reasons = [e.reason for e in events if isinstance(e, SummaryMiss)]
        assert "corrupt" in reasons
        assert not any(isinstance(e, SummaryHit) for e in events)

        # The recompute re-put a valid entry: a third run (cold memory)
        # hits disk.
        clear_summary_cache()
        bus2 = EventBus()
        hits = []
        bus2.subscribe(hits.append, kinds=(SummaryHit,))
        third = run(events=bus2, summary_dir=str(tmp_path))
        assert digest(third) == base
        assert hits and hits[0].source == "disk"

    def test_corruption_counted_on_engine(self, tmp_path):
        run(summary_dir=str(tmp_path))
        clear_summary_cache()
        _corrupt_entries(str(tmp_path))
        cfg = EngineConfig(summaries=True, summary_dir=str(tmp_path))
        sm = SymbolicStateModel(WhileSymbolicMemory())
        explorer = Explorer(PROG, sm, cfg)
        explorer.run("main")
        assert explorer._summaries.counters.corrupt_evictions >= 1
