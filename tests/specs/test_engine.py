"""Tests for the summary engine: replay equivalence across both arms,
counters and events, recursion, incomplete-summary rejection, and the
construction gates (repro.specs.engine)."""

import dataclasses

import pytest

from repro.engine.config import EngineConfig
from repro.engine.events import EventBus, SummaryHit, SummaryMiss, SummaryReplay
from repro.engine.explorer import Explorer
from repro.engine.results import final_sort_key
from repro.gil.syntax import (
    ActionCall,
    Call,
    Fail,
    IfGoto,
    ISym,
    Proc,
    Prog,
    Return,
    USym,
)
from repro.logic.expr import Lit, PVar, lst
from repro.specs.cache import clear_summary_cache
from repro.specs.engine import make_summary_engine
from repro.state.concrete import ConcreteStateModel
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import (
    WhileConcreteMemory,
    WhileSymbolicMemory,
)
from repro.testing.faults import FaultPlan


def prog_of(*procs):
    p = Prog()
    for proc in procs:
        p.add(proc)
    return p


#: pure helper: a < 2 -> a + 1, else a * 10
PURE_HELPER = Proc("helper", ("a",), (
    IfGoto(PVar("a").lt(Lit(2)), 2),
    Return(PVar("a") * Lit(10)),
    Return(PVar("a") + Lit(1)),
))

#: impure helper: allocates an object carrying v, fails when v < 0
HEAP_HELPER = Proc("mk", ("v",), (
    IfGoto(PVar("v").lt(Lit(0)), 4),
    USym("o", "obj"),
    ActionCall("w", "mutate", lst(PVar("o"), "p", PVar("v"))),
    Return(PVar("o")),
    Fail(Lit("neg")),
))


def digest(result):
    return sorted(final_sort_key(f) for f in result.finals)


def run(prog, entry="main", events=None, **overrides):
    clear_summary_cache()
    cfg = EngineConfig(**overrides)
    sm = SymbolicStateModel(WhileSymbolicMemory())
    return Explorer(prog, sm, cfg, events=events).run(entry)


class TestPureTierEquivalence:
    PROG = prog_of(
        PURE_HELPER,
        Proc("main", (), (
            ISym("x", "s0"),
            Call("r1", Lit("helper"), (PVar("x"),)),
            Call("r2", Lit("helper"), (PVar("x") + Lit(1),)),
            Return(PVar("r1") + PVar("r2")),
        )),
    )

    def test_finals_identical_on_vs_off(self):
        base = digest(run(self.PROG, summaries=False))
        assert digest(run(self.PROG, summaries=True)) == base
        assert base  # the program actually branches

    def test_both_arms_agree(self):
        compiled = run(self.PROG, summaries=True, compiled=True)
        interp = run(self.PROG, summaries=True, compiled=False)
        assert digest(compiled) == digest(interp)
        # Both arms engage summaries (not silently inline).
        assert compiled.stats.summary_replays > 0
        assert interp.stats.summary_replays > 0

    def test_second_call_site_hits(self):
        stats = run(self.PROG, summaries=True).stats
        # helper is summarised once (the one cold miss); every later
        # execution of a call — the second site is reached on both of
        # the first replay's surviving paths — hits the cache, since
        # pure keys ignore the arguments.
        assert stats.summary_misses == 1
        assert stats.summary_hits == 2
        assert stats.summary_replays == 3
        assert stats.summary_build_commands > 0
        assert stats.summary_commands_saved > 0

    def test_replay_shrinks_executed_commands(self):
        base = run(self.PROG, summaries=False).stats
        on = run(self.PROG, summaries=True).stats
        # The driver sees one command per replayed call instead of the
        # whole callee descent (the build cost is tracked separately).
        assert on.commands_executed < base.commands_executed


class TestExactTierEquivalence:
    PROG = prog_of(
        HEAP_HELPER,
        PURE_HELPER,
        Proc("main", (), (
            ISym("x", "s0"),
            Call("o1", Lit("mk"), (PVar("x"),)),
            Call("o2", Lit("mk"), (PVar("x"),)),
            Call("y", Lit("helper"), (PVar("x"),)),
            ActionCall("v1", "lookup", lst(PVar("o1"), "p")),
            ActionCall("v2", "lookup", lst(PVar("o2"), "p")),
            Return(PVar("v1") + PVar("v2") + PVar("y")),
        )),
    )

    def test_finals_identical_on_vs_off(self):
        base = digest(run(self.PROG, summaries=False))
        for compiled in (True, False):
            result = run(self.PROG, summaries=True, compiled=compiled)
            assert digest(result) == base
            assert result.stats.summary_replays > 0
        # Error paths (mk fails on negative input) survive replay.
        assert any(kind == "ERROR" for kind, _ in base)

    def test_exact_replay_repeats_across_runs(self):
        # Same pre-state in a fresh run -> the cache (not cleared here)
        # serves the summary without re-summarising.
        clear_summary_cache()
        cfg = EngineConfig(summaries=True)
        first = Explorer(
            self.PROG, SymbolicStateModel(WhileSymbolicMemory()), cfg
        ).run("main")
        second = Explorer(
            self.PROG, SymbolicStateModel(WhileSymbolicMemory()), cfg
        ).run("main")
        assert digest(first) == digest(second)
        assert second.stats.summary_hits > first.stats.summary_hits
        assert second.stats.summary_build_commands == 0


class TestEvents:
    PROG = TestPureTierEquivalence.PROG

    def _collect(self):
        bus = EventBus()
        seen = []
        bus.subscribe(seen.append, kinds=(SummaryHit, SummaryMiss, SummaryReplay))
        run(self.PROG, events=bus, summaries=True)
        return seen

    def test_lifecycle_events_emitted(self):
        seen = self._collect()
        misses = [e for e in seen if isinstance(e, SummaryMiss)]
        hits = [e for e in seen if isinstance(e, SummaryHit)]
        replays = [e for e in seen if isinstance(e, SummaryReplay)]
        assert [m.reason for m in misses] == ["cold"]
        assert len(hits) == 2 and {h.proc for h in hits} == {"helper"}
        assert hits[0].tier == "pure" and hits[0].source == "memory"
        assert len(replays) == 3
        assert all(r.feasible <= r.paths for r in replays)
        assert all(r.commands_saved > 0 for r in replays)


class TestRecursion:
    PROG = prog_of(
        Proc("cd", ("n",), (
            IfGoto(PVar("n").lt(Lit(1)), 3),
            Call("r", Lit("cd"), (PVar("n") - Lit(1),)),
            Return(PVar("r") + Lit(1)),
            Return(Lit(0)),
        )),
        Proc("main", (), (
            Call("r", Lit("cd"), (Lit(3),)),
            Return(PVar("r")),
        )),
    )

    def test_recursive_calls_fall_back_inline(self):
        bus = EventBus()
        misses = []
        bus.subscribe(misses.append, kinds=(SummaryMiss,))
        result = run(self.PROG, events=bus, summaries=True)
        assert digest(result) == digest(run(self.PROG, summaries=False))
        # The outer cd(3) is a cold miss; the nested cd(2..0) calls hit
        # the in-progress guard instead of recursing the summariser.
        assert "recursive" in {m.reason for m in misses}


class TestIncompleteSummaries:
    #: helper whose summarisation run cannot finish under a tiny budget
    PROG = prog_of(
        Proc("wide", ("a",), (
            ISym("u", "w0"),
            IfGoto(PVar("u").lt(PVar("a")), 3),
            Return(PVar("a")),
            Return(PVar("u")),
        )),
        Proc("main", (), (
            ISym("x", "s0"),
            Call("r", Lit("wide"), (PVar("x"),)),
            Call("s", Lit("wide"), (PVar("x") + Lit(1),)),
            Return(PVar("r") + PVar("s")),
        )),
    )

    def test_verify_mode_refuses_and_inlines(self):
        base = digest(run(self.PROG, summaries=False))
        bus = EventBus()
        misses = []
        bus.subscribe(misses.append, kinds=(SummaryMiss,))
        result = run(
            self.PROG, events=bus, summaries=True, summary_max_commands=2
        )
        # The cut summary is never replayed; inline descent preserves
        # the exact path set.
        assert digest(result) == base
        assert result.stats.summary_replays == 0
        reasons = {m.reason for m in misses}
        assert "cold" in reasons
        # The cached incomplete record answers later call sites as an
        # explicit "incomplete" miss (negative cache), not a re-build.
        assert "incomplete" in reasons


class TestConstructionGates:
    def test_requires_stock_symbolic_model(self):
        prog = prog_of(Proc("main", (), (Return(Lit(1)),)))
        cfg = EngineConfig(summaries=True)
        concrete = ConcreteStateModel(WhileConcreteMemory())
        assert make_summary_engine(prog, concrete, cfg) is None

        class Custom(SymbolicStateModel):
            """A subclass (may override proper actions): not covered."""

        custom = Custom(WhileSymbolicMemory())
        assert make_summary_engine(prog, custom, cfg) is None
        assert (
            make_summary_engine(
                prog, SymbolicStateModel(WhileSymbolicMemory()), cfg
            )
            is not None
        )

    def test_fault_injection_disables_summaries(self):
        prog = prog_of(Proc("main", (), (Return(Lit(1)),)))
        plan = FaultPlan.random(0, workers=1, max_step=3, kinds=("action",))
        cfg = EngineConfig(summaries=True, fault_plan=plan)
        explorer = Explorer(prog, SymbolicStateModel(WhileSymbolicMemory()), cfg)
        if explorer.faults is not None:
            assert explorer._summaries is None
        cfg = EngineConfig(summaries=True)
        explorer = Explorer(prog, SymbolicStateModel(WhileSymbolicMemory()), cfg)
        assert explorer._summaries is not None

    def test_summaries_off_by_default(self):
        prog = prog_of(Proc("main", (), (Return(Lit(1)),)))
        explorer = Explorer(prog, SymbolicStateModel(WhileSymbolicMemory()))
        assert explorer._summaries is None

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(summary_mode="sideways")
        with pytest.raises(ValueError):
            EngineConfig(summary_max_paths=0)


class TestDynamicCallees:
    def test_dynamic_callee_resolved_and_served(self):
        from repro.gil.syntax import Assignment

        prog = prog_of(
            PURE_HELPER,
            Proc("main", (), (
                ISym("x", "s0"),
                # The callee is a run-time value; the engine evaluates
                # it to the Lit name and still serves the call.
                Assignment("n", Lit("helper")),
                Call("r", PVar("n"), (PVar("x"),)),
                Return(PVar("r")),
            )),
        )
        base = digest(run(prog, summaries=False))
        result = run(prog, summaries=True)
        assert digest(result) == base
        assert result.stats.summary_replays > 0

    def test_unknown_proc_and_arity_fall_back(self):
        prog = prog_of(
            PURE_HELPER,
            Proc("main", (), (
                Call("a", Lit("missing"), ()),
                Return(PVar("a")),
            )),
        )
        base = digest(run(prog, summaries=False))
        assert digest(run(prog, summaries=True)) == base  # ERROR final

        arity = prog_of(
            PURE_HELPER,
            Proc("main", (), (
                Call("a", Lit("helper"), (Lit(1), Lit(2), Lit(3))),
                Return(PVar("a")),
            )),
        )
        base = digest(run(arity, summaries=False))
        assert digest(run(arity, summaries=True)) == base
