"""Tests for the incorrectness arm (repro.specs.incorrectness): partial
summaries drop paths but never widen, and every reported bug is
confirmed true-positive by concrete counter-model replay."""

from repro.engine.config import EngineConfig
from repro.engine.explorer import Explorer
from repro.engine.results import final_sort_key
from repro.gil.syntax import Call, Fail, IfGoto, ISym, Proc, Prog, Return
from repro.logic.expr import Lit, PVar
from repro.specs import find_bugs
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang import WhileLanguage
from repro.targets.while_lang.memory import WhileSymbolicMemory

LANG = WhileLanguage()


def prog_of(*procs):
    p = Prog()
    for proc in procs:
        p.add(proc)
    return p


BUGGY = prog_of(
    Proc("check", ("a",), (
        IfGoto(PVar("a").lt(Lit(0)), 2),
        Return(Lit(True)),
        Fail(Lit("negative input")),
    )),
    Proc("main", (), (
        ISym("x", "s0"),
        Call("ok", Lit("check"), (PVar("x"),)),
        Return(PVar("ok")),
    )),
)

CLEAN = prog_of(
    Proc("inc", ("a",), (Return(PVar("a") + Lit(1)),)),
    Proc("main", (), (
        ISym("x", "s0"),
        Call("r", Lit("inc"), (PVar("x"),)),
        Return(PVar("r")),
    )),
)


def digest(result):
    return sorted(final_sort_key(f) for f in result.finals)


class TestFindBugs:
    def test_reported_bug_is_confirmed(self):
        report = find_bugs(LANG, BUGGY, "main")
        assert len(report.bugs) == 1
        bug = report.bugs[0]
        assert bug.confirmed
        assert bug.model is not None
        assert report.all_confirmed
        assert report.confirmed == [bug]
        # The counter-model really triggers the failure condition.
        assert any(v < 0 for v in bug.model.values())

    def test_clean_program_reports_nothing(self):
        report = find_bugs(LANG, CLEAN, "main")
        assert report.bugs == []
        assert report.all_confirmed  # vacuously

    def test_summaries_were_engaged(self):
        report = find_bugs(LANG, BUGGY, "main")
        assert report.stats is not None
        assert report.stats.summary_replays > 0


class TestPartialSummaries:
    #: ``wide`` fans out over its own fresh input; a tiny path budget
    #: cuts its summarisation, leaving a partial summary
    PROG = prog_of(
        Proc("wide", ("a",), (
            ISym("u", "w0"),
            IfGoto(PVar("u").lt(PVar("a")), 3),
            Fail(Lit("wide-bug")),
            Return(PVar("u")),
        )),
        Proc("main", (), (
            ISym("x", "s0"),
            Call("r", Lit("wide"), (PVar("x"),)),
            Return(PVar("r")),
        )),
    )

    def _run(self, mode, **overrides):
        from repro.specs.cache import clear_summary_cache

        clear_summary_cache()
        cfg = EngineConfig(summaries=True, summary_mode=mode, **overrides)
        sm = SymbolicStateModel(WhileSymbolicMemory())
        return Explorer(self.PROG, sm, cfg, events=None).run("main")

    def test_incorrectness_replays_partial_verify_does_not(self):
        # Budget chosen so the wide summarisation is cut mid-way.
        verify = self._run("verify", summary_max_paths=1)
        incor = self._run("incorrectness", summary_max_paths=1)
        assert verify.stats.summary_replays == 0  # refused, ran inline
        assert incor.stats.summary_replays > 0    # partial replayed

    def test_partial_replay_never_widens(self):
        base = digest(self._run("verify"))  # full budget = inline-equal
        partial = digest(self._run("incorrectness", summary_max_paths=1))
        # Every final the under-approximate run reports is a final of
        # the full run (paths dropped, none invented).
        remaining = list(base)
        for entry in partial:
            assert entry in remaining, (entry, base)
            remaining.remove(entry)
        assert len(partial) < len(base)

    def test_partial_bug_reports_stay_true_positive(self):
        report = find_bugs(
            LANG, self.PROG, "main",
            config=EngineConfig(summary_max_paths=1),
        )
        assert report.all_confirmed
