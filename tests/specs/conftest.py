"""Shared fixtures: every specs test starts from a cold summary cache."""

import pytest

from repro.specs.cache import clear_summary_cache


@pytest.fixture(autouse=True)
def _cold_summary_cache():
    """The in-memory summary cache is process-wide; isolate each test."""
    clear_summary_cache()
    yield
    clear_summary_cache()
