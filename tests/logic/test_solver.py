"""Tests for the first-order solver (repro.logic.solver)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gil.ops import evaluate
from repro.gil.values import GilType, Symbol
from repro.logic.expr import FALSE, TRUE, Lit, LVar, UnOp, UnOpExpr, lst
from repro.logic.pathcond import PathCondition
from repro.logic.simplify import Simplifier
from repro.logic.solver import SatResult, Solver

x, y, z = LVar("x"), LVar("y"), LVar("z")


def fresh_solver(**kw):
    return Solver(**kw)


class TestBasicSat:
    def test_empty_is_sat(self):
        assert fresh_solver().check([]) is SatResult.SAT

    def test_true_is_sat(self):
        assert fresh_solver().check([TRUE]) is SatResult.SAT

    def test_false_is_unsat(self):
        assert fresh_solver().check([FALSE]) is SatResult.UNSAT

    def test_simple_bounds(self):
        s = fresh_solver()
        assert s.check([Lit(0).leq(x), x.lt(Lit(3))]) is SatResult.SAT

    def test_contradictory_bounds(self):
        s = fresh_solver()
        assert s.check([Lit(3).lt(x), x.lt(Lit(2))]) is SatResult.UNSAT

    def test_point_interval_strict(self):
        s = fresh_solver()
        assert s.check([x.eq(Lit(5)), x.lt(Lit(5))]) is SatResult.UNSAT

    def test_difference_cycle(self):
        assert fresh_solver().check([x.lt(y), y.lt(x)]) is SatResult.UNSAT

    def test_three_way_cycle(self):
        s = fresh_solver()
        assert s.check([x.lt(y), y.leq(z), z.lt(x)]) is SatResult.UNSAT

    def test_nonstrict_cycle_is_sat(self):
        s = fresh_solver()
        assert s.check([x.leq(y), y.leq(x)]) is SatResult.SAT

    def test_equality_propagates(self):
        s = fresh_solver()
        assert s.check([x.eq(y), y.eq(Lit(5)), x.lt(Lit(5))]) is SatResult.UNSAT

    def test_transitive_equalities(self):
        s = fresh_solver()
        assert s.check([x.eq(y), y.eq(z), x.neq(z)]) is SatResult.UNSAT


class TestSymbols:
    def test_distinct_symbols_unequal(self):
        s = fresh_solver()
        pc = [x.eq(Lit(Symbol("a"))), x.eq(Lit(Symbol("b")))]
        assert s.check(pc) is SatResult.UNSAT

    def test_symbol_disequality_sat(self):
        s = fresh_solver()
        pc = [x.eq(Lit(Symbol("a"))), x.neq(Lit(Symbol("b")))]
        assert s.check(pc) is SatResult.SAT

    def test_symbol_model(self):
        s = fresh_solver()
        model = s.get_model([x.neq(Lit(Symbol("a")))])
        assert model is not None


class TestStringsAndLists:
    def test_string_equality(self):
        s = fresh_solver()
        model = s.get_model([x.eq(Lit("hello"))])
        assert model == {"x": "hello"}

    def test_string_disequality(self):
        s = fresh_solver()
        model = s.get_model([x.typeof().eq(Lit(GilType.STRING)), x.neq(Lit(""))])
        assert model is not None and model["x"] != ""

    def test_strlen_constraint(self):
        s = fresh_solver()
        pc = [UnOpExpr(UnOp.STRLEN, x).lt(Lit(0))]
        assert s.check(pc) is SatResult.UNSAT

    def test_list_equality_model(self):
        s = fresh_solver()
        model = s.get_model([x.eq(lst(1, 2))])
        assert model == {"x": (1, 2)}


class TestBooleanStructure:
    def test_disjunction_both_branches(self):
        s = fresh_solver()
        pc = [x.eq(Lit(1)).or_(x.eq(Lit(2))), x.neq(Lit(1))]
        model = s.get_model(pc)
        assert model == {"x": 2}

    def test_nested_negation(self):
        s = fresh_solver()
        pc = [x.eq(Lit(1)).or_(x.eq(Lit(2))).not_()]
        model = s.get_model(pc)
        assert model is not None and model["x"] not in (1, 2)

    def test_negated_conjunction(self):
        s = fresh_solver()
        pc = [(x.eq(Lit(1)).and_(y.eq(Lit(2)))).not_(), x.eq(Lit(1))]
        model = s.get_model(pc)
        assert model is not None and model["y"] != 2

    def test_boolean_variable_atom(self):
        s = fresh_solver()
        model = s.get_model([x, x.typeof().eq(Lit(GilType.BOOLEAN))])
        assert model is not None and model["x"] is True

    def test_unsat_disjunction(self):
        s = fresh_solver()
        pc = [x.eq(Lit(1)).or_(x.eq(Lit(2))), x.neq(Lit(1)), x.neq(Lit(2))]
        assert s.check(pc) is SatResult.UNSAT


class TestTypeConflicts:
    def test_type_conflict_unsat(self):
        # x used both as a number and as a string.
        pc = [x.lt(Lit(3)), x.eq(Lit("s"))]
        assert fresh_solver().check(pc) is SatResult.UNSAT

    def test_typeof_constraint_model(self):
        s = fresh_solver()
        model = s.get_model([x.typeof().eq(Lit(GilType.NUMBER)), Lit(5).lt(x)])
        assert model is not None and model["x"] > 5


class TestEntailment:
    def test_entails_weaker_bound(self):
        s = fresh_solver()
        assert s.entails([x.eq(Lit(3))], x.lt(Lit(4)))

    def test_does_not_entail(self):
        s = fresh_solver()
        assert not s.entails([x.lt(Lit(3))], x.lt(Lit(2)))

    def test_entails_from_equalities(self):
        s = fresh_solver()
        assert s.entails([x.eq(y), y.eq(Lit(1))], x.eq(Lit(1)))


class TestModelsAreVerified:
    def test_model_satisfies_all_conjuncts(self):
        s = fresh_solver()
        pc = [Lit(0).leq(x), x.lt(y), y.leq(Lit(4)), x.neq(Lit(1))]
        model = s.get_model(pc)
        assert model is not None
        for c in pc:
            assert evaluate(c, lvar_env=model) is True

    def test_arith_combination(self):
        s = fresh_solver()
        pc = [(x + y).eq(Lit(10)), x.lt(y), Lit(0).leq(x)]
        model = s.get_model(pc)
        assert model is not None
        assert model["x"] + model["y"] == 10 and model["x"] < model["y"]


class TestCaching:
    def test_cache_hits_counted(self):
        s = fresh_solver(cache_enabled=True)
        pc = [x.lt(Lit(3))]
        s.check(pc)
        s.check(pc)
        assert s.stats.cache_hits >= 1

    def test_cache_disabled(self):
        s = fresh_solver(cache_enabled=False)
        pc = [x.lt(Lit(3))]
        s.check(pc)
        s.check(pc)
        assert s.stats.cache_hits == 0

    def test_model_request_after_plain_check(self):
        s = fresh_solver(cache_enabled=True)
        pc = [x.lt(Lit(3))]
        assert s.check(pc) is SatResult.SAT
        assert s.get_model(pc) is not None


class TestPathCondition:
    def test_conjoin_flattens_and_dedupes(self):
        pc = PathCondition.of(x.lt(y))
        pc2 = pc.conjoin(x.lt(y).and_(y.lt(z)))
        assert len(pc2) == 2

    def test_extend_is_restriction(self):
        pc1 = PathCondition.of(x.lt(y))
        pc2 = PathCondition.of(y.lt(z))
        merged = pc1.extend(pc2)
        assert set(merged.conjuncts) == {x.lt(y), y.lt(z)}

    def test_implies_syntactically(self):
        pc1 = PathCondition.of(x.lt(y), y.lt(z))
        pc2 = PathCondition.of(x.lt(y))
        assert pc1.implies_syntactically(pc2)
        assert not pc2.implies_syntactically(pc1)


# -- property-based: solver soundness ------------------------------------------

_num_atoms = st.one_of(
    st.integers(-5, 5).map(Lit), st.sampled_from([LVar("x"), LVar("y")])
)


@st.composite
def _constraints(draw):
    n = draw(st.integers(1, 4))
    out = []
    for _ in range(n):
        a = draw(_num_atoms)
        b = draw(_num_atoms)
        kind = draw(st.sampled_from(["lt", "leq", "eq", "neq"]))
        out.append(getattr(a, kind)(b))
    return out


@given(pc=_constraints())
@settings(max_examples=200, deadline=None)
def test_sat_models_verify_and_unsat_has_no_small_model(pc):
    s = Solver()
    result, = (s.check(pc),)
    if result is SatResult.SAT:
        model = s.get_model(pc)
        assert model is not None
        for c in pc:
            assert evaluate(c, lvar_env=model) is True
    elif result is SatResult.UNSAT:
        # Exhaustive small-domain refutation: no assignment in [-6, 6]².
        for xv in range(-6, 7):
            for yv in range(-6, 7):
                env = {"x": xv, "y": yv}
                if all(evaluate(c, lvar_env=env) is True for c in pc):
                    raise AssertionError(f"UNSAT but model {env} satisfies {pc}")
