"""Solver regression corpus.

Every case here once returned the wrong (or an unnecessarily weak) answer
during development; each is pinned with the mechanism that now decides it.
"""

import pytest

from repro.gil.values import GilType, Symbol
from repro.logic.expr import (
    BinOp,
    BinOpExpr,
    Lit,
    LVar,
    UnOp,
    UnOpExpr,
    lst,
)
from repro.logic.solver import SatResult, Solver

x, y, z = LVar("x"), LVar("y"), LVar("z")
i = LVar("i")


def _int(v):
    return UnOpExpr(UnOp.FLOOR, v).eq(v)


class TestStrictBounds:
    """Strict endpoints: point interval + strict inequality."""

    def test_eq_and_strict_lt(self):
        assert Solver().check([x.eq(Lit(5)), x.lt(Lit(5))]) is SatResult.UNSAT

    def test_propagated_point_and_strict(self):
        pc = [x.eq(y), y.eq(Lit(5)), x.lt(Lit(5))]
        assert Solver().check(pc) is SatResult.UNSAT


class TestDifferenceCycles:
    """x < y < x style cycles (Bellman/Floyd over difference constraints)."""

    def test_two_cycle(self):
        assert Solver().check([x.lt(y), y.lt(x)]) is SatResult.UNSAT

    def test_three_cycle_with_leq(self):
        assert Solver().check([x.lt(y), y.leq(z), z.lt(x)]) is SatResult.UNSAT

    def test_antisymmetry_with_diseq(self):
        # x ≤ y ∧ y ≤ x forces x = y; a disequality then contradicts.
        pc = [x.leq(y), y.leq(x), x.neq(y)]
        assert Solver().check(pc) is SatResult.UNSAT

    def test_antisymmetry_with_offset(self):
        pc = [x.leq(y + 3), (y + 3).leq(x), x.neq(y + 3)]
        assert Solver().check(pc) is SatResult.UNSAT


class TestIntegrality:
    """floor(x) = x marks integrality; bounds round inward."""

    def test_open_unit_interval_empty_for_ints(self):
        pc = [_int(x), Lit(0).lt(x), x.lt(Lit(1))]
        assert Solver().check(pc) is SatResult.UNSAT

    def test_domain_exhaustion(self):
        pc = [_int(x), Lit(0).leq(x), x.leq(Lit(1)), x.neq(Lit(0)), x.neq(Lit(1))]
        assert Solver().check(pc) is SatResult.UNSAT

    def test_real_valued_stays_sat(self):
        # Without integrality, 0 < x < 1 has models.
        pc = [Lit(0).lt(x), x.lt(Lit(1))]
        model = Solver().get_model(pc)
        assert model is not None and 0 < model["x"] < 1


class TestModQuotientRelation:
    """m = x - n·⌊x/n⌋ links remainders to their operands."""

    def _mod(self, e, n):
        return BinOpExpr(BinOp.MOD, e, Lit(n))

    def test_mod_determined_by_small_range(self):
        pc = [_int(i), Lit(0).leq(i), i.lt(Lit(3)), (self._mod(i, 4) * 4).eq(Lit(12))]
        assert Solver().check(pc) is SatResult.UNSAT

    def test_mod_domain_exhaustion(self):
        pc = [_int(i), Lit(0).leq(i), i.lt(Lit(3))]
        pc += [(self._mod(i, 4) * 4).neq(Lit(k)) for k in (0, 4, 8, 12)]
        assert Solver().check(pc) is SatResult.UNSAT

    def test_mod_model_found(self):
        pc = [_int(i), Lit(0).leq(i), i.lt(Lit(4)), self._mod(i, 4).eq(Lit(2))]
        model = Solver().get_model(pc)
        assert model == {"i": 2}


class TestFourierMotzkin:
    """Cross-constraint bounds (x = 2y ∧ x - y > 10 ⟹ y > 10)."""

    def test_dart_equation(self):
        model = Solver().get_model([x.eq(y * 2), Lit(10).lt(x - y)])
        assert model is not None
        assert model["x"] == 2 * model["y"] and model["x"] - model["y"] > 10

    def test_sum_and_difference(self):
        model = Solver().get_model([(x + y).eq(Lit(10)), (x - y).eq(Lit(4))])
        assert model == {"x": 7, "y": 3}

    def test_derived_contradiction(self):
        # x = 2y ∧ x < y ∧ y > 0: eliminating x yields y < 0.
        pc = [x.eq(y * 2), x.lt(y), Lit(0).lt(y)]
        assert Solver().check(pc) is SatResult.UNSAT


class TestTypeAwareness:
    """0/False and 1/True must never be conflated."""

    def test_bool_number_literals_distinct(self):
        assert Solver().check([Lit(0).eq(Lit(False))]) is SatResult.UNSAT
        assert Solver().check([Lit(1).eq(Lit(True))]) is SatResult.UNSAT

    def test_typeof_folds_on_compound(self):
        # typeof(#n + 1) is statically Num: the Str branch must die.
        pc = [(x + 1).typeof().eq(Lit(GilType.STRING))]
        assert Solver().check(pc) is SatResult.UNSAT


class TestStringPrefix:
    """Dictionary-style '$'-prefixed keys (Buckets.js idiom)."""

    def test_prefix_cancellation(self):
        a, b = LVar("a"), LVar("b")
        prefix = BinOpExpr(BinOp.SCONCAT, Lit("$"), a)
        other = BinOpExpr(BinOp.SCONCAT, Lit("$"), b)
        model = Solver().get_model([prefix.eq(other), a.neq(Lit(""))])
        assert model is not None and model["a"] == model["b"]

    def test_prefix_vs_literal(self):
        a = LVar("a")
        prefix = BinOpExpr(BinOp.SCONCAT, Lit("$"), a)
        model = Solver().get_model([prefix.eq(Lit("$secret"))])
        assert model == {"a": "secret"}

    def test_prefix_mismatch_unsat(self):
        a = LVar("a")
        prefix = BinOpExpr(BinOp.SCONCAT, Lit("$"), a)
        assert Solver().check([prefix.eq(Lit("nope"))]) is SatResult.UNSAT


class TestLengthReasoning:
    def test_strlen_concat_distributes(self):
        s = LVar("s")
        t = BinOpExpr(BinOp.SCONCAT, s, Lit("!"))
        pc = [
            UnOpExpr(UnOp.STRLEN, t).neq(UnOpExpr(UnOp.STRLEN, s) + 1)
        ]
        assert Solver().check(pc) is SatResult.UNSAT

    def test_lengths_nonnegative(self):
        s = LVar("s")
        assert Solver().check([UnOpExpr(UnOp.STRLEN, s).lt(Lit(0))]) is SatResult.UNSAT
        assert Solver().check([UnOpExpr(UnOp.LSTLEN, s).lt(Lit(0))]) is SatResult.UNSAT


class TestModelCompletion:
    """Variables eliminated by simplification still get model values."""

    def test_tautology_var_gets_default(self):
        model = Solver().get_model([x.leq(x)])
        assert model is not None and "x" in model

    def test_mixed_eliminated_and_constrained(self):
        model = Solver().get_model([x.leq(x), y.eq(Lit(3))])
        assert model is not None and model["y"] == 3 and "x" in model
