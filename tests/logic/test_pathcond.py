"""Tests for persistent prefix-chain path conditions (repro.logic.pathcond).

The prefix-chain representation changed ``PathCondition``'s internals
(shared trails, O(new) conjoin) — these tests pin the *observable*
semantics: ordered deduplicated conjuncts, structural equality/hashing,
flattening of nested conjunctions, and independence of sibling branches.
"""

import pickle

from repro.logic.expr import TRUE, Lit, LVar, conj
from repro.logic.pathcond import PathCondition

x, y, z = LVar("x"), LVar("y"), LVar("z")
a = x.lt(Lit(1))
b = y.lt(Lit(2))
c = z.lt(Lit(3))


class TestDedupSemantics:
    """Regression: conjoin dedup semantics are unchanged by the rewrite."""

    def test_conjoin_skips_duplicate(self):
        pc = PathCondition.of(a, b)
        assert pc.conjoin(a) is pc
        assert pc.conjuncts == (a, b)

    def test_conjoin_all_dedups_within_batch(self):
        pc = PathCondition.true().conjoin_all([a, b, a, b, c, a])
        assert pc.conjuncts == (a, b, c)

    def test_conjoin_all_dedups_against_prefix(self):
        pc = PathCondition.of(a, b).conjoin_all([b, c, a])
        assert pc.conjuncts == (a, b, c)

    def test_duplicate_deep_in_chain(self):
        # The duplicate sits several extensions back; membership must see
        # the whole prefix, not just the immediate parent's delta.
        pc = PathCondition.of(a).conjoin(b).conjoin(c)
        assert pc.conjoin(a) is pc

    def test_constructor_dedups(self):
        assert PathCondition((a, b, a)).conjuncts == (a, b)

    def test_nested_conjunction_flattened(self):
        pc = PathCondition.true().conjoin(conj(a, conj(b, c)))
        assert pc.conjuncts == (a, b, c)

    def test_true_conjunct_dropped(self):
        pc = PathCondition.true().conjoin(conj(a, TRUE))
        assert pc.conjuncts == (a,)
        assert PathCondition.true().conjoin(TRUE) is PathCondition.true()

    def test_order_preserved(self):
        pc = PathCondition.of(c, a, b)
        assert pc.conjuncts == (c, a, b)


class TestChainStructure:
    def test_parent_and_added(self):
        root = PathCondition.true()
        child = root.conjoin(a)
        grandchild = child.conjoin_all([b, c])
        assert child.parent is root and child.added == (a,)
        assert grandchild.parent is child and grandchild.added == (b, c)
        assert grandchild.conjuncts == (a, b, c)

    def test_sibling_branches_independent(self):
        # Both children extend the same parent (the second forks the trail);
        # neither sees the other's conjuncts and the parent is unchanged.
        parent = PathCondition.of(a)
        left = parent.conjoin(b)
        right = parent.conjoin(c)
        assert left.conjuncts == (a, b)
        assert right.conjuncts == (a, c)
        assert parent.conjuncts == (a,)
        assert b not in right and c not in left

    def test_true_is_shared_singleton(self):
        assert PathCondition.true() is PathCondition.true()
        PathCondition.true().conjoin(a)  # must not mutate the singleton
        assert len(PathCondition.true()) == 0
        assert a not in PathCondition.true()

    def test_uids_are_distinct(self):
        pc1, pc2 = PathCondition.of(a), PathCondition.of(a)
        assert pc1.uid != pc2.uid


class TestPublicSurface:
    def test_equality_is_structural(self):
        chain = PathCondition.true().conjoin(a).conjoin(b)
        flat = PathCondition((a, b))
        assert chain == flat
        assert hash(chain) == hash(flat)
        assert chain != PathCondition((b, a))

    def test_membership_and_iter(self):
        pc = PathCondition.of(a, b)
        assert a in pc and b in pc and c not in pc
        assert list(pc) == [a, b]
        assert len(pc) == 2

    def test_extend_is_restriction(self):
        pc = PathCondition.of(a).extend(PathCondition.of(b, a))
        assert pc.conjuncts == (a, b)

    def test_implies_syntactically(self):
        big, small = PathCondition.of(a, b, c), PathCondition.of(c, a)
        assert big.implies_syntactically(small)
        assert not small.implies_syntactically(big)

    def test_pickle_roundtrip(self):
        pc = PathCondition.of(a).conjoin(b)
        back = pickle.loads(pickle.dumps(pc))
        assert back == pc and back.conjuncts == (a, b)

    def test_immutable(self):
        import pytest

        with pytest.raises(AttributeError):
            PathCondition.of(a).uid = 7
