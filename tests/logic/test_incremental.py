"""Tests for the incremental path-condition solving layer.

The incremental layer (per-prefix :class:`SolverContext`, delta-only
normalisation, parent-model reuse, prefix/permutation caching) must be a
pure performance optimisation: every verdict it produces must agree with
the monolithic from-scratch solve.  The only permitted divergence is
precision *gain* — the model-reuse fast path may answer SAT (with a
verified witness) where the bounded monolithic search gives up with
UNKNOWN.  It must never flip SAT/UNSAT, and never answer UNSAT unless the
monolithic solve does.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gil.ops import evaluate
from repro.logic.expr import FALSE, Lit, LVar
from repro.logic.pathcond import PathCondition
from repro.logic.simplify import Simplifier
from repro.logic.solver import SatResult, Solver

x, y, z = LVar("x"), LVar("y"), LVar("z")


def chain_of(conjuncts):
    """Build a path condition one conjoin at a time (a prefix chain)."""
    pc = PathCondition.true()
    for c in conjuncts:
        pc = pc.conjoin(c)
    return pc


class TestPrefixCaching:
    def test_same_query_twice_hits_context(self):
        s = Solver()
        pc = chain_of([Lit(0).leq(x), x.lt(Lit(5))])
        assert s.check(pc) is SatResult.SAT
        before = s.stats.prefix_hits
        assert s.check(pc) is SatResult.SAT
        assert s.stats.prefix_hits == before + 1

    def test_sibling_shares_solved_prefix(self):
        s = Solver()
        parent = chain_of([Lit(0).leq(x), x.lt(Lit(10))])
        assert s.check(parent) is SatResult.SAT
        solves = s.stats.incremental_solves + s.stats.monolithic_solves
        # Two children of the same parent: each solves only its delta.
        assert s.check(parent.conjoin(x.lt(Lit(5)))) is SatResult.SAT
        assert s.check(parent.conjoin(Lit(5).leq(x))) is SatResult.SAT
        new_solves = (
            s.stats.incremental_solves + s.stats.monolithic_solves - solves
        )
        assert new_solves <= 2  # never re-solved the shared prefix

    def test_same_delta_from_same_parent_cached(self):
        s = Solver()
        parent = chain_of([Lit(0).leq(x)])
        assert s.check(parent) is SatResult.SAT
        delta = x.lt(Lit(3))
        # Two *distinct* child nodes with the same (parent, delta): the
        # second is answered from the (parent uid, added) prefix cache.
        c1, c2 = parent.conjoin(delta), parent.conjoin(delta)
        assert c1 is not c2
        assert s.check(c1) is SatResult.SAT
        before = s.stats.prefix_hits
        assert s.check(c2) is SatResult.SAT
        assert s.stats.prefix_hits == before + 1

    def test_normalized_delta_hits_across_syntactic_forms(self):
        # The exact-delta cache keys on the delta *after* simplification,
        # so the same extension phrased differently — here a conjunct vs
        # its double negation, a divergence the PathCondition layer's
        # flatten/dedup does *not* resolve — is answered from cache
        # instead of re-solved.
        s = Solver()
        parent = chain_of([Lit(0).leq(x)])
        assert s.check(parent) is SatResult.SAT
        a, b = x.lt(Lit(7)), y.eq(x)
        assert s.check(parent.conjoin_all((a, b))) is SatResult.SAT
        before = s.stats.cache_hits
        solves = s.stats.incremental_solves + s.stats.monolithic_solves
        # added=(¬¬a, b) raw-misses the (parent, added) prefix cache
        # (the first child's key was added=(a, b)) but simplifies to the
        # same normalized delta tuple.
        assert s.check(parent.conjoin_all((a.not_().not_(), b))) is SatResult.SAT
        assert s.stats.cache_hits == before + 1
        assert s.stats.incremental_solves + s.stats.monolithic_solves == solves

    def test_normalized_delta_unsat_hit(self):
        s = Solver()
        parent = chain_of([Lit(0).leq(x)])
        assert s.check(parent) is SatResult.SAT
        a, b = x.lt(Lit(3)), Lit(5).lt(x)
        assert s.check(parent.conjoin_all((a, b))) is SatResult.UNSAT
        before = s.stats.cache_hits
        assert s.check(parent.conjoin_all((a.not_().not_(), b))) is SatResult.UNSAT
        assert s.stats.cache_hits == before + 1

    def test_permutations_hit_same_frozenset_entry(self):
        s = Solver()
        conjuncts = [Lit(0).leq(x), x.lt(y), y.lt(Lit(9))]
        assert s.check(chain_of(conjuncts)) is SatResult.SAT
        before = s.stats.cache_hits
        # A structurally different chain over the same conjunct *set* lands
        # on the same order-insensitive frozenset cache entry.
        assert s.check(chain_of(reversed(conjuncts))) is SatResult.SAT
        assert s.stats.cache_hits == before + 1

    def test_unsat_inherited_by_children(self):
        s = Solver()
        pc = chain_of([x.lt(Lit(0)), Lit(0).lt(x)])
        assert s.check(pc) is SatResult.UNSAT
        before = s.stats.unsat_inherited
        child = pc.conjoin(y.eq(Lit(1)))
        assert s.check(child) is SatResult.UNSAT
        assert s.stats.unsat_inherited == before + 1

    def test_false_delta_is_unsat(self):
        s = Solver()
        pc = chain_of([Lit(0).leq(x)])
        assert s.check(pc) is SatResult.SAT
        assert s.check(pc.conjoin(FALSE)) is SatResult.UNSAT

    def test_get_model_from_context(self):
        s = Solver()
        pc = chain_of([Lit(3).lt(x), x.lt(Lit(6)), y.eq(x)])
        model = s.get_model(pc)
        assert model is not None
        for c in pc:
            assert evaluate(c, lvar_env=model) is True


_atoms = st.one_of(
    st.integers(-4, 4).map(Lit),
    st.sampled_from([LVar("x"), LVar("y"), LVar("z")]),
)


@st.composite
def _constraints(draw):
    out = []
    for _ in range(draw(st.integers(1, 6))):
        a, b = draw(_atoms), draw(_atoms)
        kind = draw(st.sampled_from(["lt", "leq", "eq", "neq"]))
        c = getattr(a, kind)(b)
        if draw(st.booleans()):
            d = getattr(draw(_atoms), draw(st.sampled_from(["lt", "eq"])))(
                draw(_atoms)
            )
            c = c.or_(d)
        out.append(c)
    return out


def _fresh_pair():
    incremental = Solver(incremental=True)
    monolithic = Solver(
        simplifier=Simplifier(memoise=False),
        cache_enabled=False,
        incremental=False,
    )
    return incremental, monolithic


def _assert_agreement(r_inc, r_mono, conjuncts):
    if r_inc is not r_mono:
        # Precision gain only: a verified model where the bounded
        # monolithic search returned UNKNOWN.
        assert r_inc is SatResult.SAT and r_mono is SatResult.UNKNOWN, (
            r_inc,
            r_mono,
            conjuncts,
        )


@given(conjuncts=_constraints(), seed=st.integers(0, 2**16))
@settings(max_examples=150, deadline=None)
def test_incremental_agrees_with_monolithic(conjuncts, seed):
    """Randomised conjunct sequences: grow a chain one conjunct at a time
    (in a random order) and compare every intermediate verdict against a
    from-scratch monolithic solve of the same conjunction."""
    order = list(conjuncts)
    random.Random(seed).shuffle(order)
    incremental, monolithic = _fresh_pair()
    pc = PathCondition.true()
    for c in order:
        pc = pc.conjoin(c)
        r_inc = incremental.check(pc)
        r_mono = monolithic.check(list(pc.conjuncts))
        _assert_agreement(r_inc, r_mono, pc.conjuncts)
        model = incremental.get_model(pc)
        if model is not None:
            for conjunct in pc.conjuncts:
                assert evaluate(conjunct, lvar_env=model) is True


@given(conjuncts=_constraints())
@settings(max_examples=100, deadline=None)
def test_branching_chains_agree(conjuncts):
    """Sibling extensions of a shared prefix (the explorer's workload):
    each branch point queries both children; verdicts must match the
    monolithic solve for every node of the tree."""
    incremental, monolithic = _fresh_pair()
    mid = len(conjuncts) // 2
    parent = chain_of(conjuncts[:mid])
    incremental.check(parent)
    for tail in (conjuncts[mid:], list(reversed(conjuncts[mid:]))):
        pc = parent
        for c in tail:
            pc = pc.conjoin(c)
            _assert_agreement(
                incremental.check(pc),
                monolithic.check(list(pc.conjuncts)),
                pc.conjuncts,
            )
