"""Tests for type inference over logical expressions (repro.logic.types)."""

import pytest

from repro.gil.values import GilType, Symbol
from repro.logic.expr import (
    BinOp,
    BinOpExpr,
    Lit,
    LVar,
    UnOp,
    UnOpExpr,
    lst,
)
from repro.logic.types import TypeConflict, collect_var_types, infer_type

x, y = LVar("x"), LVar("y")


class TestInferType:
    def test_literals(self):
        assert infer_type(Lit(1)) is GilType.NUMBER
        assert infer_type(Lit("s")) is GilType.STRING
        assert infer_type(Lit(True)) is GilType.BOOLEAN
        assert infer_type(Lit(Symbol("l"))) is GilType.SYMBOL

    def test_list_constructor(self):
        assert infer_type(lst(x, 1)) is GilType.LIST

    def test_arithmetic_is_number(self):
        assert infer_type(x + y) is GilType.NUMBER

    def test_comparison_is_boolean(self):
        assert infer_type(x.lt(y)) is GilType.BOOLEAN
        assert infer_type(x.eq(y)) is GilType.BOOLEAN

    def test_string_ops(self):
        assert infer_type(BinOpExpr(BinOp.SCONCAT, x, y)) is GilType.STRING
        assert infer_type(UnOpExpr(UnOp.STRLEN, x)) is GilType.NUMBER

    def test_unknowns(self):
        assert infer_type(x) is None
        assert infer_type(UnOpExpr(UnOp.HEAD, x)) is None
        assert infer_type(BinOpExpr(BinOp.LNTH, x, Lit(0))) is None

    def test_typeof_is_type(self):
        assert infer_type(x.typeof()) is GilType.TYPE


class TestCollectVarTypes:
    def test_arithmetic_context(self):
        env = collect_var_types([x + y > Lit(0) if False else (x + y).lt(Lit(0))])
        assert env == {"x": GilType.NUMBER, "y": GilType.NUMBER}

    def test_boolean_context(self):
        env = collect_var_types([x.and_(y)])
        assert env == {"x": GilType.BOOLEAN, "y": GilType.BOOLEAN}

    def test_comparison_against_literal(self):
        env = collect_var_types([x.eq(Lit("str"))])
        assert env == {"x": GilType.STRING}

    def test_string_builtin_contexts(self):
        env = collect_var_types([UnOpExpr(UnOp.STRLEN, x).lt(Lit(5))])
        assert env["x"] is GilType.STRING

    def test_list_builtin_contexts(self):
        env = collect_var_types([BinOpExpr(BinOp.LNTH, x, y).eq(Lit(1))])
        assert env["x"] is GilType.LIST
        assert env["y"] is GilType.NUMBER

    def test_equality_transfers_known_type(self):
        env = collect_var_types([x.eq(y + 1)])
        assert env["x"] is GilType.NUMBER

    def test_conflict_raises(self):
        with pytest.raises(TypeConflict):
            collect_var_types([x.lt(Lit(3)), x.eq(Lit("s"))])

    def test_conflict_across_conjuncts(self):
        with pytest.raises(TypeConflict):
            collect_var_types(
                [UnOpExpr(UnOp.STRLEN, x).eq(Lit(2)), (x + 1).eq(Lit(3))]
            )

    def test_unconstrained_var_absent(self):
        env = collect_var_types([x.eq(y)])
        assert "x" not in env and "y" not in env
