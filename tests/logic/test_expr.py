"""Tests for the expression language (repro.logic.expr)."""

import pytest

from repro.gil.values import NULL, GilType, Symbol
from repro.logic.expr import (
    FALSE,
    TRUE,
    BinOp,
    BinOpExpr,
    EList,
    Expr,
    Lit,
    LVar,
    PVar,
    UnOp,
    UnOpExpr,
    conj,
    disj,
    free_lvars,
    free_pvars,
    is_concrete,
    lst,
    substitute_lvars,
    substitute_pvars,
    symbols_of,
    to_expr,
    walk,
)


class TestConstruction:
    def test_operator_sugar_add(self):
        e = PVar("x") + 1
        assert e == BinOpExpr(BinOp.ADD, PVar("x"), Lit(1))

    def test_operator_sugar_radd(self):
        e = 1 + PVar("x")
        assert e == BinOpExpr(BinOp.ADD, Lit(1), PVar("x"))

    def test_operator_sugar_comparisons(self):
        x = LVar("x")
        assert x.lt(3) == BinOpExpr(BinOp.LT, x, Lit(3))
        assert x.gt(3) == BinOpExpr(BinOp.LT, Lit(3), x)
        assert x.geq(3) == BinOpExpr(BinOp.LEQ, Lit(3), x)

    def test_neq_is_negated_eq(self):
        x = LVar("x")
        assert x.neq(1) == UnOpExpr(UnOp.NOT, BinOpExpr(BinOp.EQ, x, Lit(1)))

    def test_structural_equality_is_not_overloaded(self):
        assert (PVar("x") == PVar("x")) is True
        assert (PVar("x") == PVar("y")) is False

    def test_expressions_are_hashable(self):
        s = {PVar("x") + 1, PVar("x") + 1, LVar("y")}
        assert len(s) == 2

    def test_to_expr_coerces_values(self):
        assert to_expr(5) == Lit(5)
        assert to_expr(Lit(5)) == Lit(5)

    def test_lst_builds_elist(self):
        assert lst(1, "a") == EList((Lit(1), Lit("a")))


class TestConjDisj:
    def test_conj_empty_is_true(self):
        assert conj() == TRUE

    def test_conj_drops_true(self):
        assert conj(TRUE, LVar("b")) == LVar("b")

    def test_conj_nests_right(self):
        a, b, c = LVar("a"), LVar("b"), LVar("c")
        assert conj(a, b, c) == BinOpExpr(BinOp.AND, a, BinOpExpr(BinOp.AND, b, c))

    def test_disj_empty_is_false(self):
        assert disj() == FALSE

    def test_disj_drops_false(self):
        assert disj(FALSE, LVar("b")) == LVar("b")


class TestTraversal:
    def test_walk_visits_all_nodes(self):
        e = (PVar("x") + LVar("y")).eq(lst(1, PVar("z")))
        kinds = {type(n).__name__ for n in walk(e)}
        assert {"BinOpExpr", "PVar", "LVar", "EList", "Lit"} <= kinds

    def test_free_pvars(self):
        e = (PVar("x") + LVar("y")) * PVar("z")
        assert free_pvars(e) == {"x", "z"}

    def test_free_lvars(self):
        e = (PVar("x") + LVar("y")).eq(LVar("w"))
        assert free_lvars(e) == {"y", "w"}

    def test_symbols_of(self):
        e = Lit(Symbol("loc1")).eq(PVar("x"))
        assert symbols_of(e) == {Symbol("loc1")}

    def test_is_concrete(self):
        assert is_concrete(Lit(1) + Lit(2))
        assert not is_concrete(PVar("x") + 1)
        assert not is_concrete(LVar("x") + 1)


class TestSubstitution:
    def test_substitute_pvars(self):
        e = PVar("x") + PVar("y")
        out = substitute_pvars(e, {"x": LVar("a"), "y": Lit(2)})
        assert out == LVar("a") + Lit(2)

    def test_substitute_pvars_unbound_raises(self):
        with pytest.raises(KeyError):
            substitute_pvars(PVar("nope"), {})

    def test_substitute_pvars_in_lists(self):
        e = lst(PVar("x"), Lit(3))
        out = substitute_pvars(e, {"x": Lit(1)})
        assert out == lst(1, 3)

    def test_substitute_lvars_partial(self):
        e = LVar("a") + LVar("b")
        out = substitute_lvars(e, {"a": Lit(1)})
        assert out == Lit(1) + LVar("b")

    def test_substitute_lvars_leaves_pvars(self):
        e = PVar("x") + LVar("a")
        out = substitute_lvars(e, {"a": Lit(1)})
        assert out == PVar("x") + Lit(1)
