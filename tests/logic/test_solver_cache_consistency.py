"""Property: caching and memoisation never change solver verdicts.

The E4 ablation depends on the cached (Gillian) and uncached (JaVerT 2.0
baseline) configurations exploring identically; this test pins the
underlying invariant — same verdicts, same models-modulo-verification —
over random constraint sets, including repeated queries that exercise
cache hits.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gil.ops import evaluate
from repro.logic.expr import Lit, LVar
from repro.logic.simplify import Simplifier
from repro.logic.solver import SatResult, Solver

_atoms = st.one_of(
    st.integers(-4, 4).map(Lit),
    st.sampled_from([LVar("x"), LVar("y"), LVar("z")]),
)


@st.composite
def _constraint_sets(draw):
    out = []
    for _ in range(draw(st.integers(1, 5))):
        a, b = draw(_atoms), draw(_atoms)
        kind = draw(st.sampled_from(["lt", "leq", "eq", "neq"]))
        c = getattr(a, kind)(b)
        if draw(st.booleans()):
            d = getattr(draw(_atoms), draw(st.sampled_from(["lt", "eq"])))(draw(_atoms))
            c = c.or_(d)
        out.append(c)
    return out


@given(pc=_constraint_sets())
@settings(max_examples=150, deadline=None)
def test_cached_and_uncached_agree(pc):
    cached = Solver(cache_enabled=True)
    uncached = Solver(
        simplifier=Simplifier(memoise=False), cache_enabled=False
    )
    r1 = cached.check(pc)
    r2 = uncached.check(pc)
    assert r1 == r2, pc

    # Repeat the query: the cached answer must be stable.
    assert cached.check(pc) == r1
    if r1 is SatResult.SAT:
        for solver in (cached, uncached):
            model = solver.get_model(pc)
            if model is not None:
                for c in pc:
                    assert evaluate(c, lvar_env=model) is True


@given(pc=_constraint_sets())
@settings(max_examples=100, deadline=None)
def test_conjunct_order_irrelevant(pc):
    solver = Solver()
    assert solver.check(pc) == solver.check(list(reversed(pc)))
