"""Tests for the algebraic simplifier (repro.logic.simplify)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gil.ops import EvalError, evaluate
from repro.gil.values import GilType, Symbol
from repro.logic.expr import (
    FALSE,
    TRUE,
    BinOp,
    BinOpExpr,
    EList,
    Lit,
    LVar,
    UnOp,
    UnOpExpr,
    lst,
)
from repro.logic.simplify import Simplifier, simplify

x, y = LVar("x"), LVar("y")


class TestConstantFolding:
    def test_arith_folds(self):
        assert simplify(Lit(2) + Lit(3)) == Lit(5)

    def test_nested_folds(self):
        assert simplify((Lit(2) + Lit(3)) * Lit(4)) == Lit(20)

    def test_ill_typed_does_not_fold(self):
        e = Lit("a") + Lit(1)
        assert simplify(e) == e  # left as-is, not an exception

    def test_literal_list_constructor_folds(self):
        assert simplify(lst(1, 2)) == Lit((1, 2))


class TestBooleanIdentities:
    def test_double_negation(self):
        assert simplify(x.not_().not_()) == x

    def test_and_true(self):
        assert simplify(x.and_(TRUE)) == x
        assert simplify(TRUE.and_(x)) == x

    def test_and_false(self):
        assert simplify(x.and_(FALSE)) == FALSE

    def test_or_false(self):
        assert simplify(x.or_(FALSE)) == x

    def test_or_true(self):
        assert simplify(x.or_(TRUE)) == TRUE

    def test_idempotent_and(self):
        assert simplify(x.and_(x)) == x


class TestEquality:
    def test_reflexive_eq(self):
        assert simplify((x + y).eq(x + y)) == TRUE

    def test_distinct_literals(self):
        assert simplify(Lit(1).eq(Lit(2))) == FALSE

    def test_distinct_symbols(self):
        assert simplify(Lit(Symbol("a")).eq(Lit(Symbol("b")))) == FALSE

    def test_same_symbol(self):
        assert simplify(Lit(Symbol("a")).eq(Lit(Symbol("a")))) == TRUE

    def test_list_pointwise(self):
        e = lst(x, 1).eq(lst(y, 1))
        assert simplify(e) == x.eq(y)

    def test_list_length_mismatch(self):
        assert simplify(lst(x).eq(lst(x, x))) == FALSE

    def test_list_vs_literal_list(self):
        e = lst(x, 2).eq(Lit((1, 2)))
        assert simplify(e) == x.eq(Lit(1))

    def test_same_base_distinct_offsets(self):
        assert simplify((x + 1).eq(x + 2)) == FALSE
        assert simplify((x + 1).eq(x + 1)) == TRUE


class TestArithmeticIdentities:
    def test_add_zero(self):
        assert simplify(x + 0) == x
        assert simplify(0 + x) == x

    def test_mul_identities(self):
        assert simplify(x * 1) == x
        assert simplify(x * 0) == Lit(0)

    def test_sub_self(self):
        assert simplify(x - x) == Lit(0)

    def test_offset_chain_reassociates(self):
        assert simplify((x + 1) + 2) == x + Lit(3)

    def test_offset_comparison_folds(self):
        assert simplify((x + 1).lt(x + 2)) == TRUE
        assert simplify((x + 3).leq(x + 2)) == FALSE


class TestListIdentities:
    def test_lstlen_of_constructor(self):
        assert simplify(UnOpExpr(UnOp.LSTLEN, lst(x, y))) == Lit(2)

    def test_head_tail_of_constructor(self):
        assert simplify(UnOpExpr(UnOp.HEAD, lst(x, y))) == x
        assert simplify(UnOpExpr(UnOp.TAIL, lst(x, y))) == EList((y,))

    def test_lnth_of_constructor(self):
        assert simplify(BinOpExpr(BinOp.LNTH, lst(x, y), Lit(1))) == y

    def test_concat_of_constructors(self):
        assert simplify(BinOpExpr(BinOp.LCONCAT, lst(x), lst(y))) == lst(x, y)

    def test_lstlen_distributes_over_concat(self):
        e = UnOpExpr(UnOp.LSTLEN, BinOpExpr(BinOp.LCONCAT, lst(x), lst(y, x)))
        assert simplify(e) == Lit(3)

    def test_cons_onto_constructor(self):
        assert simplify(BinOpExpr(BinOp.LCONS, x, lst(y))) == lst(x, y)


class TestNegatedComparisons:
    def test_not_lt(self):
        assert simplify(x.lt(y).not_()) == y.leq(x)

    def test_not_leq(self):
        assert simplify(x.leq(y).not_()) == y.lt(x)


class TestSimplifierModes:
    def test_disabled_is_identity(self):
        s = Simplifier(enabled=False)
        e = Lit(1) + Lit(2)
        assert s.simplify(e) == e

    def test_memoisation_returns_same_object(self):
        s = Simplifier(memoise=True)
        e = (x + 0) * 1
        assert s.simplify(e) is s.simplify(e)


# -- property: simplification preserves concrete evaluation -------------------

_atoms = st.one_of(
    st.integers(-20, 20).map(Lit),
    st.booleans().map(Lit),
    st.sampled_from([LVar("x"), LVar("y")]),
)


def _exprs(depth: int):
    if depth == 0:
        return _atoms
    sub = _exprs(depth - 1)
    return st.one_of(
        _atoms,
        st.tuples(st.sampled_from(list(BinOp)), sub, sub).map(
            lambda t: BinOpExpr(*t)
        ),
        st.tuples(st.sampled_from([UnOp.NOT, UnOp.NEG, UnOp.TYPEOF]), sub).map(
            lambda t: UnOpExpr(*t)
        ),
    )


@given(e=_exprs(3), xv=st.integers(-5, 5), yv=st.integers(-5, 5))
@settings(max_examples=300, deadline=None)
def test_simplify_preserves_evaluation(e, xv, yv):
    env = {"x": xv, "y": yv}
    try:
        expected = evaluate(e, lvar_env=env)
    except EvalError:
        return  # ill-typed instance; nothing to compare
    simplified = simplify(e)
    got = evaluate(simplified, lvar_env=env)
    from repro.gil.values import values_equal

    assert values_equal(expected, got)
