"""Kill-the-daemon-mid-burst: a subprocess daemon is SIGKILLed at
checkpoint boundaries repeatedly while draining a burst of jobs, and
restarted until the queue is empty.  Zero jobs lost, zero duplicated,
and every verdict identical to a calm single-incarnation run."""

import json
import os
import subprocess
import sys
import textwrap

from repro.service import AnalysisService, JobSpec

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def burst(n=4):
    """A burst of distinct jobs, each with a checkpoint-worthy run."""
    specs = []
    for i in range(n):
        specs.append(
            JobSpec(
                language="while",
                source=f"""
                proc main() {{
                  x := symb_int();
                  assume(0 <= x and x <= 10);
                  s := {i};
                  i := 0;
                  while (i < 3) {{
                    if (x = i + {i + 2}) {{ s := s + 3; }} else {{ s := s + 1; }}
                    i := i + 1;
                  }}
                  assert(not (s = {i + 5}));
                  return s;
                }}
                """,
            )
        )
    return specs


CHILD = textwrap.dedent(
    """
    import json, sys
    sys.path.insert(0, sys.argv[1])
    from repro.service import AnalysisService, JobSpec
    from repro.testing.faults import CheckpointKill, FaultPlan

    root = sys.argv[2]
    # Every first-attempt job dies by real SIGKILL at its second
    # checkpoint save; recovery re-delivers it as attempt 2, which runs
    # clean (the fault is transient), resuming from the snapshot.
    plan = FaultPlan(checkpoint_kills=(CheckpointKill(1, mode="sigkill"),))
    svc = AnalysisService(
        root, checkpoint_interval=10, fault_plan=plan, max_attempts=3
    )
    spec_file = sys.argv[3]
    if spec_file != "-":
        for payload in json.load(open(spec_file)):
            svc.submit(JobSpec.from_dict(payload))
    svc.run_until_idle()
    print("IDLE", flush=True)
    """
)


class TestCrashStorm:
    def test_burst_survives_repeated_sigkill(self, tmp_path):
        specs = burst(4)

        # Ground truth: the same burst on a calm daemon, no faults.
        calm_root = str(tmp_path / "calm")
        calm = AnalysisService(calm_root, checkpoint_interval=10)
        for spec in specs:
            calm.submit(spec)
        calm.run_until_idle()
        truth = {
            spec.key(): calm.result_for(spec.key()).finals_digest
            for spec in specs
        }
        verdicts = {
            spec.key(): calm.result_for(spec.key()).verdict for spec in specs
        }

        # The storm: submit on first incarnation, then keep restarting
        # the daemon as SIGKILL takes it down mid-burst.
        root = str(tmp_path / "storm")
        spec_file = str(tmp_path / "burst.json")
        with open(spec_file, "w") as fh:
            json.dump([s.to_dict() for s in specs], fh)

        kills = 0
        for incarnation in range(20):
            proc = subprocess.run(
                [
                    sys.executable, "-c", CHILD,
                    SRC_ROOT, root,
                    spec_file if incarnation == 0 else "-",
                ],
                capture_output=True,
                timeout=180,
            )
            if proc.returncode == -9:
                kills += 1
                continue
            assert proc.returncode == 0, proc.stderr.decode()[-2000:]
            assert b"IDLE" in proc.stdout
            break
        else:
            raise AssertionError("daemon never drained the burst")

        # The daemon really was killed mid-burst, repeatedly.
        assert kills >= 3

        # Zero lost, zero duplicated: every job exactly once in done/.
        svc = AnalysisService(root, checkpoint_interval=10)
        done = svc.queue.done_ids()
        assert len(done) == len(specs)
        done_keys = sorted(svc.queue.load_done(j)["key"] for j in done)
        assert done_keys == sorted(truth)
        assert svc.queue.pending_ids() == []
        assert svc.queue.active_ids() == []
        assert svc.queue.quarantined_ids() == []

        # And every outcome matches the calm run exactly.
        for spec in specs:
            res = svc.result_for(spec.key())
            assert res is not None
            assert res.finals_digest == truth[spec.key()]
            assert res.verdict == verdicts[spec.key()]
