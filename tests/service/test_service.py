"""End-to-end tests for the analysis daemon (repro.service.daemon):
submit/process/ack, idempotent replay from the result cache, degraded
admission under memory pressure, poison-job quarantine, cache integrity
on the obs bus, and the CLI."""

import json
import os

import pytest

from repro.engine.backoff import BackoffPolicy
from repro.engine.events import EventBus, MetricSample
from repro.service import (
    AnalysisService,
    DegradationPolicy,
    JobSpec,
    QueueFull,
)

BUGGY = """
proc main() {
  x := symb_int();
  assume(0 <= x and x <= 20);
  if (x < 10) { r := 1; } else { r := 2; }
  assert(not (x = 13));
  return r;
}
"""

CLEAN = """
proc main() {
  x := symb_int();
  assume(0 <= x and x <= 8);
  s := 0;
  i := 0;
  while (i < 4) {
    if (x < i) { s := s + 2; } else { s := s + 1; }
    i := i + 1;
  }
  assert(s <= 8);
  return s;
}
"""


def svc_for(tmp_path, **kw):
    return AnalysisService(str(tmp_path), **kw)


class TestEndToEnd:
    def test_submit_process_verdicts(self, tmp_path):
        svc = svc_for(tmp_path)
        buggy = JobSpec(language="while", source=BUGGY)
        clean = JobSpec(language="while", source=CLEAN)
        for spec in (buggy, clean):
            job_id, cached = svc.submit(spec)
            assert job_id is not None and cached is None
        assert svc.run_until_idle() == 2

        bug = svc.result_for(buggy.key())
        assert bug.verdict == "bug" and bug.bugs == 1
        ok = svc.result_for(clean.key())
        assert ok.verdict == "bounded-verified" and ok.bugs == 0
        assert len(svc.queue.done_ids()) == 2
        assert svc.queue.pending_ids() == [] and svc.queue.active_ids() == []

    def test_identical_resubmission_served_from_cache(self, tmp_path):
        svc = svc_for(tmp_path)
        spec = JobSpec(language="while", source=BUGGY)
        svc.submit(spec)
        svc.run_until_idle()
        job_id, cached = svc.submit(spec)
        assert job_id is None
        assert cached is not None and cached.verdict == "bug"
        counters = svc.metrics.as_dict()
        assert counters["service.cache_hit_result"] == 1
        # Nothing re-ran: one compile-tier miss total.
        assert counters["service.cache_miss"] == 1

    def test_redelivered_job_served_from_cache(self, tmp_path):
        # At-least-once delivery: the same spec queued twice runs once.
        svc = svc_for(tmp_path)
        spec = JobSpec(language="while", source=BUGGY)
        svc.queue.submit(spec)
        svc.queue.submit(spec)
        assert svc.process_one() == "completed"
        assert svc.process_one() == "cached"
        assert len(svc.queue.done_ids()) == 2
        digests = {
            svc.queue.load_done(j)["result"]["finals_digest"]
            for j in svc.queue.done_ids()
        }
        assert len(digests) == 1

    def test_gil_cache_shared_across_entry_points(self, tmp_path):
        src = BUGGY + "\nproc other() { return 0; }\n"
        svc = svc_for(tmp_path)
        svc.submit(JobSpec(language="while", source=src, entry="main"))
        svc.submit(JobSpec(language="while", source=src, entry="other"))
        svc.run_until_idle()
        counters = svc.metrics.as_dict()
        assert counters["service.cache_miss"] == 1
        assert counters["service.cache_hit_gil"] == 1

    def test_queue_capacity_backpressure(self, tmp_path):
        svc = svc_for(tmp_path, capacity=1)
        svc.submit(JobSpec(language="while", source=BUGGY))
        with pytest.raises(QueueFull):
            svc.submit(JobSpec(language="while", source=CLEAN))


class TestQuarantine:
    def test_poison_job_quarantined_with_structured_failure(self, tmp_path):
        svc = svc_for(
            tmp_path,
            max_attempts=2,
            backoff=BackoffPolicy(base=0.0),
        )
        svc.submit(JobSpec(language="while", source="not a program at all"))
        healthy = JobSpec(language="while", source=BUGGY)
        svc.submit(healthy)
        processed = svc.run_until_idle()
        assert processed == 3  # poison retried + quarantined, healthy once
        assert len(svc.queue.quarantined_ids()) == 1
        failure = svc.queue.load_quarantined(svc.queue.quarantined_ids()[0])
        assert failure.attempts == 2
        assert "Error" in failure.error or "error" in failure.error
        # The poison job never wedged the queue: the healthy one finished.
        assert svc.result_for(healthy.key()).verdict == "bug"
        counters = svc.metrics.as_dict()
        assert counters["service.jobs_retried"] == 1
        assert counters["service.jobs_quarantined"] == 1

    def test_unknown_language_is_poison_not_crash(self, tmp_path):
        svc = svc_for(
            tmp_path, max_attempts=1, backoff=BackoffPolicy(base=0.0)
        )
        svc.submit(JobSpec(language="cobol", source="IDENTIFICATION DIVISION."))
        svc.run_until_idle()
        assert len(svc.queue.quarantined_ids()) == 1


class TestDegradation:
    def test_soft_watermark_scales_budget_and_prunes(self, tmp_path):
        mem = [0]
        policy = DegradationPolicy(
            soft_bytes=100, hard_bytes=1000, memory_bytes=lambda: mem[0]
        )
        svc = svc_for(tmp_path, degradation=policy)
        spec = JobSpec(language="while", source=BUGGY, max_paths=40)
        mem[0] = 500  # above soft, below hard
        svc.submit(spec)
        svc.run_until_idle()
        res = svc.result_for(spec.key())
        assert res.degraded_level == 1
        assert not res.reusable
        assert svc.metrics.as_dict()["service.jobs_degraded"] == 1

    def test_degraded_result_not_served_for_resubmission(self, tmp_path):
        mem = [500]
        policy = DegradationPolicy(soft_bytes=100, memory_bytes=lambda: mem[0])
        svc = svc_for(tmp_path, degradation=policy)
        spec = JobSpec(language="while", source=BUGGY)
        svc.submit(spec)
        svc.run_until_idle()
        # Pressure subsides; the same spec must re-run at full budget.
        mem[0] = 0
        job_id, cached = svc.submit(spec)
        assert job_id is not None and cached is None
        svc.run_until_idle()
        res = svc.result_for(spec.key())
        assert res.degraded_level == 0 and res.reusable

    def test_admission_levels(self):
        mem = [0]
        policy = DegradationPolicy(
            soft_bytes=100, hard_bytes=200, memory_bytes=lambda: mem[0]
        )
        from repro.engine.budget import Budget

        budget = Budget(max_paths=1000, max_total_steps=10_000)
        assert policy.admit(budget, "assume-sat")[0] == 0
        mem[0] = 150
        level, scaled, pol = policy.admit(budget, "assume-sat")
        assert level == 1 and pol == "prune"
        assert scaled.max_paths == 250
        mem[0] = 250
        level, scaled, pol = policy.admit(budget, "assume-sat")
        assert level == 2 and pol == "prune"
        assert scaled.max_paths == 50

    def test_watermark_validation(self):
        with pytest.raises(ValueError):
            DegradationPolicy(soft_bytes=200, hard_bytes=100)


class TestIntegrityOnBus:
    def test_corrupt_cache_entry_recomputed_and_counted(self, tmp_path):
        samples = []
        bus = EventBus()
        bus.subscribe(
            lambda ev: samples.append(ev) if isinstance(ev, MetricSample) else None
        )
        svc = svc_for(tmp_path, events=bus)
        spec = JobSpec(language="while", source=BUGGY)
        svc.submit(spec)
        svc.run_until_idle()
        good = svc.result_for(spec.key())

        # Flip a bit in the stored result entry.
        path = os.path.join(str(tmp_path), "results", spec.key() + ".bin")
        blob = bytearray(open(path, "rb").read())
        blob[-5] ^= 0x10
        open(path, "wb").write(bytes(blob))

        # Resubmission must NOT be served the damaged entry: it re-runs.
        job_id, cached = svc.submit(spec)
        assert cached is None and job_id is not None
        svc.run_until_idle()
        again = svc.result_for(spec.key())
        assert again.finals_digest == good.finals_digest
        assert svc.metrics.as_dict()["service.degraded"] == 1
        degraded = [
            s for s in samples if s.name == "service.degraded" and s.value >= 1
        ]
        assert degraded  # the eviction reached the obs bus

    def test_truncated_gil_entry_recompiled(self, tmp_path):
        svc = svc_for(tmp_path)
        spec = JobSpec(language="while", source=BUGGY)
        svc.submit(spec)
        svc.run_until_idle()
        path = os.path.join(str(tmp_path), "gil", spec.source_key() + ".bin")
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 2])

        other = JobSpec(language="while", source=BUGGY, entry="main", max_paths=77)
        svc.submit(other)
        svc.run_until_idle()
        assert svc.result_for(other.key()).verdict == "bug"
        counters = svc.metrics.as_dict()
        assert counters["service.degraded"] == 1
        assert counters["service.cache_miss"] == 2  # recompiled, not served


class TestMetricsSurface:
    def test_flush_emits_samples(self, tmp_path):
        svc = svc_for(tmp_path)
        svc.submit(JobSpec(language="while", source=BUGGY))
        svc.run_until_idle()
        bus = EventBus()
        seen = []
        bus.subscribe(lambda ev: seen.append(ev))
        emitted = svc.metrics.flush(bus)
        assert emitted == len(seen) > 0
        names = {s.name for s in seen}
        assert {"service.jobs_submitted", "service.jobs_completed",
                "service.queue_depth"} <= names


class TestRecoveryAcrossIncarnations:
    def test_new_incarnation_recovers_active_jobs(self, tmp_path):
        svc = svc_for(tmp_path)
        spec = JobSpec(language="while", source=BUGGY)
        svc.submit(spec)
        lease = svc.queue.claim()  # claimed, then the daemon "dies"
        assert lease is not None

        svc2 = svc_for(tmp_path)
        assert svc2.recovered == 1
        svc2.run_until_idle()
        assert svc2.result_for(spec.key()).verdict == "bug"


class TestCli:
    def test_submit_and_until_idle(self, tmp_path, capsys):
        from repro.service.daemon import main

        spec_path = str(tmp_path / "job.json")
        spec = JobSpec(language="while", source=BUGGY)
        with open(spec_path, "w") as fh:
            json.dump(spec.to_dict(), fh)
        root = str(tmp_path / "root")
        assert main(["--root", root, "--submit", spec_path, "--until-idle"]) == 0
        out = capsys.readouterr().out
        assert "processed 1 job(s)" in out
        assert "service.jobs_completed" in out
