"""Tests for the content-addressed stores (repro.service.store):
roundtrips, corruption detection/eviction, and the recompute path."""

import os

import pytest

from repro.service.store import ContentStore, GilStore


KEY = "a" * 64


class TestRoundtrip:
    def test_put_get(self, tmp_path):
        store = ContentStore(str(tmp_path))
        store.put(KEY, {"compiled": [1, 2, 3]})
        assert store.get(KEY) == {"compiled": [1, 2, 3]}
        assert store.contains(KEY)
        assert store.keys() == [KEY]

    def test_miss_returns_none(self, tmp_path):
        assert ContentStore(str(tmp_path)).get(KEY) is None

    def test_overwrite(self, tmp_path):
        store = ContentStore(str(tmp_path))
        store.put(KEY, 1)
        store.put(KEY, 2)
        assert store.get(KEY) == 2

    def test_delete(self, tmp_path):
        store = ContentStore(str(tmp_path))
        store.put(KEY, 1)
        store.delete(KEY)
        assert store.get(KEY) is None
        store.delete(KEY)  # idempotent

    def test_invalid_keys_rejected(self, tmp_path):
        store = ContentStore(str(tmp_path))
        for bad in ("", "../escape", "a/b", "dot.dot"):
            with pytest.raises(ValueError):
                store.put(bad, 1)


class TestCorruption:
    def _entry_path(self, tmp_path):
        return os.path.join(str(tmp_path), KEY + ".bin")

    def test_bit_flip_evicted_and_reported(self, tmp_path):
        seen = []
        store = ContentStore(str(tmp_path), on_corrupt=lambda k, r: seen.append((k, r)))
        store.put(KEY, {"payload": "precious"})
        path = self._entry_path(tmp_path)
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0x01
        open(path, "wb").write(bytes(blob))

        assert store.get(KEY) is None          # never served
        assert not os.path.exists(path)        # evicted
        assert len(seen) == 1 and seen[0][0] == KEY

    def test_truncation_evicted_and_reported(self, tmp_path):
        seen = []
        store = ContentStore(str(tmp_path), on_corrupt=lambda k, r: seen.append(k))
        store.put(KEY, list(range(1000)))
        path = self._entry_path(tmp_path)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) // 3])

        assert store.get(KEY) is None
        assert not os.path.exists(path)
        assert seen == [KEY]

    def test_recompute_after_eviction(self, tmp_path):
        store = ContentStore(str(tmp_path))
        store.put(KEY, "v1")
        path = self._entry_path(tmp_path)
        open(path, "wb").write(b"garbage, not even a frame")
        assert store.get(KEY) is None
        # The caller's recompute-and-reput path restores service.
        store.put(KEY, "v2")
        assert store.get(KEY) == "v2"


class TestGilStore:
    def test_caches_compiled_programs(self, tmp_path):
        from repro.service.jobs import JobSpec
        from repro.service.runner import language_for

        spec = JobSpec(language="while", source="proc main() { return 41; }")
        store = GilStore(str(tmp_path))
        prog = language_for("while").compile(spec.source)
        store.put(spec.source_key(), prog)
        back = store.get(spec.source_key())
        assert back is not None
        # The cached program still runs.
        from repro.service.runner import JobRunner

        outcome = JobRunner(gil_store=store).run(spec)
        assert outcome.compile_cache_hit
        assert outcome.result.stats.paths_finished == 1
