"""Tests for the job vocabulary (repro.service.jobs): content-hash keys,
serialization roundtrips, and the order-independent finals digest."""

from dataclasses import replace

from repro.engine.results import Incompleteness, RunReport
from repro.service.jobs import JobFailure, JobResult, JobSpec, finals_digest


def spec(**kw):
    base = dict(language="while", source="proc main() { return 1; }")
    base.update(kw)
    return JobSpec(**base)


class TestJobSpecKey:
    def test_identical_specs_share_a_key(self):
        assert spec().key() == spec().key()

    def test_key_covers_program_and_budget(self):
        base = spec().key()
        assert spec(source="proc main() { return 2; }").key() != base
        assert spec(entry="other").key() != base
        assert spec(max_paths=7).key() != base
        assert spec(max_total_steps=7).key() != base
        assert spec(max_steps_per_path=7).key() != base
        assert spec(unknown_policy="prune").key() != base
        assert spec(workers=4).key() != base

    def test_timeout_excluded_from_key(self):
        # A deadline changes when a run is cut, not what the program
        # means; reusability is policed by JobResult.reusable instead.
        assert spec(timeout=1.5).key() == spec().key()

    def test_source_key_narrower_than_job_key(self):
        a, b = spec(), spec(entry="other", max_paths=3)
        assert a.key() != b.key()
        assert a.source_key() == b.source_key()

    def test_roundtrip(self):
        s = spec(workers=2, timeout=0.5)
        assert JobSpec.from_dict(s.to_dict()) == s


class TestJobResult:
    def make(self, **kw):
        base = dict(
            key="k" * 64,
            verdict="bounded-verified",
            bugs=0,
            paths=3,
            report=RunReport("exhausted", Incompleteness()),
            stats={"paths_finished": 3},
        )
        base.update(kw)
        return JobResult(**base)

    def test_roundtrip(self):
        r = self.make(degraded_level=1, finals_digest="ab", attempts=2)
        back = JobResult.from_dict(r.to_dict())
        assert back == r
        assert back.report.stop_reason == "exhausted"

    def test_reusable_only_at_full_budget(self):
        assert self.make().reusable
        assert not self.make(degraded_level=1).reusable
        assert not self.make(
            report=RunReport("deadline", Incompleteness())
        ).reusable


class TestFinalsDigest:
    def test_order_independent(self):
        class Kind:
            def __init__(self, name):
                self.name = name

        class Fin:
            def __init__(self, kind, value):
                self.kind, self.value = Kind(kind), value

        a = [Fin("RET", 1), Fin("ERR", "x"), Fin("RET", 2)]
        b = [a[2], a[0], a[1]]
        assert finals_digest(a) == finals_digest(b)
        assert finals_digest(a) != finals_digest(a[:2])


class TestJobFailure:
    def test_roundtrip(self):
        f = JobFailure(key="k", error="boom", attempts=3, spec={"language": "while"})
        assert JobFailure.from_dict(f.to_dict()) == f
