"""Tests for durable job snapshots (repro.service.checkpoint): the
save/load roundtrip, base folding across resumes, corruption eviction,
and the fault-injection hooks at the save boundary."""

import os

import pytest

from repro.engine.results import ExecutionStats
from repro.service.checkpoint import Checkpoint, CheckpointManager
from repro.testing.faults import CheckpointKill, FaultPlan, InjectedCrash


KEY = "f" * 64


def stats(commands=10, finished=2):
    s = ExecutionStats()
    s.commands_executed = commands
    s.paths_finished = finished
    return s


class TestRoundtrip:
    def test_save_load(self, tmp_path):
        ck = CheckpointManager(str(tmp_path), KEY, interval=100)
        ck.save(frontier=(("cfg", 3),), finals=("fin",), stats=stats())
        snap = ck.load()
        assert isinstance(snap, Checkpoint)
        assert snap.key == KEY and snap.seq == 0
        assert snap.frontier == (("cfg", 3),)
        assert snap.finals == ("fin",)
        assert snap.stats.commands_executed == 10

    def test_missing_is_none(self, tmp_path):
        assert CheckpointManager(str(tmp_path), KEY).load() is None

    def test_seq_advances_per_save(self, tmp_path):
        ck = CheckpointManager(str(tmp_path), KEY)
        ck.save((), (), stats())
        ck.save((), (), stats())
        assert ck.load().seq == 1

    def test_age_uses_injected_clock(self, tmp_path):
        now = [100.0]
        ck = CheckpointManager(str(tmp_path), KEY, clock=lambda: now[0])
        assert ck.age() is None
        ck.save((), (), stats())
        now[0] = 107.5
        assert ck.age() == pytest.approx(7.5)

    def test_clear_discards_snapshot(self, tmp_path):
        ck = CheckpointManager(str(tmp_path), KEY)
        ck.save((), (), stats())
        ck.clear()
        assert ck.load() is None
        ck.clear()  # idempotent


class TestBaseFolding:
    def test_saves_fold_resume_base(self, tmp_path):
        ck = CheckpointManager(str(tmp_path), KEY)
        ck.save((("c1", 1),), ("f1",), stats(10, 1))
        # New incarnation resumes from the snapshot...
        ck2 = CheckpointManager(str(tmp_path), KEY)
        snap = ck2.load()
        ck2.resume_from(snap)
        assert ck2.seq == snap.seq + 1
        # ...and its own saves describe *total* progress since job start.
        ck2.save((("c2", 2),), ("f2",), stats(5, 1))
        total = ck2.load()
        assert total.finals == ("f1", "f2")
        assert total.stats.commands_executed == 15
        assert total.stats.paths_finished == 2

    def test_multi_cycle_resume(self, tmp_path):
        ck = CheckpointManager(str(tmp_path), KEY)
        ck.save((), ("a",), stats(1, 1))
        for extra in ("b", "c"):
            nxt = CheckpointManager(str(tmp_path), KEY)
            nxt.resume_from(nxt.load())
            nxt.save((), (extra,), stats(1, 1))
        final = CheckpointManager(str(tmp_path), KEY).load()
        assert final.finals == ("a", "b", "c")
        assert final.stats.commands_executed == 3


class TestCorruption:
    def test_corrupt_snapshot_evicted(self, tmp_path):
        ck = CheckpointManager(str(tmp_path), KEY)
        ck.save((), (), stats())
        blob = bytearray(open(ck.path, "rb").read())
        blob[-2] ^= 0xFF
        open(ck.path, "wb").write(bytes(blob))
        assert ck.load() is None
        assert not os.path.exists(ck.path)

    def test_wrong_key_rejected(self, tmp_path):
        a = CheckpointManager(str(tmp_path), KEY)
        a.save((), (), stats())
        os.replace(a.path, os.path.join(str(tmp_path), "e" * 64 + ".ck"))
        b = CheckpointManager(str(tmp_path), "e" * 64)
        assert b.load() is None


class TestKillHooks:
    def test_post_kill_leaves_durable_snapshot(self, tmp_path):
        plan = FaultPlan(checkpoint_kills=(CheckpointKill(1, mode="raise"),))
        ck = CheckpointManager(
            str(tmp_path), KEY, injector=plan.injector(None, 0)
        )
        ck.save((), ("a",), stats())
        with pytest.raises(InjectedCrash):
            ck.save((), ("a", "b"), stats())
        # The kill fired *after* the atomic rename: snapshot 1 survives.
        snap = CheckpointManager(str(tmp_path), KEY).load()
        assert snap.seq == 1 and snap.finals == ("a", "b")

    def test_pre_kill_preserves_previous_snapshot(self, tmp_path):
        plan = FaultPlan(
            checkpoint_kills=(CheckpointKill(1, phase="pre", mode="raise"),)
        )
        ck = CheckpointManager(
            str(tmp_path), KEY, injector=plan.injector(None, 0)
        )
        ck.save((), ("a",), stats())
        with pytest.raises(InjectedCrash):
            ck.save((), ("a", "b"), stats())
        # Nothing of save 1 was written: resume falls back to save 0.
        snap = CheckpointManager(str(tmp_path), KEY).load()
        assert snap.seq == 0 and snap.finals == ("a",)

    def test_fault_quiet_on_retry_attempt(self, tmp_path):
        plan = FaultPlan(checkpoint_kills=(CheckpointKill(0, mode="raise"),))
        assert plan.injector(None, attempt=1) is None
