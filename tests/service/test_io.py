"""Tests for the crash-safe write helpers (repro.testing.io): atomic
replace semantics, checksummed frames, and corruption detection."""

import json
import os

import pytest

from repro.testing.io import (
    CorruptPayload,
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    checked_frame,
    read_checked_bytes,
    unchecked_frame,
    write_checked_bytes,
)


class TestAtomicWrite:
    def test_writes_and_replaces(self, tmp_path):
        path = str(tmp_path / "out.bin")
        atomic_write_bytes(path, b"one")
        assert open(path, "rb").read() == b"one"
        atomic_write_bytes(path, b"two")
        assert open(path, "rb").read() == b"two"

    def test_no_temp_files_left_behind(self, tmp_path):
        path = str(tmp_path / "out.bin")
        atomic_write_bytes(path, b"payload")
        assert os.listdir(tmp_path) == ["out.bin"]

    def test_failed_serialization_leaves_old_file(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, {"ok": 1})
        with pytest.raises(TypeError):
            atomic_write_json(path, {"bad": object()})
        assert json.load(open(path)) == {"ok": 1}
        assert os.listdir(tmp_path) == ["out.json"]

    def test_json_ends_with_newline(self, tmp_path):
        path = str(tmp_path / "out.json")
        atomic_write_json(path, [1, 2, 3])
        assert open(path).read().endswith("\n")

    def test_text_roundtrip(self, tmp_path):
        path = str(tmp_path / "out.txt")
        atomic_write_text(path, "héllo\n")
        assert open(path, encoding="utf-8").read() == "héllo\n"


class TestCheckedFrames:
    def test_roundtrip(self):
        assert unchecked_frame(checked_frame(b"data")) == b"data"
        assert unchecked_frame(checked_frame(b"")) == b""

    def test_file_roundtrip(self, tmp_path):
        path = str(tmp_path / "entry.bin")
        write_checked_bytes(path, b"\x00\x01payload")
        assert read_checked_bytes(path) == b"\x00\x01payload"

    def test_bit_flip_detected(self, tmp_path):
        path = str(tmp_path / "entry.bin")
        write_checked_bytes(path, b"sensitive-bytes")
        blob = bytearray(open(path, "rb").read())
        blob[-3] ^= 0x40  # flip one payload bit
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CorruptPayload):
            read_checked_bytes(path)

    def test_truncation_detected(self, tmp_path):
        path = str(tmp_path / "entry.bin")
        write_checked_bytes(path, b"0123456789" * 10)
        blob = open(path, "rb").read()
        open(path, "wb").write(blob[: len(blob) - 7])
        with pytest.raises(CorruptPayload):
            read_checked_bytes(path)

    def test_garbled_header_detected(self):
        with pytest.raises(CorruptPayload):
            unchecked_frame(b"not json\npayload")
        with pytest.raises(CorruptPayload):
            unchecked_frame(b"no newline at all")
        with pytest.raises(CorruptPayload):
            unchecked_frame(b'{"magic": "wrong"}\npayload')

    def test_extended_payload_detected(self):
        blob = checked_frame(b"data") + b"trailing-garbage"
        with pytest.raises(CorruptPayload):
            unchecked_frame(blob)
