"""Tests for the durable job queue (repro.service.queue): lifecycle
renames, backpressure, retry scheduling, quarantine, crash recovery,
and poison-file handling."""

import os

import pytest

from repro.engine.results import Incompleteness, RunReport
from repro.service.jobs import JobResult, JobSpec
from repro.service.queue import DurableQueue, QueueFull


def spec(n=0):
    return JobSpec(language="while", source=f"proc main() {{ return {n}; }}")


def result_for(lease):
    return JobResult(
        key=lease.key,
        verdict="bounded-verified",
        bugs=0,
        paths=1,
        report=RunReport("exhausted", Incompleteness()),
        stats={},
    )


class FakeClock:
    def __init__(self, now=1000.0):
        self.now = now

    def __call__(self):
        return self.now


class TestLifecycle:
    def test_submit_claim_ack(self, tmp_path):
        q = DurableQueue(str(tmp_path))
        job_id = q.submit(spec())
        assert q.pending_ids() == [job_id]
        lease = q.claim()
        assert lease.job_id == job_id
        assert lease.attempts == 1
        assert q.pending_ids() == [] and q.active_ids() == [job_id]
        q.ack(lease, result_for(lease))
        assert q.active_ids() == []
        assert q.done_ids() == [job_id]
        record = q.load_done(job_id)
        assert record["result"]["verdict"] == "bounded-verified"

    def test_fifo_order(self, tmp_path):
        q = DurableQueue(str(tmp_path))
        ids = [q.submit(spec(i)) for i in range(3)]
        claimed = [q.claim().job_id for _ in range(3)]
        assert claimed == ids

    def test_claim_empty_returns_none(self, tmp_path):
        assert DurableQueue(str(tmp_path)).claim() is None

    def test_depth_tracks_pending(self, tmp_path):
        q = DurableQueue(str(tmp_path))
        assert q.depth == 0
        q.submit(spec(1))
        q.submit(spec(2))
        assert q.depth == 2
        q.claim()
        assert q.depth == 1


class TestBackpressure:
    def test_capacity_rejects_overflow(self, tmp_path):
        q = DurableQueue(str(tmp_path), capacity=2)
        q.submit(spec(1))
        q.submit(spec(2))
        with pytest.raises(QueueFull):
            q.submit(spec(3))
        # Draining makes room again.
        q.claim()
        q.submit(spec(3))


class TestRetry:
    def test_retry_respects_backoff_window(self, tmp_path):
        clock = FakeClock()
        q = DurableQueue(str(tmp_path), clock=clock)
        q.submit(spec())
        lease = q.claim()
        q.retry(lease, "transient", delay=5.0)
        assert q.active_ids() == []
        assert q.claim() is None  # still inside the window
        clock.now += 5.0
        again = q.claim()
        assert again is not None
        assert again.attempts == 2
        assert again.record["last_error"] == "transient"

    def test_quarantine_parks_structured_failure(self, tmp_path):
        q = DurableQueue(str(tmp_path))
        q.submit(spec())
        lease = q.claim()
        failure = q.quarantine(lease, "poison: boom")
        assert q.pending_ids() == [] and q.active_ids() == []
        assert q.quarantined_ids() == [lease.job_id]
        loaded = q.load_quarantined(lease.job_id)
        assert loaded == failure
        assert loaded.error == "poison: boom"
        assert loaded.attempts == 1
        assert loaded.spec["language"] == "while"
        # The queue keeps serving other work.
        other = q.submit(spec(7))
        assert q.claim().job_id == other


class TestRecovery:
    def test_recover_redelivers_active_jobs(self, tmp_path):
        q = DurableQueue(str(tmp_path))
        job_id = q.submit(spec())
        q.claim()
        assert q.active_ids() == [job_id]
        # Simulate the daemon dying and a fresh incarnation starting.
        q2 = DurableQueue(str(tmp_path))
        assert q2.recover() == 1
        assert q2.active_ids() == [] and q2.pending_ids() == [job_id]
        lease = q2.claim()
        # The claim-time bump survived, so crash-loops converge on the
        # quarantine threshold.
        assert lease.attempts == 2

    def test_recover_empty_is_noop(self, tmp_path):
        assert DurableQueue(str(tmp_path)).recover() == 0


class TestPoisonFiles:
    def test_torn_record_is_quarantined_not_served(self, tmp_path):
        q = DurableQueue(str(tmp_path))
        good = q.submit(spec(1))
        bad = q.submit(spec(2))
        path = os.path.join(str(tmp_path), "pending", bad + ".json")
        blob = open(path).read()
        open(path, "w").write(blob[: len(blob) // 2])  # torn write
        lease = q.claim()
        assert lease.job_id == good
        # The scan reaches the torn record on the next claim: it is
        # parked, not served, and not left to wedge the queue.
        assert q.claim() is None
        assert q.quarantined_ids() == [bad]

    def test_checksum_mismatch_is_quarantined(self, tmp_path):
        q = DurableQueue(str(tmp_path))
        bad = q.submit(spec())
        path = os.path.join(str(tmp_path), "pending", bad + ".json")
        blob = open(path).read().replace("while", "whale", 1)
        open(path, "w").write(blob)
        assert q.claim() is None
        assert q.quarantined_ids() == [bad]
