"""Retry/backoff timing tests: the BackoffPolicy schedule is asserted
exactly — base, factor, cap, and seeded jitter — through injectable fake
clocks, for both the service's job retries and the parallel explorer's
shard-retry backoff.  No test here sleeps for real."""

import pytest

from repro.engine.backoff import BackoffPolicy
from repro.engine.config import EngineConfig
from repro.engine.parallel import ParallelExplorer
from repro.gil.syntax import Fail, IfGoto, ISym, Proc, Prog, Return
from repro.logic.expr import Lit, PVar
from repro.state.symbolic import SymbolicStateModel
from repro.targets.while_lang.memory import WhileSymbolicMemory
from repro.testing.faults import FaultPlan, WorkerKill


class TestSchedule:
    def test_exponential_growth_from_base(self):
        policy = BackoffPolicy(base=0.1, factor=2.0, cap=100.0)
        assert policy.schedule(5) == [0.1, 0.2, 0.4, 0.8, 1.6]

    def test_cap_clamps_late_attempts(self):
        policy = BackoffPolicy(base=1.0, factor=10.0, cap=50.0)
        assert policy.schedule(4) == [1.0, 10.0, 50.0, 50.0]

    def test_zero_base_disables_backoff(self):
        assert BackoffPolicy(base=0.0).schedule(3) == [0.0, 0.0, 0.0]

    def test_jitter_is_seed_deterministic_and_bounded(self):
        a = BackoffPolicy(base=1.0, jitter=0.5, jitter_seed=7)
        b = BackoffPolicy(base=1.0, jitter=0.5, jitter_seed=7)
        c = BackoffPolicy(base=1.0, jitter=0.5, jitter_seed=8)
        assert a.schedule(6) == b.schedule(6)      # pure in (seed, attempt)
        assert a.schedule(6) != c.schedule(6)      # seed actually matters
        for attempt, delay in enumerate(a.schedule(6)):
            raw = min(1.0 * 2.0 ** attempt, 30.0)
            assert raw * 0.75 <= delay <= raw * 1.25

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=-1)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.5)


class TestServiceRetryTiming:
    def test_retry_delays_follow_policy_exactly(self, tmp_path):
        """Drive a poison job through every retry on a fake clock and
        assert the queue's not_before schedule equals the policy's."""
        from repro.service.daemon import AnalysisService
        from repro.service.jobs import JobSpec

        policy = BackoffPolicy(base=2.0, factor=3.0, cap=10.0)
        now = [1000.0]
        slept = []

        def clock():
            return now[0]

        def sleep(seconds):
            slept.append(seconds)
            now[0] += seconds

        svc = AnalysisService(
            str(tmp_path),
            max_attempts=4,
            backoff=policy,
            clock=clock,
            sleep=sleep,
        )
        # An unparseable program fails compilation on every attempt.
        svc.submit(JobSpec(language="while", source="this is not a program"))

        not_befores = []
        dispositions = []
        while True:
            before = now[0]
            disposition = svc.process_one()
            if disposition is None:
                if not svc.queue.pending_ids():
                    break
                sleep(svc.poll_interval)
                continue
            dispositions.append(disposition)
            if disposition == "retried":
                import json

                job_id = svc.queue.pending_ids()[0]
                path = svc.queue._path("pending", job_id)
                body = json.loads(open(path).read())["body"]
                not_befores.append(body["not_before"] - before)

        assert dispositions == ["retried", "retried", "retried", "quarantined"]
        # Attempt k's requeue delay is exactly policy.delay(k): 2, 6, 10.
        assert not_befores == pytest.approx([2.0, 6.0, 10.0])
        # The loop only slept through backoff windows, never spun past one.
        assert now[0] - 1000.0 >= sum(not_befores)


class TestShardRetryTiming:
    def _crashy_explorer(self, sleeps, base):
        prog = Prog()
        prog.add(
            Proc(
                "main",
                (),
                (
                    ISym("a", 0),
                    ISym("b", 1),
                    ISym("c", 2),
                    IfGoto(PVar("a").lt(Lit(0)), 6),
                    IfGoto(PVar("b").lt(Lit(0)), 6),
                    IfGoto(PVar("c").lt(Lit(0)), 6),
                    Return(Lit("ok")),
                    Fail(Lit("neg")),
                ),
            )
        )
        sm = SymbolicStateModel(WhileSymbolicMemory())
        config = EngineConfig(
            shard_retry_backoff=base,
            max_shard_retries=3,
            fault_plan=FaultPlan(kills=(WorkerKill(0, 0, mode="raise"),)),
        )
        pex = ParallelExplorer(prog, sm, config, workers=2, seed_factor=1)
        pex._sleep = sleeps.append
        return pex

    def test_shard_retry_sleeps_match_policy(self):
        sleeps = []
        pex = self._crashy_explorer(sleeps, base=0.25)
        result = pex.run("main")
        # One crash on attempt 0 -> exactly one backoff sleep of base*2^0;
        # the retry succeeds (fault is transient), so no further delays.
        assert sleeps == [0.25]
        assert result.stats.incompleteness.shards_retried == 1
        assert result.stats.stop_reason == "exhausted"

    def test_shard_backoff_disabled_when_base_zero(self):
        sleeps = []
        pex = self._crashy_explorer(sleeps, base=0.0)
        pex.run("main")
        assert sleeps == []

    def test_policy_object_mirrors_config(self):
        sleeps = []
        pex = self._crashy_explorer(sleeps, base=0.125)
        assert pex.backoff == BackoffPolicy(base=0.125)
        assert pex.backoff.schedule(3) == [0.125, 0.25, 0.5]
