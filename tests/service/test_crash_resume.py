"""Crash-resume identity: a job killed at an arbitrary checkpoint
boundary and resumed produces exactly the finals multiset and
incompleteness ledger of an uninterrupted run — at workers 1, 2, and 4,
across fault-injected seeds, with both in-process crash shapes and a
real SIGKILL delivered mid-job in a subprocess."""

import os
import subprocess
import sys
import textwrap

import pytest

from repro.service import CheckpointManager, JobRunner, JobSpec, finals_digest
from repro.testing.faults import CheckpointKill, FaultPlan, InjectedCrash

SRC_ROOT = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))),
    "src",
)


def program(seed: int) -> str:
    """A seed-parametric branching program with a reachable bug."""
    bound = 3 + (seed % 3)
    pivot = 2 + (seed % 5)
    return f"""
    proc main() {{
      x := symb_int();
      assume(0 <= x and x <= 12);
      s := 0;
      i := 0;
      while (i < {bound}) {{
        if (x = i + {pivot}) {{ s := s + 3; }} else {{ s := s + 1; }}
        i := i + 1;
      }}
      assert(not (s = {bound + 2}));
      return s;
    }}
    """


def spec_for(seed: int, workers: int) -> JobSpec:
    return JobSpec(language="while", source=program(seed), workers=workers)


def run_uninterrupted(spec: JobSpec):
    return JobRunner(round_items=2).run(spec).result


def crash_then_resume(tmp_path, spec: JobSpec, kill: CheckpointKill):
    """Run with an injected checkpoint-boundary crash, then resume."""
    root = str(tmp_path)
    plan = FaultPlan(checkpoint_kills=(kill,))
    crashy = CheckpointManager(
        root, spec.key(), interval=10, injector=plan.injector(None, 0)
    )
    runner = JobRunner(round_items=2)
    with pytest.raises(InjectedCrash):
        runner.run(spec, checkpoint=crashy)
    resumed = CheckpointManager(root, spec.key(), interval=10)
    return runner.run(spec, checkpoint=resumed)


def assert_identical(base, total):
    assert finals_digest(base.finals) == finals_digest(total.finals)
    assert base.report.to_dict() == total.report.to_dict()
    # Command and path counts are schedule-independent; solver query
    # counts are NOT asserted — a resumed process starts with a cold
    # solver cache, so prefix re-solves shift hits between counters.
    assert base.stats.commands_executed == total.stats.commands_executed
    assert base.stats.paths_finished == total.stats.paths_finished


class TestResumeIdentity:
    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("seed", range(5))
    def test_kill_at_checkpoint_preserves_outcome(self, tmp_path, seed, workers):
        spec = spec_for(seed, workers)
        base = run_uninterrupted(spec)
        kill = CheckpointKill(
            at_checkpoint=seed % 3,
            phase="post" if seed % 2 == 0 else "pre",
            mode="raise",
        )
        outcome = crash_then_resume(tmp_path, spec, kill)
        assert outcome.resumed or kill.phase == "pre"
        assert_identical(base, outcome.result)

    def test_double_crash_then_resume(self, tmp_path):
        """Two crash/resume cycles still sum to the uninterrupted run."""
        spec = spec_for(1, 1)
        base = run_uninterrupted(spec)
        root = str(tmp_path)
        runner = JobRunner()
        for at in (0, 1):
            plan = FaultPlan(checkpoint_kills=(CheckpointKill(at, mode="raise"),))
            ck = CheckpointManager(
                root, spec.key(), interval=10, injector=plan.injector(None, 0)
            )
            with pytest.raises(InjectedCrash):
                runner.run(spec, checkpoint=ck)
        final = runner.run(
            spec, checkpoint=CheckpointManager(root, spec.key(), interval=10)
        )
        assert_identical(base, final.result)

    def test_checkpoint_cleared_after_completion(self, tmp_path):
        spec = spec_for(0, 1)
        ck = CheckpointManager(str(tmp_path), spec.key(), interval=10)
        JobRunner().run(spec, checkpoint=ck)
        assert ck.load() is None  # nothing left to resume


class TestRealSigkill:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_sigkill_mid_job_resumes_identically(self, tmp_path, workers):
        """kill -9 delivered at a checkpoint boundary in a child process;
        the parent resumes from the durable snapshot on disk."""
        spec = spec_for(2, workers)
        base = run_uninterrupted(spec)

        root = str(tmp_path / "ck")
        os.makedirs(root, exist_ok=True)
        src_path = str(tmp_path / "prog.while")
        with open(src_path, "w") as fh:
            fh.write(spec.source)
        child = textwrap.dedent(
            f"""
            import sys
            sys.path.insert(0, {SRC_ROOT!r})
            from repro.service import CheckpointManager, JobRunner, JobSpec
            from repro.testing.faults import CheckpointKill, FaultPlan

            spec = JobSpec(
                language="while",
                source=open({src_path!r}).read(),
                workers={workers},
            )
            plan = FaultPlan(
                checkpoint_kills=(CheckpointKill(1, mode="sigkill"),)
            )
            ck = CheckpointManager(
                {root!r}, spec.key(), interval=10,
                injector=plan.injector(None, 0),
            )
            JobRunner(round_items=2).run(spec, checkpoint=ck)
            raise SystemExit(99)  # must not be reached
            """
        )
        proc = subprocess.run(
            [sys.executable, "-c", child],
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == -9, proc.stderr.decode()[-2000:]

        # A durable snapshot survived the kill (phase=post, checkpoint 1).
        resumed = CheckpointManager(root, spec.key(), interval=10)
        assert resumed.load() is not None
        outcome = JobRunner(round_items=2).run(spec, checkpoint=resumed)
        assert outcome.resumed
        assert_identical(base, outcome.result)
